#!/usr/bin/env python
"""The Section-8 signature extension and fleet (swarm) attestation.

Part 1 — signatures instead of a pre-shared MAC key: the device signs
the readback digest with a Schnorr key derived from its PUF secret; the
verifier holds only the public key.  No confidential provisioning
channel is needed and third parties can verify transcripts.

Part 2 — swarm attestation: sweep a fleet, localize the compromised
member down to its tampered frame.

Run:  python examples/signature_and_swarm.py
"""

from repro import DeterministicRng, SIM_SMALL, build_sacha_system
from repro.core import (
    SachaVerifier,
    SignatureVerifier,
    SwarmMember,
    SwarmAttestation,
    provision_device,
    run_attestation,
    upgrade_to_signatures,
)


def signature_demo() -> None:
    print("=== Signature extension (no pre-shared key) ===\n")
    system = build_sacha_system(SIM_SMALL)
    provisioned, record = provision_device(system, "sig-board", seed=61)
    prover, public_key = upgrade_to_signatures(provisioned, record)
    print(f"device public key: {public_key.encode().hex()[:48]}... (256 bytes)")

    verifier = SignatureVerifier(record.system, public_key, DeterministicRng(62))
    result = run_attestation(prover, verifier, DeterministicRng(63))
    print(f"attestation: {'ACCEPTED' if result.report.accepted else 'REJECTED'}")
    print(f"authenticator: {len(result.tag)}-byte Schnorr signature "
          f"(vs 16-byte CMAC tag)")

    frame = system.partition.static_frame_list()[2]
    provisioned.board.fpga.memory.flip_bit(frame, 0, 1)
    result = run_attestation(prover, verifier, DeterministicRng(64))
    print(
        f"after static tamper: "
        f"{'ACCEPTED (bad!)' if result.report.accepted else 'REJECTED'} "
        f"(frame {result.report.mismatched_frames})"
    )


def swarm_demo() -> None:
    print("\n=== Swarm attestation ===\n")
    members = []
    tampered_frame = None
    for index in range(5):
        system = build_sacha_system(SIM_SMALL)
        provisioned, record = provision_device(
            system, f"node-{index}", seed=70 + index
        )
        if index == 3:
            tampered_frame = system.partition.static_frame_list()[1]
            provisioned.board.fpga.memory.flip_bit(tampered_frame, 0, 5)
        verifier = SachaVerifier(
            record.system, record.mac_key, DeterministicRng(80 + index)
        )
        members.append(SwarmMember(f"node-{index}", provisioned.prover, verifier))

    report = SwarmAttestation(members).run(DeterministicRng(90))
    print(report.explain())
    assert report.compromised == ["node-3"]
    assert report.localize()["node-3"] == [tampered_frame]


if __name__ == "__main__":
    signature_demo()
    swarm_demo()
