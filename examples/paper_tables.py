#!/usr/bin/env python
"""Regenerate every table of the paper's evaluation (Section 7).

Prints Table 2 (resources), Table 3 (per-action timing), Table 4
(protocol totals: theoretical 1.443 s vs measured 28.5 s) and the JTAG
reference point, each computed from the implemented system — not copied.

Run:  python examples/paper_tables.py
"""

from repro.analysis import (
    e1_table2,
    e2_table3,
    e3_table4,
    e4_jtag_reference,
)


def main() -> None:
    for result in (e1_table2(), e2_table3(), e3_table4(), e4_jtag_reference()):
        print(result.rendered)
        print()


if __name__ == "__main__":
    main()
