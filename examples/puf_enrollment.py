#!/usr/bin/env python
"""PUF enrollment and key lifecycle (Section 5.2.1).

Shows the provisioning-time key exchange in detail:

* the SRAM PUF's noisy fingerprint;
* code-offset fuzzy-extractor enrollment (helper data, key check);
* key re-derivation on the device across noisy reads;
* why a cloned device (same helper data, different silicon) cannot
  derive the key — and therefore cannot impersonate the prover.

Run:  python examples/puf_enrollment.py
"""

from repro.errors import PufError
from repro.fpga.puf import FuzzyExtractor, SramPuf, enroll_device
from repro.utils.bitops import hamming_distance
from repro.utils.rng import DeterministicRng


def main() -> None:
    print("=== Weak-PUF key generation ===\n")

    puf = SramPuf(identity_seed=1337, noise_rate=0.05)
    rng = DeterministicRng(7)
    nominal = puf.nominal_response()
    read_one = puf.evaluate(rng.fork("read-1"))
    read_two = puf.evaluate(rng.fork("read-2"))
    bits = len(nominal) * 8
    print(f"response size: {len(nominal)} bytes")
    print(
        f"read noise:    {hamming_distance(nominal, read_one)} / {bits} bits "
        f"(read 1), {hamming_distance(nominal, read_two)} / {bits} bits (read 2)"
    )

    extractor = FuzzyExtractor()
    print(
        f"\nfuzzy extractor: {extractor._repetition}-repetition code, "
        f"needs {extractor.required_response_bytes} response bytes"
    )

    key, slot = enroll_device(puf, rng.fork("enrollment"))
    print(f"enrolled key:  {key.hex()}  (stored in the verifier database)")
    print(f"helper data:   {len(slot.helper.offset)} bytes (public, on-device)")

    print("\nre-deriving on the device across noisy reads:")
    for attempt in range(3):
        derived = slot.derive_key(puf, rng.fork(f"derive-{attempt}"))
        match = "OK" if derived == key else "MISMATCH"
        print(f"  read {attempt + 1}: {derived.hex()}  [{match}]")

    print("\ncloned board (same helper data, different silicon):")
    clone = SramPuf(identity_seed=9999, noise_rate=0.05)
    try:
        slot.derive_key(clone, rng.fork("clone"))
        print("  clone derived a key (unexpected!)")
    except PufError as error:
        print(f"  clone FAILED to derive the key: {error}")
    print(
        "\n==> the MAC key exists only inside the legitimate device and "
        "never crosses the network."
    )


if __name__ == "__main__":
    main()
