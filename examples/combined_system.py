#!/usr/bin/env python
"""Combined hardware/software attestation (Figure 1, right-hand side).

The scenario the paper motivates with: an embedded system pairs a
microprocessor with an FPGA that serves as the *trusted hardware module*
for attesting the processor's software.  Because the FPGA is
reconfigurable, it must first prove its own configuration (SACHa); only
then can its software-attestation verdict be trusted.

The demo shows all four quadrants:

1. clean FPGA + clean software            -> system trusted;
2. clean FPGA + tampered software         -> software attestation fails;
3. tampered FPGA (forging module)         -> caught at self-attestation;
4. the same forging FPGA, self-attestation skipped -> forgery succeeds,
   which is exactly why SACHa exists.

Run:  python examples/combined_system.py
"""

from repro import DeterministicRng, SIM_MEDIUM, build_sacha_system
from repro.core import SachaVerifier, provision_device
from repro.system import CombinedAttestation, FpgaTrustModule, Microprocessor

SOFTWARE_KEY = bytes(range(16, 32))
FIRMWARE = b"\x42" * 600


def build_stack(seed: int, honest_module: bool = True):
    system = build_sacha_system(SIM_MEDIUM)
    provisioned, record = provision_device(system, f"board-{seed}", seed=seed)
    verifier = SachaVerifier(
        record.system, record.mac_key, DeterministicRng(seed + 1)
    )
    processor = Microprocessor(memory_bytes=1024)
    processor.load_software(FIRMWARE)
    trust_module = FpgaTrustModule(
        provisioned.prover,
        processor,
        SOFTWARE_KEY,
        honest=honest_module,
        forged_image=None if honest_module else FIRMWARE,
    )
    combined = CombinedAttestation(
        prover=provisioned.prover,
        verifier=verifier,
        trust_module=trust_module,
        software_key=SOFTWARE_KEY,
        expected_image=FIRMWARE,
        processor_memory_bytes=1024,
    )
    return provisioned, processor, combined


def main() -> None:
    print("=== Combined HW/SW attestation ===\n")

    print("[1] clean FPGA, clean software")
    _, _, combined = build_stack(seed=10)
    print("   ", combined.run(DeterministicRng(1)).explain(), "\n")

    print("[2] clean FPGA, tampered software")
    _, processor, combined = build_stack(seed=20)
    processor.tamper(16, b"\xde\xad\xbe\xef")
    print("   ", combined.run(DeterministicRng(2)).explain(), "\n")

    print("[3] tampered FPGA trust module, WITH self-attestation")
    provisioned, processor, combined = build_stack(seed=30, honest_module=False)
    processor.tamper(16, b"\xde\xad\xbe\xef")
    static_frame = provisioned.system.partition.static_frame_list()[4]
    provisioned.board.fpga.memory.flip_bit(static_frame, 0, 2)
    print("   ", combined.run(DeterministicRng(3)).explain(), "\n")

    print("[4] the same forging module, self-attestation SKIPPED")
    report = combined.run(DeterministicRng(4), skip_self_attestation=True)
    print("   ", report.explain())
    print(
        "\n==> without self-attestation the compromised trusted module "
        "vouches for malicious software — the gap SACHa closes."
    )


if __name__ == "__main__":
    main()
