#!/usr/bin/env python
"""Continuous attestation of a deployed device.

A verifier in production does not attest once: it sweeps the device
periodically.  The demo runs a monitor on the simulation clock, lands a
configuration tamper mid-stream, and shows the detection latency — then
quantifies the paper-scale trade-off: one attestation run takes 28.5 s
on the lab network, flooring the monitoring period, unless the batching
extension (E18) is used.

Run:  python examples/continuous_monitoring.py
"""

from repro import DeterministicRng, SIM_MEDIUM, build_sacha_system
from repro.analysis import e18_full_batching
from repro.core import (
    AttestationMonitor,
    SachaVerifier,
    provision_device,
)
from repro.sim.events import Simulator
from repro.timing import LAB_NETWORK
from repro.timing.model import ActionTimingModel, sacha_action_counts, theoretical_duration_ns
from repro.fpga import XC6VLX240T


def monitoring_demo() -> None:
    print("=== Continuous monitoring with a mid-stream tamper ===\n")
    system = build_sacha_system(SIM_MEDIUM)
    provisioned, record = provision_device(system, "field-unit", seed=777)
    verifier = SachaVerifier(record.system, record.mac_key, DeterministicRng(778))
    simulator = Simulator()
    period_ns = 50e6  # 50 ms sweeps at this scale

    monitor = AttestationMonitor(
        simulator,
        provisioned.prover,
        verifier,
        period_ns=period_ns,
        rng=DeterministicRng(779),
        on_rejection=lambda sample: print(
            f"  !! rejection at t={sample.finished_ns / 1e6:.1f} ms, "
            f"frames {list(sample.mismatched_frames)}"
        ),
    )

    target = system.partition.static_frame_list()[2]

    def tamper():
        provisioned.board.fpga.memory.flip_bit(target, 0, 4)
        monitor.record_tamper()
        print(f"  >> tamper lands in frame {target} at "
              f"t={simulator.now_ns / 1e6:.1f} ms")

    simulator.schedule(2.6 * period_ns, tamper)
    monitor.start(runs=8)
    simulator.run()

    history = monitor.history
    print(f"\nruns: {history.runs}, rejections: {history.rejections}")
    print(
        f"detection latency: {history.detection_latency_ns / 1e6:.1f} ms "
        f"(period {period_ns / 1e6:.0f} ms)"
    )


def paper_scale_tradeoff() -> None:
    print("\n=== The paper-scale period floor, and how batching lifts it ===\n")
    counts = sacha_action_counts(26_400, 28_488)
    model = ActionTimingModel(XC6VLX240T)
    one_run_s = (
        theoretical_duration_ns(model, counts) + LAB_NETWORK.overhead_ns(counts)
    ) / 1e9
    print(f"one XC6VLX240T attestation on the lab network: {one_run_s:.1f} s")
    print("=> sub-30 s monitoring periods are impossible as published.\n")
    print(e18_full_batching().rendered)


if __name__ == "__main__":
    monitoring_demo()
    paper_scale_tradeoff()
