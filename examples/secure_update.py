#!/usr/bin/env python
"""Secure application update — the Perito–Tsudik story on an FPGA.

SACHa's configuration phase *is* a secure code update: every attestation
overwrites the whole dynamic partition with the intended application, so
deploying a new application is just attesting with a new golden design.
The run proves (a) the new application is in place and (b) nothing of
the old configuration — malicious or not — survived.

The demo also runs the original processor-world protocol (proof of
secure erasure / secure code update on a bounded-memory MCU) next to
the FPGA version, showing the shared argument.

Run:  python examples/secure_update.py
"""

from repro import DeterministicRng, SIM_MEDIUM, build_sacha_system
from repro.baselines import (
    BoundedMemoryMcu,
    ResidentMalware,
    proof_of_secure_erasure,
    secure_code_update,
)
from repro.core import SachaVerifier, provision_device, run_attestation
from repro.design import APP_AES_ACCELERATOR, APP_BLINKER


def fpga_update_demo() -> None:
    print("=== FPGA: application update via attestation ===\n")
    version_one = build_sacha_system(SIM_MEDIUM, app_cores=[APP_BLINKER])
    provisioned, record = provision_device(version_one, "field-board", seed=7)

    verifier_v1 = SachaVerifier(version_one, record.mac_key, DeterministicRng(1))
    result = run_attestation(provisioned.prover, verifier_v1, DeterministicRng(2))
    print(f"v1 (blinker) deployed + attested: {result.report.accepted}")

    # An adversary plants a malicious module in the dynamic partition...
    target = version_one.partition.application_frame_list()[0]
    provisioned.board.fpga.memory.write_frame(
        target, bytes([0xEE]) * SIM_MEDIUM.frame_bytes
    )
    print(f"adversary wrote malicious config into frame {target}")

    # ... and the v2 rollout both *erases* it and proves the new app.
    version_two = build_sacha_system(SIM_MEDIUM, app_cores=[APP_AES_ACCELERATOR])
    verifier_v2 = SachaVerifier(version_two, record.mac_key, DeterministicRng(3))
    result = run_attestation(provisioned.prover, verifier_v2, DeterministicRng(4))
    print(
        f"v2 (AES accelerator) update + attestation: "
        f"{'ACCEPTED' if result.report.accepted else 'REJECTED'} — the "
        "malicious module was overwritten by the update itself"
    )

    # The old verifier record now correctly refuses the device.
    stale = verifier_v1.evaluate(
        result.nonce, result.plan, result.responses, result.tag
    )
    print(f"v1 golden reference vs updated device: accepted={stale.accepted} "
          "(the verdict is bound to the exact intended configuration)")


def mcu_reference_demo() -> None:
    print("\n=== MCU reference: Perito–Tsudik proofs [1] ===\n")
    rng = DeterministicRng(100)
    key = rng.fork("key").randbytes(16)

    clean = BoundedMemoryMcu(4096, key)
    result = proof_of_secure_erasure(clean, key, rng.fork("pose-clean"))
    print(f"clean MCU, proof of secure erasure: {result.explain()}")

    infected = BoundedMemoryMcu(
        4096, key, malware=ResidentMalware(offset=2048, body=b"\xBD" * 64)
    )
    result = proof_of_secure_erasure(infected, key, rng.fork("pose-bad"))
    print(f"infected MCU, proof of secure erasure: {result.explain()}")

    fresh = BoundedMemoryMcu(4096, key)
    result = secure_code_update(fresh, key, rng.fork("update"), b"\x90" * 700)
    print(f"secure code update of 700 bytes: {result.explain()}")


if __name__ == "__main__":
    fpga_update_demo()
    mcu_reference_demo()
