#!/usr/bin/env python
"""Configuration scrubbing: the readback mechanism's original job.

Section 2.1.3 introduces configuration-memory readback through its
classic use — detecting and correcting Single Event Upsets (SEUs) in
space applications — before SACHa repurposes it for attestation.  This
demo runs that original use on the same substrate:

1. configure a device and keep a golden reference;
2. bombard it with random SEUs;
3. run scrub cycles (ICAP readback + masked golden comparison +
   corrective frame writes) until the configuration is clean;
4. contrast the scrubber with attestation: the scrubber also "repairs"
   a *malicious* change — silently, with no proof to anyone.

Run:  python examples/seu_scrubbing.py
"""

from repro import DeterministicRng, SIM_MEDIUM, build_sacha_system
from repro.core import SachaVerifier, provision_device, run_attestation
from repro.fpga import Scrubber, SeuInjector
from repro.utils.units import format_time_ns


def main() -> None:
    print("=== SEU scrubbing on the SACHa substrate ===\n")
    system = build_sacha_system(SIM_MEDIUM)
    provisioned, record = provision_device(system, "orbit-board", seed=314)
    fpga = provisioned.board.fpga

    golden = system.golden_memory(b"\x00" * system.nonce_bytes)
    # Align the live nonce frame with the reference for the demo.
    system.write_nonce(fpga.memory, b"\x00" * system.nonce_bytes)
    system.app_impl.apply_to(fpga.memory)
    mask = system.combined_mask()

    injector = SeuInjector(fpga.memory, DeterministicRng(42), mask=mask)
    events = injector.inject(6)
    print(f"injected {len(events)} SEUs into frames "
          f"{sorted({e.frame_index for e in events})}")

    scrubber = Scrubber(fpga.icap, golden, mask=mask)
    reports = scrubber.scrub_until_clean()
    for cycle, report in enumerate(reports, start=1):
        print(
            f"scrub cycle {cycle}: checked {report.frames_checked} frames, "
            f"corrupted {len(report.frames_corrupted)}, corrected "
            f"{len(report.frames_corrected)}, cycle time "
            f"{format_time_ns(report.duration_ns)}"
        )
    print("configuration restored to golden\n")

    print("=== Why a scrubber is not attestation ===\n")
    target = system.partition.static_frame_list()[2]
    fpga.memory.flip_bit(target, 0, 3)
    print(f"adversary flips a bit in static frame {target}")
    report = scrubber.scrub_cycle()
    print(
        f"the scrubber silently repairs it (corrected frames: "
        f"{report.frames_corrected}) — no key, no nonce, no remote proof"
    )
    verifier = SachaVerifier(record.system, record.mac_key, DeterministicRng(1))
    result = run_attestation(provisioned.prover, verifier, DeterministicRng(2))
    print(
        f"SACHa attestation of the same device: "
        f"{'ACCEPTED' if result.report.accepted else 'REJECTED'} — and had the "
        "tamper persisted, the verifier would hold a frame-exact proof"
    )


if __name__ == "__main__":
    main()
