#!/usr/bin/env python
"""Quickstart: provision a SACHa device and attest it.

Walks the whole lifecycle on a scaled test part so it finishes in well
under a second:

1. build the SACHa system design (static partition per Figure 10, demo
   application for the dynamic partition);
2. provision a board: program BootMem, enroll the PUF, deploy, power on;
3. run the attestation protocol of Figure 9;
4. print the verifier's report, then demonstrate that a configuration
   tamper is caught on the next run.

Run:  python examples/quickstart.py
"""

from repro import DeterministicRng, SIM_MEDIUM, build_sacha_system
from repro.core import SachaVerifier, provision_device, run_attestation


def main() -> None:
    print("=== SACHa quickstart ===\n")

    # 1. The system design: static partition + application + floorplan.
    system = build_sacha_system(SIM_MEDIUM)
    partition = system.partition
    print(
        f"device {system.device.name}: {system.device.total_frames} frames "
        f"({partition.static_frame_count} static / "
        f"{partition.dynamic_frame_count} dynamic)"
    )

    # 2. Provisioning: BootMem + PUF enrollment, before deployment.
    provisioned, record = provision_device(system, "demo-board", seed=2019)
    print(
        f"provisioned {record.device_id!r}; BootMem holds "
        f"{len(system.boot_image())} bytes of static bitstream"
    )

    # 3. One full attestation run.
    verifier = SachaVerifier(record.system, record.mac_key, DeterministicRng(1))
    result = run_attestation(provisioned.prover, verifier, DeterministicRng(2))
    print("\n--- honest run ---")
    print(result.report.explain())

    # 4. Tamper with the static partition and attest again.
    target = partition.static_frame_list()[3]
    provisioned.board.fpga.memory.flip_bit(target, 0, 7)
    print(f"\nadversary flips one bit in static frame {target} ...")
    result = run_attestation(provisioned.prover, verifier, DeterministicRng(3))
    print("\n--- tampered run ---")
    print(result.report.explain())


if __name__ == "__main__":
    main()
