#!/usr/bin/env python
"""Attestation as real traffic on a simulated Ethernet link.

Runs the protocol through the network substrate — every command and
response is an Ethernet frame crossing a channel with serialization and
latency — and shows:

* how the end-to-end duration scales with per-hop latency (why the
  paper measures 28.5 s against a 1.443 s theoretical bound);
* a man-in-the-middle tap that rewrites one readback response being
  caught by the MAC comparison.

Run:  python examples/network_attestation.py
"""

from repro import DeterministicRng, SIM_SMALL, build_sacha_system
from repro.core import NetworkAttestationSession, SachaVerifier, provision_device
from repro.net.channel import Channel, LatencyModel
from repro.net.ethernet import EthernetFrame
from repro.sim.events import Simulator


def run_session(latency_ns: float, seed: int = 11, tap=None):
    system = build_sacha_system(SIM_SMALL)
    provisioned, record = provision_device(system, "net-board", seed=seed)
    simulator = Simulator()
    channel = Channel(simulator, LatencyModel(base_ns=latency_ns))
    if tap is not None:
        channel.add_tap(tap)
    verifier = SachaVerifier(record.system, record.mac_key, DeterministicRng(seed + 1))
    # Pin the lockstep shape (one command frame per configuration or
    # readback step, headerless SACHa payloads on the wire).  It is the
    # shape the paper's timing argument describes, and it lets the MITM
    # tap below parse raw frames directly.  The default transport now
    # pipelines batched commands through a resequencing buffer instead.
    session = NetworkAttestationSession(
        simulator, channel, provisioned.prover, verifier, DeterministicRng(seed + 2),
        readback_batch_frames=1,
    )
    return session.run()


def main() -> None:
    print("=== Latency sweep (honest prover) ===\n")
    print(f"{'one-way latency':>18}  {'duration':>12}  verdict")
    for latency_us in (1, 10, 100, 500, 2_000):
        result = run_session(latency_us * 1_000.0)
        verdict = "attested" if result.report.accepted else "REJECTED"
        print(
            f"{latency_us:>15} us  {result.duration_ns / 1e6:>9.2f} ms  {verdict}"
        )

    print(
        "\nThe duration is dominated by per-command round trips "
        f"(the paper's 28.5 s vs 1.443 s at full scale)."
    )

    print("\n=== Man-in-the-middle rewriting one response ===\n")
    state = {"rewritten": False}

    def mitm(time_ns, direction, frame):
        if direction == "prv->vrf" and not state["rewritten"]:
            payload = bytearray(frame.payload)
            if payload and payload[0] == 0x81 and len(payload) > 10:
                payload[9] ^= 0x80
                state["rewritten"] = True
                print(f"  [tap] flipped a bit in a readback response at t={time_ns:.0f} ns")
                return EthernetFrame(
                    frame.destination, frame.source, frame.ethertype, bytes(payload)
                )
        return None

    result = run_session(10_000.0, seed=22, tap=mitm)
    verdict = "attested (BAD!)" if result.report.accepted else "REJECTED, as it must be"
    print(f"  verdict with MITM: {verdict}")
    print(f"  MAC valid: {result.report.mac_valid}")


if __name__ == "__main__":
    main()
