#!/usr/bin/env python
"""The security evaluation of Section 7.2, end to end.

Mounts every adversary from the paper against freshly provisioned
devices — DynPart/StatPart malware, impersonation, proxy pin tampering,
replay, nonce suppression, BRAM hoarding — and prints the outcome table,
followed by the baseline-comparison matrix showing which attacks the
prior FPGA-attestation schemes miss.

Run:  python examples/tamper_detection.py
"""

from repro.analysis import e5_security_evaluation, e9_baseline_matrix
from repro.fpga import SIM_MEDIUM


def main() -> None:
    print("=== SACHa security evaluation (Section 7.2) ===\n")
    security = e5_security_evaluation(SIM_MEDIUM)
    print(security.rendered)
    print()
    for outcome in security.outcomes:
        print("  *", outcome.explain())
    verdict = "ALL DEFENSES HOLD" if security.all_defenses_hold else "A DEFENSE FAILED"
    print(f"\n==> {verdict}\n")

    print("=== Where the prior schemes break (Section 4) ===\n")
    matrix = e9_baseline_matrix()
    print(matrix.rendered)


if __name__ == "__main__":
    main()
