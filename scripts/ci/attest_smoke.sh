#!/usr/bin/env bash
# One parameterized attest smoke check, replacing the near-identical
# fault-matrix steps: run `repro attest`, assert the expected verdict
# line is printed, assert no traceback leaked into the output, and
# assert the named metric family reached the Prometheus export.
#
#   attest_smoke.sh --name NAME --grep-metric PATTERN
#                   [--expect PATTERN]       (default: ATTESTED)
#                   [--seed N]               (default: 7)
#                   [--global-flags "..."]   (before the subcommand)
#                   [--attest-flags "..."]   (after it)
#
# Outputs land in /tmp/attest-NAME.out and /tmp/attest-NAME.prom so a
# matrix job can run several shapes without clobbering evidence.
set -euo pipefail

name=""
expect="ATTESTED"
grep_metric=""
seed="7"
global_flags=""
attest_flags=""

usage() {
    sed -n '2,15p' "$0" >&2
    exit 64
}

while [[ $# -gt 0 ]]; do
    case "$1" in
        --name) name="$2"; shift 2 ;;
        --expect) expect="$2"; shift 2 ;;
        --grep-metric) grep_metric="$2"; shift 2 ;;
        --seed) seed="$2"; shift 2 ;;
        --global-flags) global_flags="$2"; shift 2 ;;
        --attest-flags) attest_flags="$2"; shift 2 ;;
        *) echo "attest_smoke.sh: unknown argument: $1" >&2; usage ;;
    esac
done

[[ -n "$name" ]] || { echo "attest_smoke.sh: --name is required" >&2; usage; }

out="/tmp/attest-${name}.out"
prom="/tmp/attest-${name}.prom"

# shellcheck disable=SC2086  # flag strings are intentionally word-split
python -m repro $global_flags \
    attest --device SIM-SMALL --seed "$seed" $attest_flags \
    --metrics-out "$prom" | tee "$out"

grep -q "$expect" "$out"
! grep -q 'Traceback' "$out"
if [[ -n "$grep_metric" ]]; then
    grep -q "$grep_metric" "$prom"
fi
echo "attest_smoke[${name}]: OK (expect=${expect} metric=${grep_metric:-none})"
