"""Performance layer: pluggable crypto backends and frame fast paths.

The SACHa hot path streams all 28,488 frames of a full device through an
incremental AES-CMAC twice (prover H_Prv and verifier H_Vrf) and then
mask-compares the readback against the golden bitstream.  ``repro.perf``
makes that loop configurable and fast:

* :class:`ReproConfig` selects the AES-CMAC *backend* (``reference``,
  ``table`` or ``native``) and the swarm parallelism, from code or from
  ``REPRO_*`` environment variables;
* :mod:`repro.perf.backends` implements the backends — all byte-identical,
  enforced by known-answer and property tests;
* the fpga/core layers use bulk ``update_frames`` folds, zero-copy frame
  views and cached mask application so that the protocol overhead around
  the MAC shrinks with it.

``benchmarks/bench_gate.py`` is the regression gate CI runs over this
layer.
"""

from repro.perf.backends import (
    BACKEND_NATIVE,
    BACKEND_REFERENCE,
    BACKEND_TABLE,
    available_backends,
    get_cipher,
    native_available,
    resolve_backend_name,
)
from repro.perf.config import (
    ReproConfig,
    configured,
    get_config,
    set_config,
)

__all__ = [
    "BACKEND_NATIVE",
    "BACKEND_REFERENCE",
    "BACKEND_TABLE",
    "ReproConfig",
    "available_backends",
    "configured",
    "get_cipher",
    "get_config",
    "native_available",
    "resolve_backend_name",
    "set_config",
]
