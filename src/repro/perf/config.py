"""Runtime performance configuration.

One process-wide :class:`ReproConfig` controls which AES-CMAC backend the
crypto layer instantiates and how much parallelism the swarm sweep may
use.  The defaults come from the environment so CLI runs and CI jobs can
switch backends without code changes::

    REPRO_AES_BACKEND=reference   # reference | table | native | auto
    REPRO_SWARM_WORKERS=4         # 0/1 = sequential sweep
    REPRO_FRAME_FASTPATH=0        # disable bulk/vectorized frame handling
    REPRO_ARQ_WINDOW=8            # ARQ payloads in flight; 1 = stop-and-wait
    REPRO_ARQ_ADAPTIVE=1          # AIMD window adaptation (window = ceiling)
    REPRO_READBACK_BATCH_FRAMES=256  # frames per batched readback; 1 = per-frame
    REPRO_ARTIFACT_CACHE=1        # memoize built system artifacts per part
    REPRO_CACHE_DIR=~/.cache/repro  # persist artifacts on disk ("" = off)

``auto`` (the default) picks ``native`` when the optional ``cryptography``
package is importable and falls back to the pure-Python ``table`` backend
otherwise, so a bare install still runs everywhere — just slower.
"""

from __future__ import annotations

import contextlib
import os
from dataclasses import dataclass, replace
from typing import Iterator, Optional

from repro.errors import ReproError

#: Recognized values for :attr:`ReproConfig.aes_backend`.
AES_BACKEND_CHOICES = ("auto", "reference", "table", "native")

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")


@dataclass(frozen=True)
class ReproConfig:
    """Process-wide performance knobs.

    The object is immutable; use :func:`set_config`, :func:`configured`
    or :meth:`with_overrides` to install a changed copy.
    """

    #: AES-CMAC backend name: ``auto``, ``reference``, ``table``, ``native``.
    aes_backend: str = "auto"
    #: Thread workers for independent swarm-member attestations.
    #: ``0`` or ``1`` keeps the sweep sequential (byte-identical telemetry
    #: ordering); higher values attest members concurrently.
    swarm_workers: int = 0
    #: Master switch for the bulk/vectorized frame paths (ICAP sweeps,
    #: cached mask application, vectorized verifier compare).  Exists so a
    #: regression in the fast path can be ruled out in one env flip.
    frame_fastpath: bool = True
    #: ARQ send-window size for networked sessions: how many payloads may
    #: be unacknowledged at once.  ``1`` is the legacy stop-and-wait and
    #: stays byte-identical to it.
    arq_window: int = 8
    #: AIMD adaptation of the ARQ send window: ``arq_window`` becomes the
    #: *ceiling* of a congestion window that halves on retransmission
    #: timeouts and regrows additively on clean ACKs.  The window starts
    #: at the ceiling, so clean links behave identically either way.
    arq_adaptive: bool = True
    #: Frames per batched readback command in the pipelined networked
    #: session.  ``1`` keeps the legacy per-frame command/await/response
    #: loop (byte-identical to it); larger values pack many frames per
    #: ARQ payload and stream commands ahead of responses.
    readback_batch_frames: int = 256
    #: Master switch for the content-addressed artifact cache: with it on,
    #: devices of the same part share one memoized system build (golden
    #: template, combined mask, boot image).  Off forces every
    #: materialization to rebuild from scratch — the cold baseline the
    #: benchmarks compare against.
    artifact_cache: bool = True
    #: Directory of the persistent on-disk artifact tier.  Empty (the
    #: default) keeps the cache in-process only; set it to warm-start
    #: sweeps across processes.  Entries are checksummed and rebuilt on
    #: any mismatch, so a stale or corrupted directory is safe.
    cache_dir: str = ""

    def __post_init__(self) -> None:
        if self.aes_backend not in AES_BACKEND_CHOICES:
            raise ReproError(
                f"unknown AES backend {self.aes_backend!r}; "
                f"choose from {', '.join(AES_BACKEND_CHOICES)}"
            )
        if self.swarm_workers < 0:
            raise ReproError(
                f"swarm_workers must be non-negative, got {self.swarm_workers}"
            )
        if self.arq_window < 1:
            raise ReproError(
                f"arq_window must be >= 1, got {self.arq_window}"
            )
        if self.readback_batch_frames < 1:
            raise ReproError(
                f"readback_batch_frames must be >= 1, "
                f"got {self.readback_batch_frames}"
            )

    def with_overrides(self, **changes: object) -> "ReproConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "ReproConfig":
        """Build a config from ``REPRO_*`` environment variables."""
        env = os.environ if environ is None else environ
        backend = env.get("REPRO_AES_BACKEND", "auto").strip().lower() or "auto"
        workers_raw = env.get("REPRO_SWARM_WORKERS", "0").strip() or "0"
        try:
            workers = int(workers_raw)
        except ValueError:
            raise ReproError(
                f"REPRO_SWARM_WORKERS must be an integer, got {workers_raw!r}"
            ) from None
        def _int_env(name: str, default: str) -> int:
            raw = env.get(name, default).strip() or default
            try:
                return int(raw)
            except ValueError:
                raise ReproError(
                    f"{name} must be an integer, got {raw!r}"
                ) from None

        window = _int_env("REPRO_ARQ_WINDOW", "8")
        batch_frames = _int_env("REPRO_READBACK_BATCH_FRAMES", "256")

        def _bool_env(name: str, default: str) -> bool:
            raw = env.get(name, default).strip().lower() or default
            if raw in _TRUTHY:
                return True
            if raw in _FALSY:
                return False
            raise ReproError(
                f"{name} must be a boolean flag, got {raw!r}"
            )

        fastpath = _bool_env("REPRO_FRAME_FASTPATH", "1")
        adaptive = _bool_env("REPRO_ARQ_ADAPTIVE", "1")
        artifact_cache = _bool_env("REPRO_ARTIFACT_CACHE", "1")
        cache_dir = env.get("REPRO_CACHE_DIR", "").strip()
        return cls(
            aes_backend=backend,
            swarm_workers=workers,
            frame_fastpath=fastpath,
            arq_window=window,
            arq_adaptive=adaptive,
            readback_batch_frames=batch_frames,
            artifact_cache=artifact_cache,
            cache_dir=cache_dir,
        )


_config: Optional[ReproConfig] = None


def get_config() -> ReproConfig:
    """The active configuration (lazily initialized from the environment)."""
    global _config
    if _config is None:
        _config = ReproConfig.from_env()
    return _config


def set_config(config: Optional[ReproConfig]) -> Optional[ReproConfig]:
    """Install ``config`` as the active one; returns the previous value.

    Passing ``None`` resets to lazy re-initialization from the
    environment (used by tests).
    """
    global _config
    previous = _config
    _config = config
    return previous


@contextlib.contextmanager
def configured(**overrides: object) -> Iterator[ReproConfig]:
    """Temporarily override configuration fields::

        with configured(aes_backend="reference"):
            ...
    """
    current = get_config()
    replaced = current.with_overrides(**overrides)
    previous = set_config(replaced)
    try:
        yield replaced
    finally:
        set_config(previous)
