"""Pluggable AES-CMAC block-cipher backends.

The incremental CMAC chain is ``state = E_K(state XOR block)`` for every
16-byte block, followed by one subkey-treated final block.  Everything a
backend must provide is therefore two operations:

* ``encrypt_block`` — one raw AES encryption (subkey derivation and the
  final block);
* ``fold`` — absorb a whole buffer of complete blocks into the chain.

Three implementations exist, all byte-identical (known-answer and
property tests enforce it):

``reference``
    The seed's from-scratch :class:`repro.crypto.aes.Aes`, one
    ``encrypt_block`` call per block.  Slowest, zero dependencies, the
    ground truth.

``table``
    A pure-Python fast path: the same precomputed T-tables, but with the
    whole round function unrolled into one generated loop that keeps the
    chain state as four 32-bit words and never materializes per-block
    byte strings.  ~2.5x the reference on long folds, still dependency
    free.

``native``
    Delegates the fold to the platform AES (OpenSSL via the optional
    ``cryptography`` package) using the CBC identity: CBC-encrypting the
    buffer with IV = state yields the chain state as the last ciphertext
    block.  Orders of magnitude faster; gated on import, never required.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.crypto.aes import BLOCK_SIZE, SBOX, Aes, encryption_tables, expand_round_keys
from repro.errors import ReproError
from repro.obs.metrics import get_registry
from repro.utils.bitops import xor_bytes

BACKEND_REFERENCE = "reference"
BACKEND_TABLE = "table"
BACKEND_NATIVE = "native"

BytesLike = Union[bytes, bytearray, memoryview]

try:  # gated optional dependency — never required, never installed here
    from cryptography.hazmat.primitives.ciphers import (  # type: ignore
        Cipher as _OsslCipher,
        algorithms as _ossl_algorithms,
        modes as _ossl_modes,
    )

    _HAVE_CRYPTOGRAPHY = True
except ImportError:  # pragma: no cover - depends on the environment
    _HAVE_CRYPTOGRAPHY = False


def native_available() -> bool:
    """Whether the ``native`` backend can be used in this environment."""
    return _HAVE_CRYPTOGRAPHY


def available_backends() -> Tuple[str, ...]:
    """Backend names usable right now, reference first."""
    names = [BACKEND_REFERENCE, BACKEND_TABLE]
    if native_available():
        names.append(BACKEND_NATIVE)
    return tuple(names)


def resolve_backend_name(name: Optional[str] = None) -> str:
    """Map a requested backend (or ``None``/``auto``) to a concrete one."""
    if name is None or name == "auto":
        from repro.perf.config import get_config

        name = get_config().aes_backend
    if name == "auto":
        return BACKEND_NATIVE if native_available() else BACKEND_TABLE
    if name == BACKEND_NATIVE and not native_available():
        raise ReproError(
            "the 'native' AES backend needs the optional 'cryptography' "
            "package; install it or select 'table'/'reference'"
        )
    if name not in (BACKEND_REFERENCE, BACKEND_TABLE, BACKEND_NATIVE):
        raise ReproError(
            f"unknown AES backend {name!r}; choose from "
            f"{BACKEND_REFERENCE}, {BACKEND_TABLE}, {BACKEND_NATIVE} or auto"
        )
    return name


# (registry, generation, counter) for the fold counter: folds run once
# per MAC'd frame, so the registry's locked lookup is cached away.
_FOLD_COUNTER = None


def _count_fold(backend: str, blocks: int) -> None:
    """Perf counter: blocks absorbed per backend (no-op when obs is off)."""
    global _FOLD_COUNTER
    registry = get_registry()
    if not registry.enabled:
        return
    cached = _FOLD_COUNTER
    if (
        cached is None
        or cached[0] is not registry
        or cached[1] != registry.generation
        or cached[2] != backend
    ):
        counter = registry.counter(
            "sacha_mac_blocks_folded_total",
            "AES-CMAC blocks folded into chain state, by backend",
            labels=("backend",),
        )
        cached = (
            registry,
            registry.generation,
            backend,
            counter.series(backend=backend),
        )
        _FOLD_COUNTER = cached
    cached[3].inc(blocks)


class ReferenceCipher:
    """The seed implementation: one object-churning call per block."""

    name = BACKEND_REFERENCE

    def __init__(self, key: bytes) -> None:
        self._aes = Aes(key)

    def encrypt_block(self, block: bytes) -> bytes:
        return self._aes.encrypt_block(block)

    def fold(self, state: bytes, buffer: BytesLike) -> bytes:
        data = bytes(buffer)
        encrypt = self._aes.encrypt_block
        for offset in range(0, len(data), BLOCK_SIZE):
            state = encrypt(xor_bytes(state, data[offset : offset + BLOCK_SIZE]))
        _count_fold(self.name, len(data) // BLOCK_SIZE)
        return state


# -- table backend: generated, unrolled chain fold ---------------------------

_FOLD_CACHE: Dict[int, object] = {}


def _generate_fold(rounds: int):
    """Compile a CBC-chain fold specialized for ``rounds`` AES rounds.

    The generated function keeps the chain state in four ints, reads the
    message as a flat tuple of big-endian words and runs the fully
    unrolled T-table rounds per block — no per-block allocation at all.
    """
    total_keys = 4 * (rounds + 1)
    key_names = [f"k{i}" for i in range(total_keys)]
    lines = [
        "def fold(s0, s1, s2, s3, words, K, T0, T1, T2, T3, SB):",
        "    (" + ", ".join(key_names) + ",) = K",
        "    i = 0",
        "    n = len(words)",
        "    while i < n:",
        "        s0 = s0 ^ words[i] ^ k0",
        "        s1 = s1 ^ words[i + 1] ^ k1",
        "        s2 = s2 ^ words[i + 2] ^ k2",
        "        s3 = s3 ^ words[i + 3] ^ k3",
    ]
    for round_index in range(1, rounds):
        o = 4 * round_index
        lines += [
            f"        t0 = T0[s0 >> 24] ^ T1[(s1 >> 16) & 255]"
            f" ^ T2[(s2 >> 8) & 255] ^ T3[s3 & 255] ^ k{o}",
            f"        t1 = T0[s1 >> 24] ^ T1[(s2 >> 16) & 255]"
            f" ^ T2[(s3 >> 8) & 255] ^ T3[s0 & 255] ^ k{o + 1}",
            f"        t2 = T0[s2 >> 24] ^ T1[(s3 >> 16) & 255]"
            f" ^ T2[(s0 >> 8) & 255] ^ T3[s1 & 255] ^ k{o + 2}",
            f"        t3 = T0[s3 >> 24] ^ T1[(s0 >> 16) & 255]"
            f" ^ T2[(s1 >> 8) & 255] ^ T3[s2 & 255] ^ k{o + 3}",
            "        s0, s1, s2, s3 = t0, t1, t2, t3",
        ]
    o = 4 * rounds
    lines += [
        f"        r0 = ((SB[s0 >> 24] << 24) | (SB[(s1 >> 16) & 255] << 16)"
        f" | (SB[(s2 >> 8) & 255] << 8) | SB[s3 & 255]) ^ k{o}",
        f"        r1 = ((SB[s1 >> 24] << 24) | (SB[(s2 >> 16) & 255] << 16)"
        f" | (SB[(s3 >> 8) & 255] << 8) | SB[s0 & 255]) ^ k{o + 1}",
        f"        r2 = ((SB[s2 >> 24] << 24) | (SB[(s3 >> 16) & 255] << 16)"
        f" | (SB[(s0 >> 8) & 255] << 8) | SB[s1 & 255]) ^ k{o + 2}",
        f"        r3 = ((SB[s3 >> 24] << 24) | (SB[(s0 >> 16) & 255] << 16)"
        f" | (SB[(s1 >> 8) & 255] << 8) | SB[s2 & 255]) ^ k{o + 3}",
        "        s0, s1, s2, s3 = r0, r1, r2, r3",
        "        i += 4",
        "    return s0, s1, s2, s3",
    ]
    namespace: Dict[str, object] = {}
    exec("\n".join(lines), namespace)  # noqa: S102 - static, key-independent source
    return namespace["fold"]


def _fold_for(rounds: int):
    fold = _FOLD_CACHE.get(rounds)
    if fold is None:
        fold = _generate_fold(rounds)
        _FOLD_CACHE[rounds] = fold
    return fold


class TableCipher:
    """Pure-Python T-table fast path with int-word chain state."""

    name = BACKEND_TABLE

    def __init__(self, key: bytes) -> None:
        round_keys = expand_round_keys(key)
        self._keys = tuple(round_keys)
        self._rounds = len(round_keys) // 4 - 1
        self._fold = _fold_for(self._rounds)
        self._tables = encryption_tables()

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        # E(block) == fold from the zero state: the chain XOR is a no-op.
        words = struct.unpack(">4I", block)
        t0, t1, t2, t3 = self._tables
        s0, s1, s2, s3 = self._fold(
            0, 0, 0, 0, words, self._keys, t0, t1, t2, t3, SBOX
        )
        return struct.pack(">4I", s0, s1, s2, s3)

    def fold(self, state: bytes, buffer: BytesLike) -> bytes:
        length = len(buffer)
        if length % BLOCK_SIZE:
            raise ValueError(f"fold needs whole blocks, got {length} bytes")
        words = struct.unpack(f">{length // 4}I", buffer)
        s0, s1, s2, s3 = struct.unpack(">4I", state)
        t0, t1, t2, t3 = self._tables
        s0, s1, s2, s3 = self._fold(
            s0, s1, s2, s3, words, self._keys, t0, t1, t2, t3, SBOX
        )
        _count_fold(self.name, length // BLOCK_SIZE)
        return struct.pack(">4I", s0, s1, s2, s3)


class NativeCipher:
    """Platform AES (OpenSSL through ``cryptography``): CBC-identity fold."""

    name = BACKEND_NATIVE

    def __init__(self, key: bytes) -> None:
        if not _HAVE_CRYPTOGRAPHY:  # pragma: no cover - guarded by resolver
            raise ReproError("the 'cryptography' package is not available")
        self._algorithm = _ossl_algorithms.AES(bytes(key))

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        encryptor = _OsslCipher(self._algorithm, _ossl_modes.ECB()).encryptor()
        return encryptor.update(block) + encryptor.finalize()

    def fold(self, state: bytes, buffer: BytesLike) -> bytes:
        length = len(buffer)
        if length % BLOCK_SIZE:
            raise ValueError(f"fold needs whole blocks, got {length} bytes")
        if not length:
            return state
        # CBC with IV = state computes c_i = E(c_{i-1} XOR m_i): exactly
        # the CMAC chain, so the final ciphertext block IS the new state.
        encryptor = _OsslCipher(
            self._algorithm, _ossl_modes.CBC(bytes(state))
        ).encryptor()
        ciphertext = encryptor.update(bytes(buffer))
        _count_fold(self.name, length // BLOCK_SIZE)
        return ciphertext[-BLOCK_SIZE:]


CipherLike = Union[ReferenceCipher, TableCipher, NativeCipher]

_CIPHER_CLASSES = {
    BACKEND_REFERENCE: ReferenceCipher,
    BACKEND_TABLE: TableCipher,
    BACKEND_NATIVE: NativeCipher,
}


def get_cipher(key: bytes, backend: Optional[str] = None) -> CipherLike:
    """Instantiate the chain cipher for ``key`` on the resolved backend."""
    name = resolve_backend_name(backend)
    return _CIPHER_CLASSES[name](key)


def fold_frames(
    cipher: CipherLike, state: bytes, tail: bytes, frames: Sequence[BytesLike]
) -> Tuple[bytes, bytes]:
    """Fold a sweep of frames into ``(state, tail)`` without per-frame churn.

    ``tail`` is the carry of 1..16 buffered bytes the incremental CMAC
    must keep for final-block subkey treatment.  Returns the new state
    and the new tail.  One join, one fold — regardless of frame count.
    """
    pieces: List[BytesLike] = [tail] if tail else []
    pieces.extend(frames)
    buffer = b"".join(pieces)
    if len(buffer) <= BLOCK_SIZE:
        return state, buffer
    keep = len(buffer) % BLOCK_SIZE or BLOCK_SIZE
    foldable = len(buffer) - keep
    state = cipher.fold(state, memoryview(buffer)[:foldable])
    return state, buffer[foldable:]
