"""AES-CMAC (RFC 4493 / NIST SP 800-38B), with incremental steps.

The SACHa prover computes the MAC of the configuration memory in 28,488
per-frame steps: ``Init MAC_K``, one ``Update MAC_K`` per frame read back,
and a ``finalize MAC_K`` when the verifier sends the ``MAC_checksum``
command (Figure 9).  :class:`AesCmac` mirrors exactly that structure.

The chain itself runs on a pluggable block-cipher backend (see
:mod:`repro.perf.backends`): the from-scratch ``reference`` model, the
pure-Python ``table`` fast path, or the platform-AES ``native`` fold.
All are byte-identical; the active one comes from
:class:`repro.perf.ReproConfig` unless a backend is named explicitly.
"""

from __future__ import annotations

from typing import Iterable, Optional, Union

from repro.crypto.aes import BLOCK_SIZE
from repro.utils.bitops import xor_bytes

_MSB = 0x80
_RB = 0x87  # the constant R_128 from RFC 4493

BytesLike = Union[bytes, bytearray, memoryview]


def _double(block: bytes) -> bytes:
    """Multiply by x in GF(2^128) as defined for CMAC subkeys."""
    value = int.from_bytes(block, "big")
    value <<= 1
    if value >> 128:
        value = (value & ((1 << 128) - 1)) ^ _RB
    return value.to_bytes(BLOCK_SIZE, "big")


class AesCmac:
    """Incremental AES-CMAC.

    Usage mirrors the hardware core::

        mac = AesCmac(key)          # Init MAC_K
        mac.update(frame_bytes)     # Update MAC_K, once per frame
        tag = mac.finalize()        # finalize MAC_K

    ``update`` may be called with arbitrary-length chunks; the result is
    identical to one-shot CMAC over the concatenation (a property test in
    ``tests/crypto`` checks this).  ``update_frames`` folds a whole
    readback sweep in one pass — same tag, none of the per-frame
    buffering.

    ``backend`` selects the block-cipher implementation by name
    (``reference`` / ``table`` / ``native``); when omitted, the process
    :class:`repro.perf.ReproConfig` decides.
    """

    def __init__(self, key: bytes, backend: Optional[str] = None) -> None:
        from repro.perf.backends import get_cipher

        self._cipher = get_cipher(key, backend)
        zero = self._cipher.encrypt_block(bytes(BLOCK_SIZE))
        self._k1 = _double(zero)
        self._k2 = _double(self._k1)
        self._state = bytes(BLOCK_SIZE)
        self._buffer = b""
        self._finalized = False

    @property
    def backend(self) -> str:
        """The concrete backend name this instance runs on."""
        return self._cipher.name

    def update(self, data: BytesLike) -> "AesCmac":
        if self._finalized:
            raise ValueError("CMAC already finalized; create a new instance")
        buffer = self._buffer + bytes(data)
        # Keep at least one byte buffered: the final block needs subkey
        # treatment, so we may only absorb a block once we know more data
        # follows it.
        if len(buffer) > BLOCK_SIZE:
            keep = len(buffer) % BLOCK_SIZE or BLOCK_SIZE
            foldable = len(buffer) - keep
            self._state = self._cipher.fold(
                self._state, memoryview(buffer)[:foldable]
            )
            buffer = buffer[foldable:]
        self._buffer = buffer
        return self

    def update_frames(self, frames: Iterable[BytesLike]) -> "AesCmac":
        """Fold a whole frame sweep: one join, one chain fold.

        Equivalent to calling :meth:`update` once per frame, without the
        28,488 intermediate buffer mutations of a full-device readback.
        """
        if self._finalized:
            raise ValueError("CMAC already finalized; create a new instance")
        from repro.perf.backends import fold_frames

        self._state, tail = fold_frames(
            self._cipher, self._state, self._buffer, list(frames)
        )
        self._buffer = bytes(tail)
        return self

    def finalize(self) -> bytes:
        if self._finalized:
            raise ValueError("CMAC already finalized; create a new instance")
        self._finalized = True
        block = self._buffer
        if len(block) == BLOCK_SIZE:
            last = xor_bytes(block, self._k1)
        else:
            padded = block + b"\x80" + bytes(BLOCK_SIZE - len(block) - 1)
            last = xor_bytes(padded, self._k2)
        return self._cipher.encrypt_block(xor_bytes(self._state, last))


def aes_cmac(key: bytes, message: bytes, backend: Optional[str] = None) -> bytes:
    """One-shot AES-CMAC of ``message`` under ``key``."""
    return AesCmac(key, backend=backend).update(message).finalize()
