"""AES-CMAC (RFC 4493 / NIST SP 800-38B), with incremental steps.

The SACHa prover computes the MAC of the configuration memory in 28,488
per-frame steps: ``Init MAC_K``, one ``Update MAC_K`` per frame read back,
and a ``finalize MAC_K`` when the verifier sends the ``MAC_checksum``
command (Figure 9).  :class:`AesCmac` mirrors exactly that structure.
"""

from __future__ import annotations

from repro.crypto.aes import BLOCK_SIZE, Aes
from repro.utils.bitops import xor_bytes

_MSB = 0x80
_RB = 0x87  # the constant R_128 from RFC 4493


def _double(block: bytes) -> bytes:
    """Multiply by x in GF(2^128) as defined for CMAC subkeys."""
    value = int.from_bytes(block, "big")
    value <<= 1
    if value >> 128:
        value = (value & ((1 << 128) - 1)) ^ _RB
    return value.to_bytes(BLOCK_SIZE, "big")


class AesCmac:
    """Incremental AES-CMAC.

    Usage mirrors the hardware core::

        mac = AesCmac(key)          # Init MAC_K
        mac.update(frame_bytes)     # Update MAC_K, once per frame
        tag = mac.finalize()        # finalize MAC_K

    ``update`` may be called with arbitrary-length chunks; the result is
    identical to one-shot CMAC over the concatenation (a property test in
    ``tests/crypto`` checks this).
    """

    def __init__(self, key: bytes) -> None:
        self._aes = Aes(key)
        zero = self._aes.encrypt_block(bytes(BLOCK_SIZE))
        self._k1 = _double(zero)
        self._k2 = _double(self._k1)
        self._state = bytes(BLOCK_SIZE)
        self._buffer = b""
        self._finalized = False

    def update(self, data: bytes) -> "AesCmac":
        if self._finalized:
            raise ValueError("CMAC already finalized; create a new instance")
        self._buffer += data
        # Keep at least one byte buffered: the final block needs subkey
        # treatment, so we may only absorb a block once we know more data
        # follows it.
        while len(self._buffer) > BLOCK_SIZE:
            block, self._buffer = self._buffer[:BLOCK_SIZE], self._buffer[BLOCK_SIZE:]
            self._state = self._aes.encrypt_block(xor_bytes(self._state, block))
        return self

    def finalize(self) -> bytes:
        if self._finalized:
            raise ValueError("CMAC already finalized; create a new instance")
        self._finalized = True
        block = self._buffer
        if len(block) == BLOCK_SIZE:
            last = xor_bytes(block, self._k1)
        else:
            padded = block + b"\x80" + bytes(BLOCK_SIZE - len(block) - 1)
            last = xor_bytes(padded, self._k2)
        return self._aes.encrypt_block(xor_bytes(self._state, last))


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """One-shot AES-CMAC of ``message`` under ``key``."""
    return AesCmac(key).update(message).finalize()
