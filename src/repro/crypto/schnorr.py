"""Schnorr signatures over a Schnorr group, implemented from scratch.

Section 8 of the paper proposes "a signature mechanism ... when it is
not possible to exchange a secret key between the prover and the
verifier before deployment".  This module provides the primitive: a
classic Schnorr signature over a prime-order subgroup of Z_p*, with
deterministic (RFC-6979-style) nonces so signing needs no runtime
randomness — the only secret is the PUF-derived private key.

The group is the 2048-bit MODP group of RFC 3526 (order q = (p-1)/2,
generator 4 = 2² generates the quadratic residues).  Parameters are
fixed; no parameter negotiation exists in the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.sha256 import sha256

#: RFC 3526, 2048-bit MODP group prime (a safe prime: p = 2q + 1).
GROUP_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)
GROUP_Q = (GROUP_P - 1) // 2
GROUP_G = 4  # 2^2: generates the order-q subgroup of quadratic residues


@dataclass(frozen=True)
class SchnorrPublicKey:
    """The verification key: y = g^x mod p."""

    y: int

    def encode(self) -> bytes:
        return self.y.to_bytes(256, "big")


@dataclass(frozen=True)
class SchnorrKeyPair:
    """A signing keypair."""

    private: int
    public: SchnorrPublicKey


def keypair_from_seed(seed: bytes) -> SchnorrKeyPair:
    """Derive a keypair deterministically from secret seed material.

    In the SACHa extension the seed is the PUF-derived device secret, so
    the private key — like the MAC key it replaces — exists only inside
    the device and is never provisioned over any channel.
    """
    if not seed:
        raise ValueError("keypair seed must be non-empty")
    material = b""
    counter = 0
    while len(material) < 64:
        material += sha256(bytes([counter]) + b"schnorr-key" + seed)
        counter += 1
    private = int.from_bytes(material[:64], "big") % (GROUP_Q - 1) + 1
    public = SchnorrPublicKey(pow(GROUP_G, private, GROUP_P))
    return SchnorrKeyPair(private=private, public=public)


def _challenge(*parts: bytes) -> int:
    """The 256-bit Fiat-Shamir challenge c = H(R ‖ y ‖ m)."""
    blob = b""
    for part in parts:
        blob += len(part).to_bytes(4, "big") + part
    return int.from_bytes(sha256(blob), "big")


@dataclass(frozen=True)
class SchnorrSignature:
    """A signature (c, s): c = H(R ‖ y ‖ m), s = k − c·x mod q."""

    c: int
    s: int

    def encode(self) -> bytes:
        return self.c.to_bytes(32, "big") + self.s.to_bytes(256, "big")

    @classmethod
    def decode(cls, data: bytes) -> "SchnorrSignature":
        if len(data) != 32 + 256:
            raise ValueError(f"signature must be 288 bytes, got {len(data)}")
        return cls(
            c=int.from_bytes(data[:32], "big"),
            s=int.from_bytes(data[32:], "big"),
        )


def sign(keypair: SchnorrKeyPair, message: bytes) -> SchnorrSignature:
    """Sign with a deterministic per-message nonce (no RNG on device)."""
    nonce_material = b""
    counter = 0
    while len(nonce_material) < 64:
        nonce_material += sha256(
            bytes([counter])
            + b"schnorr-nonce"
            + keypair.private.to_bytes(256, "big")
            + message
        )
        counter += 1
    k = int.from_bytes(nonce_material[:64], "big") % (GROUP_Q - 1) + 1
    commitment = pow(GROUP_G, k, GROUP_P)
    c = _challenge(
        commitment.to_bytes(256, "big"), keypair.public.encode(), message
    )
    s = (k - c * keypair.private) % GROUP_Q
    return SchnorrSignature(c=c, s=s)


def verify(
    public: SchnorrPublicKey, message: bytes, signature: SchnorrSignature
) -> bool:
    """Check g^s · y^c == R and c == H(R ‖ y ‖ m)."""
    if not 0 <= signature.c < (1 << 256) or not 0 <= signature.s < GROUP_Q:
        return False
    if not 1 < public.y < GROUP_P:
        return False
    commitment = (
        pow(GROUP_G, signature.s, GROUP_P) * pow(public.y, signature.c, GROUP_P)
    ) % GROUP_P
    expected = _challenge(
        commitment.to_bytes(256, "big"), public.encode(), message
    )
    return expected == signature.c
