"""Key derivation from PUF responses.

The weak PUF in the SACHa architecture yields a noisy device-unique byte
string; after error correction (see ``repro.fpga.puf``) the corrected
response is hashed down to the 128-bit AES-CMAC key.  Derivation is
domain-separated so the same response can yield independent keys for
different purposes (MAC key, future signature key).
"""

from __future__ import annotations

from repro.crypto.sha256 import sha256


def derive_key(secret: bytes, label: str, length: int = 16) -> bytes:
    """Derive ``length`` key bytes from ``secret`` for the given ``label``.

    A simple counter-mode KDF over SHA-256: output block i is
    ``SHA256(counter ‖ label ‖ secret)``.
    """
    if length <= 0:
        raise ValueError(f"key length must be positive, got {length}")
    if length > 255 * 32:
        raise ValueError(f"requested key too long: {length} bytes")
    label_bytes = label.encode("utf-8")
    blocks = bytearray()
    counter = 0
    while len(blocks) < length:
        blocks += sha256(bytes([counter]) + label_bytes + b"\x00" + secret)
        counter += 1
    return bytes(blocks[:length])


def derive_mac_key(puf_response: bytes) -> bytes:
    """The 128-bit AES-CMAC key from a corrected PUF response."""
    return derive_key(puf_response, "sacha/mac-key", 16)
