"""From-scratch cryptographic primitives for the SACHa reproduction.

Software models of the hardware cores in the StatPart (AES, AES-CMAC) and
the auxiliary algorithms the baselines and the PUF pipeline need (SHA-256,
HMAC, AES-CTR PRF, KDF).  No external crypto dependency is used.
"""

from repro.crypto.aes import BLOCK_SIZE, Aes
from repro.crypto.cmac import AesCmac, aes_cmac
from repro.crypto.hmac import HmacSha256, hmac_sha256
from repro.crypto.kdf import derive_key, derive_mac_key
from repro.crypto.prf import AesCtrKeystream, prf_bytes
from repro.crypto.sha256 import Sha256, sha256

__all__ = [
    "BLOCK_SIZE",
    "Aes",
    "AesCmac",
    "aes_cmac",
    "HmacSha256",
    "hmac_sha256",
    "derive_key",
    "derive_mac_key",
    "AesCtrKeystream",
    "prf_bytes",
    "Sha256",
    "sha256",
]
