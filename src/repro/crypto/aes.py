"""AES block cipher, implemented from scratch.

The SACHa StatPart contains a low-area AES core feeding the CMAC unit
(Section 6.2 of the paper uses 128-bit AES).  This is a table-driven
software model of that core: four T-tables fold SubBytes, ShiftRows and
MixColumns into one lookup layer per round, which keeps the 28,488-frame
readback MAC tractable in pure Python.

Only encryption is required by CMAC; decryption is provided for
completeness and round-trip testing.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

BLOCK_SIZE = 16

# --------------------------------------------------------------------------
# S-box construction (from first principles: inversion in GF(2^8) + affine)
# --------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> Tuple[List[int], List[int]]:
    # Build the multiplicative inverse table via exp/log over generator 3.
    exp = [0] * 510
    log = [0] * 256
    value = 1
    for exponent in range(255):
        exp[exponent] = value
        log[value] = exponent
        value = _gf_mul(value, 3)
    for exponent in range(255, 510):
        exp[exponent] = exp[exponent - 255]

    sbox = [0] * 256
    inverse_sbox = [0] * 256
    for byte in range(256):
        inv = 0 if byte == 0 else exp[255 - log[byte]]
        transformed = 0x63
        for shift in (0, 1, 2, 3, 4):
            transformed ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[byte] = transformed & 0xFF
    for byte, mapped in enumerate(sbox):
        inverse_sbox[mapped] = byte
    return sbox, inverse_sbox


SBOX, INV_SBOX = _build_sbox()


def _build_tables() -> Tuple[List[List[int]], List[List[int]]]:
    """Encryption tables Te0..Te3 and decryption tables Td0..Td3."""
    te = [[0] * 256 for _ in range(4)]
    td = [[0] * 256 for _ in range(4)]
    for byte in range(256):
        s = SBOX[byte]
        word = (
            (_gf_mul(s, 2) << 24)
            | (s << 16)
            | (s << 8)
            | _gf_mul(s, 3)
        )
        for column in range(4):
            te[column][byte] = ((word >> (8 * column)) | (word << (32 - 8 * column))) & 0xFFFFFFFF

        inv = INV_SBOX[byte]
        word = (
            (_gf_mul(inv, 14) << 24)
            | (_gf_mul(inv, 9) << 16)
            | (_gf_mul(inv, 13) << 8)
            | _gf_mul(inv, 11)
        )
        for column in range(4):
            td[column][byte] = ((word >> (8 * column)) | (word << (32 - 8 * column))) & 0xFFFFFFFF
    return te, td


_TE, _TD = _build_tables()
_TE0, _TE1, _TE2, _TE3 = _TE
_TD0, _TD1, _TD2, _TD3 = _TD

_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8, 0xAB, 0x4D]


def _sub_word(word: int) -> int:
    return (
        (SBOX[(word >> 24) & 0xFF] << 24)
        | (SBOX[(word >> 16) & 0xFF] << 16)
        | (SBOX[(word >> 8) & 0xFF] << 8)
        | SBOX[word & 0xFF]
    )


def _rot_word(word: int) -> int:
    return ((word << 8) | (word >> 24)) & 0xFFFFFFFF


def expand_round_keys(key: bytes) -> List[int]:
    """The AES key schedule as ``4 * (rounds + 1)`` big-endian words.

    Shared by :class:`Aes` and the alternative cipher backends in
    :mod:`repro.perf.backends`, so every backend runs the identical
    schedule.
    """
    if len(key) not in (16, 24, 32):
        raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
    nk = len(key) // 4
    rounds = nk + 6
    total = 4 * (rounds + 1)
    words = [int.from_bytes(key[4 * i : 4 * i + 4], "big") for i in range(nk)]
    for i in range(nk, total):
        temp = words[i - 1]
        if i % nk == 0:
            temp = _sub_word(_rot_word(temp)) ^ (_RCON[i // nk - 1] << 24)
        elif nk > 6 and i % nk == 4:
            temp = _sub_word(temp)
        words.append(words[i - nk] ^ temp)
    return words


def encryption_tables() -> Tuple[List[int], List[int], List[int], List[int]]:
    """The four encryption T-tables (for the table backend's fold)."""
    return _TE0, _TE1, _TE2, _TE3


class Aes:
    """AES-128/192/256 with precomputed round keys.

    The object is immutable after construction; ``encrypt_block`` is safe
    to call concurrently from the discrete-event simulator's callbacks.
    """

    def __init__(self, key: bytes) -> None:
        if len(key) not in (16, 24, 32):
            raise ValueError(f"AES key must be 16/24/32 bytes, got {len(key)}")
        self._key_words = len(key) // 4
        self._rounds = self._key_words + 6
        self._round_keys = expand_round_keys(key)
        self._dec_round_keys = self._invert_key_schedule(self._round_keys)

    @property
    def rounds(self) -> int:
        return self._rounds

    def _invert_key_schedule(self, round_keys: Sequence[int]) -> List[int]:
        """Equivalent decryption schedule (InvMixColumns on middle keys)."""
        rounds = self._rounds
        inverted: List[int] = []
        for round_index in range(rounds, -1, -1):
            chunk = round_keys[4 * round_index : 4 * round_index + 4]
            if 0 < round_index < rounds:
                chunk = [self._inv_mix_word(word) for word in chunk]
            inverted.extend(chunk)
        return inverted

    @staticmethod
    def _inv_mix_word(word: int) -> int:
        result = 0
        for shift in (24, 16, 8, 0):
            byte = (word >> shift) & 0xFF
            mixed = (
                (_gf_mul(byte, 14) << 24)
                | (_gf_mul(byte, 9) << 16)
                | (_gf_mul(byte, 13) << 8)
                | _gf_mul(byte, 11)
            )
            rotation = 24 - shift
            result ^= ((mixed >> rotation) | (mixed << (32 - rotation))) & 0xFFFFFFFF
        return result

    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        keys = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ keys[0]
        s1 = int.from_bytes(block[4:8], "big") ^ keys[1]
        s2 = int.from_bytes(block[8:12], "big") ^ keys[2]
        s3 = int.from_bytes(block[12:16], "big") ^ keys[3]

        offset = 4
        for _ in range(self._rounds - 1):
            t0 = (
                _TE0[s0 >> 24]
                ^ _TE1[(s1 >> 16) & 0xFF]
                ^ _TE2[(s2 >> 8) & 0xFF]
                ^ _TE3[s3 & 0xFF]
                ^ keys[offset]
            )
            t1 = (
                _TE0[s1 >> 24]
                ^ _TE1[(s2 >> 16) & 0xFF]
                ^ _TE2[(s3 >> 8) & 0xFF]
                ^ _TE3[s0 & 0xFF]
                ^ keys[offset + 1]
            )
            t2 = (
                _TE0[s2 >> 24]
                ^ _TE1[(s3 >> 16) & 0xFF]
                ^ _TE2[(s0 >> 8) & 0xFF]
                ^ _TE3[s1 & 0xFF]
                ^ keys[offset + 2]
            )
            t3 = (
                _TE0[s3 >> 24]
                ^ _TE1[(s0 >> 16) & 0xFF]
                ^ _TE2[(s1 >> 8) & 0xFF]
                ^ _TE3[s2 & 0xFF]
                ^ keys[offset + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            offset += 4

        sbox = SBOX
        out0 = (
            (sbox[s0 >> 24] << 24)
            | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8)
            | sbox[s3 & 0xFF]
        ) ^ keys[offset]
        out1 = (
            (sbox[s1 >> 24] << 24)
            | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8)
            | sbox[s0 & 0xFF]
        ) ^ keys[offset + 1]
        out2 = (
            (sbox[s2 >> 24] << 24)
            | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8)
            | sbox[s1 & 0xFF]
        ) ^ keys[offset + 2]
        out3 = (
            (sbox[s3 >> 24] << 24)
            | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8)
            | sbox[s2 & 0xFF]
        ) ^ keys[offset + 3]
        return (
            out0.to_bytes(4, "big")
            + out1.to_bytes(4, "big")
            + out2.to_bytes(4, "big")
            + out3.to_bytes(4, "big")
        )

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"block must be {BLOCK_SIZE} bytes, got {len(block)}")
        keys = self._dec_round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ keys[0]
        s1 = int.from_bytes(block[4:8], "big") ^ keys[1]
        s2 = int.from_bytes(block[8:12], "big") ^ keys[2]
        s3 = int.from_bytes(block[12:16], "big") ^ keys[3]

        offset = 4
        for _ in range(self._rounds - 1):
            t0 = (
                _TD0[s0 >> 24]
                ^ _TD1[(s3 >> 16) & 0xFF]
                ^ _TD2[(s2 >> 8) & 0xFF]
                ^ _TD3[s1 & 0xFF]
                ^ keys[offset]
            )
            t1 = (
                _TD0[s1 >> 24]
                ^ _TD1[(s0 >> 16) & 0xFF]
                ^ _TD2[(s3 >> 8) & 0xFF]
                ^ _TD3[s2 & 0xFF]
                ^ keys[offset + 1]
            )
            t2 = (
                _TD0[s2 >> 24]
                ^ _TD1[(s1 >> 16) & 0xFF]
                ^ _TD2[(s0 >> 8) & 0xFF]
                ^ _TD3[s3 & 0xFF]
                ^ keys[offset + 2]
            )
            t3 = (
                _TD0[s3 >> 24]
                ^ _TD1[(s2 >> 16) & 0xFF]
                ^ _TD2[(s1 >> 8) & 0xFF]
                ^ _TD3[s0 & 0xFF]
                ^ keys[offset + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3
            offset += 4

        sbox = INV_SBOX
        out0 = (
            (sbox[s0 >> 24] << 24)
            | (sbox[(s3 >> 16) & 0xFF] << 16)
            | (sbox[(s2 >> 8) & 0xFF] << 8)
            | sbox[s1 & 0xFF]
        ) ^ keys[offset]
        out1 = (
            (sbox[s1 >> 24] << 24)
            | (sbox[(s0 >> 16) & 0xFF] << 16)
            | (sbox[(s3 >> 8) & 0xFF] << 8)
            | sbox[s2 & 0xFF]
        ) ^ keys[offset + 1]
        out2 = (
            (sbox[s2 >> 24] << 24)
            | (sbox[(s1 >> 16) & 0xFF] << 16)
            | (sbox[(s0 >> 8) & 0xFF] << 8)
            | sbox[s3 & 0xFF]
        ) ^ keys[offset + 2]
        out3 = (
            (sbox[s3 >> 24] << 24)
            | (sbox[(s2 >> 16) & 0xFF] << 16)
            | (sbox[(s1 >> 8) & 0xFF] << 8)
            | sbox[s0 & 0xFF]
        ) ^ keys[offset + 3]
        return (
            out0.to_bytes(4, "big")
            + out1.to_bytes(4, "big")
            + out2.to_bytes(4, "big")
            + out3.to_bytes(4, "big")
        )
