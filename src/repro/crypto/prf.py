"""Keystream / PRF utilities built on AES-CTR.

Two consumers:

* the Perito–Tsudik and Choi-style baselines fill the prover's bounded
  memory with verifier-chosen pseudorandomness;
* deterministic payload generation for workloads and attack harnesses.
"""

from __future__ import annotations

from repro.crypto.aes import BLOCK_SIZE, Aes


class AesCtrKeystream:
    """AES-128 in counter mode used as a deterministic byte stream."""

    def __init__(self, key: bytes, nonce: bytes = b"") -> None:
        if len(nonce) > 8:
            raise ValueError(f"nonce must be at most 8 bytes, got {len(nonce)}")
        self._aes = Aes(key)
        self._prefix = nonce + bytes(8 - len(nonce))
        self._counter = 0
        self._pending = b""

    def read(self, count: int) -> bytes:
        """Return the next ``count`` keystream bytes."""
        if count < 0:
            raise ValueError(f"cannot read {count} bytes")
        out = bytearray()
        if self._pending:
            take = min(count, len(self._pending))
            out += self._pending[:take]
            self._pending = self._pending[take:]
        while len(out) < count:
            block = self._aes.encrypt_block(
                self._prefix + self._counter.to_bytes(8, "big")
            )
            self._counter += 1
            need = count - len(out)
            if need >= BLOCK_SIZE:
                out += block
            else:
                out += block[:need]
                self._pending = block[need:]
        return bytes(out)


def prf_bytes(key: bytes, label: bytes, count: int) -> bytes:
    """Deterministic ``count`` bytes bound to ``key`` and ``label``."""
    return AesCtrKeystream(key, nonce=label[:8].ljust(8, b"\x00")).read(count)
