"""HMAC-SHA256 (RFC 2104), built on the from-scratch SHA-256.

SACHa itself uses AES-CMAC; HMAC is provided for the software baselines
(SWATT-style checksums, Perito–Tsudik MAC variant) and as a second MAC
option in the prover, mirroring the paper's note that the checksum
algorithm is a protocol parameter.
"""

from __future__ import annotations

from repro.crypto.sha256 import Sha256, sha256

_BLOCK = 64
_IPAD = 0x36
_OPAD = 0x5C


class HmacSha256:
    """Incremental HMAC-SHA256."""

    DIGEST_SIZE = 32

    def __init__(self, key: bytes) -> None:
        if len(key) > _BLOCK:
            key = sha256(key)
        key = key + bytes(_BLOCK - len(key))
        self._outer_key = bytes(byte ^ _OPAD for byte in key)
        self._inner = Sha256().update(bytes(byte ^ _IPAD for byte in key))

    def update(self, data: bytes) -> "HmacSha256":
        self._inner.update(data)
        return self

    def finalize(self) -> bytes:
        return sha256(self._outer_key + self._inner.digest())


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """One-shot HMAC-SHA256."""
    return HmacSha256(key).update(message).finalize()
