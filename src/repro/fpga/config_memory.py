"""The SRAM configuration memory of the FPGA.

The configuration memory *is* the device state in the SACHa model: the
data stored here determine the functionality of the configurable fabric,
and the whole attestation argument rests on every frame of it being
readable and writable through the ICAP.

Frames are stored as a NumPy big-endian ``>u4`` array of shape
``(total_frames, words_per_frame)``, matching the wire byte order, so
per-frame reads and whole-sweep reads are plain buffer copies with no
byte-order conversion on the hot path.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.errors import ConfigMemoryError, FrameAddressError
from repro.fpga.device import DevicePart
from repro.utils.rng import DeterministicRng


class ConfigurationMemory:
    """Frame-addressable SRAM configuration memory.

    Frames are stored big-endian (``>u4``) — the wire byte order — so a
    frame's bytes are one zero-conversion ``tobytes`` away and a whole
    readback sweep is a single contiguous buffer slice.
    """

    def __init__(self, device: DevicePart) -> None:
        self._device = device
        self._frames = np.zeros(
            (device.total_frames, device.words_per_frame), dtype=">u4"
        )

    @classmethod
    def from_frames(cls, device: DevicePart, frames: np.ndarray) -> "ConfigurationMemory":
        """Rebuild a memory from a stored frame array (the ``.npy`` blob)."""
        expected = (device.total_frames, device.words_per_frame)
        if frames.shape != expected:
            raise ConfigMemoryError(
                f"frame array of shape {frames.shape} does not fit "
                f"{device.name} ({expected[0]} x {expected[1]} words)"
            )
        memory = cls(device)
        memory._frames = frames.astype(">u4")
        return memory

    @property
    def device(self) -> DevicePart:
        return self._device

    @property
    def total_frames(self) -> int:
        return self._device.total_frames

    @property
    def frame_bytes(self) -> int:
        return self._device.frame_bytes

    def _check_index(self, frame_index: int) -> None:
        if not 0 <= frame_index < self._device.total_frames:
            raise FrameAddressError(
                f"frame {frame_index} out of range for {self._device.name}"
            )

    # -- frame access --------------------------------------------------------

    def write_frame(self, frame_index: int, data: bytes) -> None:
        """Overwrite one frame with ``data`` (big-endian words)."""
        self._check_index(frame_index)
        if len(data) != self._device.frame_bytes:
            raise ConfigMemoryError(
                f"frame data must be {self._device.frame_bytes} bytes, "
                f"got {len(data)}"
            )
        self._frames[frame_index] = np.frombuffer(data, dtype=">u4")

    def read_frame(self, frame_index: int) -> bytes:
        """Read one frame as big-endian word bytes."""
        self._check_index(frame_index)
        return self._frames[frame_index].tobytes()

    def read_frames(self, start_index: int, count: int) -> bytes:
        """``count`` consecutive frames as one contiguous byte buffer.

        One copy for the whole range — the bulk-readback primitive.
        """
        if count < 1:
            raise ConfigMemoryError(f"frame count must be positive, got {count}")
        self._check_index(start_index)
        self._check_index(start_index + count - 1)
        return self._frames[start_index : start_index + count].tobytes()

    def frames_array(self) -> np.ndarray:
        """The raw ``(total_frames, words_per_frame)`` big-endian array.

        Zero-copy view for bulk operations (mask application, vectorized
        golden comparison).  Treat as read-only unless you *are* the
        memory's owner.
        """
        return self._frames

    def read_frame_words(self, frame_index: int) -> List[int]:
        self._check_index(frame_index)
        return [int(word) for word in self._frames[frame_index]]

    def write_frame_words(self, frame_index: int, words: Iterable[int]) -> None:
        words = list(words)
        if len(words) != self._device.words_per_frame:
            raise ConfigMemoryError(
                f"frame needs {self._device.words_per_frame} words, got {len(words)}"
            )
        self._check_index(frame_index)
        self._frames[frame_index] = np.array(words, dtype=np.uint32)

    # -- bit-level access (tamper injection, register overlay) ---------------

    def get_bit(self, frame_index: int, word_index: int, bit_index: int) -> int:
        self._check_index(frame_index)
        self._check_bit(word_index, bit_index)
        return int(self._frames[frame_index, word_index] >> bit_index) & 1

    def set_bit(
        self, frame_index: int, word_index: int, bit_index: int, value: int
    ) -> None:
        self._check_index(frame_index)
        self._check_bit(word_index, bit_index)
        if value not in (0, 1):
            raise ConfigMemoryError(f"bit value must be 0 or 1, got {value}")
        word = int(self._frames[frame_index, word_index])
        if value:
            word |= 1 << bit_index
        else:
            word &= ~(1 << bit_index)
        self._frames[frame_index, word_index] = word

    def flip_bit(self, frame_index: int, word_index: int, bit_index: int) -> None:
        """Invert one configuration bit (the unit of tampering)."""
        current = self.get_bit(frame_index, word_index, bit_index)
        self.set_bit(frame_index, word_index, bit_index, current ^ 1)

    def _check_bit(self, word_index: int, bit_index: int) -> None:
        if not 0 <= word_index < self._device.words_per_frame:
            raise ConfigMemoryError(f"word index {word_index} out of range")
        if not 0 <= bit_index < 32:
            raise ConfigMemoryError(f"bit index {bit_index} out of range")

    # -- bulk operations -----------------------------------------------------

    def snapshot(self) -> bytes:
        """The whole configuration memory as bytes, frame-major."""
        return self._frames.tobytes()

    def load_snapshot(self, data: bytes) -> None:
        expected = self._device.configuration_bytes()
        if len(data) != expected:
            raise ConfigMemoryError(
                f"snapshot must be {expected} bytes, got {len(data)}"
            )
        self._frames = (
            np.frombuffer(data, dtype=">u4")
            .reshape(self._device.total_frames, self._device.words_per_frame)
            .copy()
        )

    def zeroize(self, frame_indices: Optional[Iterable[int]] = None) -> None:
        """Clear all frames, or just the given ones."""
        if frame_indices is None:
            self._frames[:] = 0
            return
        for frame_index in frame_indices:
            self._check_index(frame_index)
            self._frames[frame_index] = 0

    def randomize(
        self, rng: DeterministicRng, frame_indices: Optional[Iterable[int]] = None
    ) -> None:
        """Fill frames with deterministic pseudo-random content."""
        indices = (
            range(self._device.total_frames) if frame_indices is None else frame_indices
        )
        for frame_index in indices:
            self.write_frame(frame_index, rng.randbytes(self._device.frame_bytes))

    def copy(self) -> "ConfigurationMemory":
        clone = ConfigurationMemory(self._device)
        clone._frames = self._frames.copy()
        return clone

    def differing_frames(self, other: "ConfigurationMemory") -> List[int]:
        """Indices of frames whose content differs from ``other``."""
        if other.device is not self._device and other.device != self._device:
            raise ConfigMemoryError(
                f"cannot diff {self._device.name} against {other.device.name}"
            )
        mismatch = np.any(self._frames != other._frames, axis=1)
        return [int(index) for index in np.nonzero(mismatch)[0]]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConfigurationMemory):
            return NotImplemented
        return self._device == other.device and bool(
            np.array_equal(self._frames, other._frames)
        )

    __hash__ = None  # type: ignore[assignment]  # mutable container
