"""BootMem: the non-volatile boot flash of the prover board.

Properties the system model (Section 3) relies on:

* programmed before deployment, then *read-only* — on commercial boards
  reprogramming requires physically decoupling the chip, so the remote
  adversary cannot write it;
* deliberately sized so it can hold the static bitstream but **not** the
  partial bitstream of the dynamic partition (Section 5.2.1) — otherwise
  it would be a hiding place that breaks the bounded-memory argument.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FlashError


class BootMem:
    """A small NOR-flash model with an offline-only programming port."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise FlashError(f"flash capacity must be positive, got {capacity_bytes}")
        self._capacity = capacity_bytes
        self._image: Optional[bytes] = None
        self._deployed = False
        self.program_cycles = 0

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def is_programmed(self) -> bool:
        return self._image is not None

    @property
    def is_deployed(self) -> bool:
        return self._deployed

    def program(self, image: bytes) -> None:
        """Write the boot image; only possible before deployment."""
        if self._deployed:
            raise FlashError(
                "BootMem is deployed: programming requires physical access "
                "(decoupling the chip from the board)"
            )
        if len(image) > self._capacity:
            raise FlashError(
                f"image of {len(image)} bytes exceeds flash capacity "
                f"{self._capacity}"
            )
        self._image = bytes(image)
        self.program_cycles += 1

    def deploy(self) -> None:
        """Mark the board as fielded; the flash becomes read-only."""
        if self._image is None:
            raise FlashError("cannot deploy an unprogrammed BootMem")
        self._deployed = True

    def read(self) -> bytes:
        if self._image is None:
            raise FlashError("BootMem is not programmed")
        return self._image

    def can_store(self, size_bytes: int) -> bool:
        """Capacity check used by the bounded-memory invariants."""
        return size_bytes <= self._capacity
