"""The Internal Configuration Access Port (ICAP).

The ICAP is the static partition's window into the configuration memory:
it writes frames during partial reconfiguration and reads the *entire*
memory back — including the static partition's own frames — which is what
makes self-attestation possible (Figures 3 and 4 of the paper).

The model is functional plus cycle-accounted: every operation moves real
frame bytes and tallies the 32-bit-word transactions it would take on the
100 MHz ICAP clock, so the timing layer can derive A2/A4 durations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional

import numpy as np

from repro.errors import IcapError
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.registers import LiveRegisterFile

#: Command/address words surrounding each frame write (sync, FAR, FDRI
#: header, ...) — the fixed packet overhead of a one-frame configuration.
WRITE_OVERHEAD_WORDS = 16
#: Words clocked for a one-frame readback beyond the frame itself: the
#: readback command sequence plus the pipeline pad frame the silicon
#: flushes before real data appears.
READBACK_OVERHEAD_WORDS = 24


@dataclass
class IcapStats:
    """Transaction counters for the cycle/timing model."""

    frames_written: int = 0
    frames_read: int = 0
    words_written: int = 0
    words_read: int = 0
    operations: List[str] = field(default_factory=list)

    def record(self, operation: str) -> None:
        self.operations.append(operation)


class Icap:
    """Functional ICAP bound to one configuration memory.

    ``enabled`` models the (rarely used) option of locking the ICAP out of
    the static region: when a static-frame write is attempted with
    ``protect_frames`` set, the write is refused.  SACHa deliberately does
    *not* protect any frame for readback — the whole memory must be
    attestable.
    """

    def __init__(
        self,
        memory: ConfigurationMemory,
        registers: Optional[LiveRegisterFile] = None,
    ) -> None:
        self._memory = memory
        self._registers = registers
        self._protected_frames: frozenset = frozenset()
        self.stats = IcapStats()

    @property
    def memory(self) -> ConfigurationMemory:
        return self._memory

    @property
    def registers(self) -> Optional[LiveRegisterFile]:
        return self._registers

    def protect_frames(self, frame_indices) -> None:
        """Refuse ICAP writes to these frames (static-region write lock)."""
        self._protected_frames = frozenset(frame_indices)

    # -- configuration write --------------------------------------------------

    def write_frame(self, frame_index: int, data: bytes) -> None:
        """Write one frame of configuration data (partial reconfiguration).

        Overwriting a frame replaces the logic configured there, so any
        live register state declared in that frame is discarded.
        """
        if frame_index in self._protected_frames:
            raise IcapError(f"frame {frame_index} is write-protected")
        self._memory.write_frame(frame_index, data)
        if self._registers is not None:
            self._registers.forget_frame(frame_index)
        self.stats.frames_written += 1
        self.stats.words_written += self._memory.device.words_per_frame
        self.stats.words_written += WRITE_OVERHEAD_WORDS
        self.stats.record(f"write[{frame_index}]")

    def write_frames(self, frame_indices, data: bytes) -> None:
        """Write several equal-sized frames in one vectorized store.

        Equivalent to calling :meth:`write_frame` for each index in order
        — same memory contents, same register invalidation, same word
        accounting — but the frame contents land in the configuration
        array as a single fancy-indexed assignment instead of one
        reshape/copy per frame.
        """
        indices = np.asarray(frame_indices, dtype=np.intp)
        count = len(indices)
        device = self._memory.device
        if count == 0:
            return
        if len(data) != count * device.frame_bytes:
            raise IcapError(
                f"{len(data)} bytes do not hold {count} frames of "
                f"{device.frame_bytes} bytes"
            )
        if int(indices.min()) < 0 or int(indices.max()) >= device.total_frames:
            raise IcapError("frame index out of range in bulk write")
        if self._protected_frames:
            for frame_index in indices:
                if int(frame_index) in self._protected_frames:
                    raise IcapError(f"frame {frame_index} is write-protected")
        self._memory.frames_array()[indices] = np.frombuffer(
            data, dtype=">u4"
        ).reshape(count, device.words_per_frame)
        if self._registers is not None:
            for frame_index in indices:
                self._registers.forget_frame(int(frame_index))
        self.stats.frames_written += count
        self.stats.words_written += count * (
            device.words_per_frame + WRITE_OVERHEAD_WORDS
        )
        self.stats.record(f"write[batch x{count}]")

    # -- configuration readback -----------------------------------------------

    def readback_frame(self, frame_index: int) -> bytes:
        """Read one frame back, with live register values substituted.

        This is the raw datum the MAC core consumes and the verifier must
        mask: configuration bits plus current storage-element state.
        """
        data = self._memory.read_frame(frame_index)
        if self._registers is not None:
            data = self._registers.overlay_frame(frame_index, data)
        self.stats.frames_read += 1
        self.stats.words_read += self._memory.device.words_per_frame
        self.stats.words_read += READBACK_OVERHEAD_WORDS
        self.stats.record(f"read[{frame_index}]")
        return data

    def readback_range(self, start_index: int, count: int) -> bytes:
        """Read ``count`` consecutive frames as one contiguous buffer.

        Equivalent to concatenating :meth:`readback_frame` results for the
        range — same bytes, same transaction accounting — but the sweep is
        a single bulk copy out of the configuration memory with register
        overlays patched in place, instead of ``count`` separate frame
        copies.
        """
        if count < 1:
            raise IcapError(f"readback count must be positive, got {count}")
        buffer = bytearray(self._memory.read_frames(start_index, count))
        if self._registers is not None:
            frame_bytes = self._memory.device.frame_bytes
            for frame_index in self._registers.frames_with_registers():
                if start_index <= frame_index < start_index + count:
                    self._registers.overlay_into(
                        frame_index,
                        buffer,
                        (frame_index - start_index) * frame_bytes,
                    )
        self.stats.frames_read += count
        self.stats.words_read += count * (
            self._memory.device.words_per_frame + READBACK_OVERHEAD_WORDS
        )
        self.stats.record(f"read[{start_index}..{start_index + count - 1}]")
        return bytes(buffer)

    def iter_readback(
        self, start_index: int = 0, count: Optional[int] = None
    ) -> Iterator[memoryview]:
        """Yield frames in ascending order without materializing the sweep.

        One bulk :meth:`readback_range` backs the iteration; each yielded
        item is a read-only ``memoryview`` slice of that buffer, so a
        full-device sweep costs one allocation rather than one ``bytes``
        object per frame.
        """
        if count is None:
            count = self._memory.total_frames - start_index
        data = memoryview(self.readback_range(start_index, count))
        frame_bytes = self._memory.device.frame_bytes
        for offset in range(count):
            yield data[offset * frame_bytes : (offset + 1) * frame_bytes]

    def readback_all(self) -> List[bytes]:
        """Read every frame in ascending order (Figure 4)."""
        return [bytes(frame) for frame in self.iter_readback()]

    # -- cycle accounting -------------------------------------------------------

    def write_cycles_per_frame(self) -> int:
        """32-bit ICAP transactions for a one-frame configuration write."""
        return self._memory.device.words_per_frame + WRITE_OVERHEAD_WORDS

    def readback_cycles_per_frame(self) -> int:
        """32-bit ICAP transactions for a one-frame readback."""
        return self._memory.device.words_per_frame + READBACK_OVERHEAD_WORDS
