"""Block RAM inventory and the bounded-memory argument.

SACHa's security reduces to one quantitative fact (Section 5.2): the
configurable fabric does not have enough embedded memory to buffer the
partial bitstream the verifier sends, so the bitstream *must* land in the
configuration memory, overwriting whatever was there.  This module makes
that argument a checkable object.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.device import DevicePart


@dataclass(frozen=True)
class BoundedMemoryCheck:
    """Outcome of the bounded-memory feasibility check."""

    device_name: str
    bram_capacity_bytes: int
    payload_bytes: int

    @property
    def holds(self) -> bool:
        """True when the payload cannot be hidden in BRAM."""
        return self.payload_bytes > self.bram_capacity_bytes

    @property
    def ratio(self) -> float:
        """payload / capacity; must exceed 1 for the model to hold."""
        if self.bram_capacity_bytes == 0:
            return float("inf")
        return self.payload_bytes / self.bram_capacity_bytes

    def explain(self) -> str:
        verdict = "holds" if self.holds else "VIOLATED"
        return (
            f"bounded-memory model {verdict} on {self.device_name}: "
            f"payload {self.payload_bytes} B vs BRAM {self.bram_capacity_bytes} B "
            f"(ratio {self.ratio:.2f})"
        )


class BramInventory:
    """BRAM accounting for one device."""

    def __init__(self, device: DevicePart) -> None:
        self._device = device

    @property
    def total_bytes(self) -> int:
        return self._device.bram_capacity_bytes()

    def check_bounded_memory(self, payload_bytes: int) -> BoundedMemoryCheck:
        """Can a payload of this size be buffered in fabric memory?"""
        return BoundedMemoryCheck(
            device_name=self._device.name,
            bram_capacity_bytes=self.total_bytes,
            payload_bytes=payload_bytes,
        )

    def check_partial_bitstream(self, dynamic_frame_count: int) -> BoundedMemoryCheck:
        """The SACHa instantiation: DynMem payload vs fabric BRAM."""
        payload = dynamic_frame_count * self._device.frame_bytes
        return self.check_bounded_memory(payload)

    def frames_storable(self) -> int:
        """How many frames of bitstream the fabric *could* buffer — the
        attacker's hoarding budget in ``repro.attacks.bram_hoard``."""
        return self.total_bytes // self._device.frame_bytes
