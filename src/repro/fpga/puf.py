"""Weak PUF model and fuzzy-extractor key generation.

SACHa derives the AES-CMAC key from a *weak* (key-generating) PUF so the
key exists only inside the legitimate device and never crosses the
channel (Section 5.2.1).  The paper assumes an ideal key-generating PUF;
we model the realistic pipeline it stands for:

* an SRAM PUF with a device-unique nominal response and i.i.d. read
  noise;
* a code-offset fuzzy extractor with repetition-code error correction;
* SHA-256-based key derivation from the corrected secret.

Enrollment happens in the same provisioning step that programs BootMem;
the verifier keeps the (device id → key) database.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.kdf import derive_mac_key
from repro.crypto.sha256 import sha256
from repro.errors import PufError
from repro.utils.rng import DeterministicRng


class SramPuf:
    """A weak PUF: stable per-device fingerprint plus read noise.

    ``identity_seed`` stands for the silicon; two PUFs built from the same
    seed are *the same device*.  ``noise_rate`` is the per-bit flip
    probability on each evaluation (typical SRAM PUFs: 5–15 %).
    """

    def __init__(
        self,
        identity_seed: int,
        response_bytes: int = 256,
        noise_rate: float = 0.05,
    ) -> None:
        if response_bytes <= 0:
            raise PufError(f"response size must be positive, got {response_bytes}")
        if not 0.0 <= noise_rate < 0.5:
            raise PufError(f"noise rate must be in [0, 0.5), got {noise_rate}")
        self._response_bytes = response_bytes
        self._noise_rate = noise_rate
        self._nominal = DeterministicRng(identity_seed).fork("sram-puf").randbytes(
            response_bytes
        )

    @property
    def response_bytes(self) -> int:
        return self._response_bytes

    @property
    def noise_rate(self) -> float:
        return self._noise_rate

    def nominal_response(self) -> bytes:
        """The noise-free fingerprint (used only at enrollment time)."""
        return self._nominal

    def evaluate(self, rng: DeterministicRng) -> bytes:
        """One noisy read of the PUF."""
        if self._noise_rate == 0.0:
            return self._nominal
        noisy = bytearray(self._nominal)
        for byte_index in range(len(noisy)):
            for bit_index in range(8):
                if rng.chance(self._noise_rate):
                    noisy[byte_index] ^= 1 << bit_index
        return bytes(noisy)


@dataclass(frozen=True)
class HelperData:
    """Public fuzzy-extractor helper data stored with the device.

    ``offset`` is codeword ⊕ response; revealing it leaks nothing about
    the key beyond the repetition-code redundancy (standard code-offset
    construction).  ``key_check`` lets reconstruction detect failure.
    """

    repetition: int
    key_bits: int
    offset: bytes
    key_check: bytes


def _bits_of(data: bytes):
    for byte in data:
        for bit_index in range(8):
            yield (byte >> bit_index) & 1


def _bits_to_bytes(bits) -> bytes:
    out = bytearray()
    current = 0
    count = 0
    for bit in bits:
        current |= bit << count
        count += 1
        if count == 8:
            out.append(current)
            current = 0
            count = 0
    if count:
        out.append(current)
    return bytes(out)


class FuzzyExtractor:
    """Code-offset fuzzy extractor with an r-repetition code."""

    def __init__(self, repetition: int = 15, key_bytes: int = 16) -> None:
        if repetition < 1 or repetition % 2 == 0:
            raise PufError(f"repetition factor must be odd and >= 1, got {repetition}")
        if key_bytes <= 0:
            raise PufError(f"key size must be positive, got {key_bytes}")
        self._repetition = repetition
        self._key_bytes = key_bytes

    @property
    def required_response_bytes(self) -> int:
        """PUF response size needed for the chosen parameters."""
        total_bits = self._key_bytes * 8 * self._repetition
        return (total_bits + 7) // 8

    def enroll(self, puf: SramPuf, rng: DeterministicRng) -> HelperData:
        """Enrollment: pick a secret, bind it to the nominal response."""
        if puf.response_bytes < self.required_response_bytes:
            raise PufError(
                f"PUF response of {puf.response_bytes} bytes is too small; "
                f"need {self.required_response_bytes}"
            )
        secret = rng.randbytes(self._key_bytes)
        codeword_bits = []
        for bit in _bits_of(secret):
            codeword_bits.extend([bit] * self._repetition)
        codeword = _bits_to_bytes(codeword_bits)
        response = puf.nominal_response()[: len(codeword)]
        offset = bytes(a ^ b for a, b in zip(codeword, response))
        return HelperData(
            repetition=self._repetition,
            key_bits=self._key_bytes * 8,
            offset=offset,
            key_check=sha256(secret)[:8],
        )

    def reconstruct(self, puf: SramPuf, helper: HelperData, rng: DeterministicRng) -> bytes:
        """Recover the enrolled secret from a fresh noisy PUF read."""
        if helper.repetition != self._repetition or helper.key_bits != self._key_bytes * 8:
            raise PufError("helper data does not match extractor parameters")
        response = puf.evaluate(rng)[: len(helper.offset)]
        noisy_codeword = bytes(a ^ b for a, b in zip(helper.offset, response))
        bits = list(_bits_of(noisy_codeword))
        secret_bits = []
        for start in range(0, self._key_bytes * 8 * self._repetition, self._repetition):
            group = bits[start : start + self._repetition]
            secret_bits.append(1 if sum(group) * 2 > self._repetition else 0)
        secret = _bits_to_bytes(secret_bits)
        if sha256(secret)[:8] != helper.key_check:
            raise PufError(
                "PUF key reconstruction failed (noise exceeded the "
                "repetition code's correction capacity)"
            )
        return secret


@dataclass(frozen=True)
class PufKeySlot:
    """What the device stores: helper data for re-deriving the MAC key."""

    helper: HelperData
    extractor_repetition: int

    def derive_key(
        self, puf: SramPuf, rng: DeterministicRng, max_attempts: int = 5
    ) -> bytes:
        """Re-derive the MAC key, retrying on fresh PUF reads.

        A single noisy read can exceed the repetition code's correction
        capacity; reads are independent, so the extractor simply reads
        again (standard practice in PUF key generators).
        """
        extractor = FuzzyExtractor(
            repetition=self.extractor_repetition,
            key_bytes=self.helper.key_bits // 8,
        )
        last_error: PufError = PufError("no attempts made")
        for _ in range(max_attempts):
            try:
                secret = extractor.reconstruct(puf, self.helper, rng)
            except PufError as error:
                last_error = error
                continue
            return derive_mac_key(secret)
        raise last_error


def enroll_device(
    puf: SramPuf,
    rng: DeterministicRng,
    repetition: int = 15,
    key_bytes: int = 16,
) -> tuple:
    """Full enrollment: returns (device key, key slot for the device).

    The verifier stores the key in its database; the device stores only
    the helper data and re-derives the key from its PUF at power-on.
    """
    extractor = FuzzyExtractor(repetition=repetition, key_bytes=key_bytes)
    helper = extractor.enroll(puf, rng)
    slot = PufKeySlot(helper=helper, extractor_repetition=repetition)
    # Verification reconstruct with fresh-read retries, like the device
    # does at every power-on (a single noisy read may exceed the code).
    key = slot.derive_key(puf, rng.fork("enroll-verify"))
    return key, slot
