"""FPGA substrate: device geometry, configuration memory, ICAP, bitstreams.

Everything the SACHa architecture stands on: a frame-accurate model of an
SRAM-based FPGA (primary part: the paper's Xilinx Virtex-6 XC6VLX240T),
partial reconfiguration and configuration readback through the ICAP, the
bitstream/mask toolchain, the boot flash, the PUF and the clocking.
"""

from repro.fpga.bitstream import (
    Bitstream,
    BitstreamHeader,
    BitstreamLoader,
    BitstreamWriter,
    ConfigCommand,
    ConfigRegister,
    LoadReport,
    build_full_bitstream,
    build_partial_bitstream,
)
from repro.fpga.board import Board, Fpga
from repro.fpga.bram import BoundedMemoryCheck, BramInventory
from repro.fpga.clocking import ClockDomain, Dcm, sacha_clocking
from repro.fpga.compression import (
    CompressionReport,
    compress_frames,
    compress_words,
    decompress_words,
)
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.device import (
    SIM_MEDIUM,
    SIM_SMALL,
    XC6VLX240T,
    ColumnSpec,
    DevicePart,
    TileType,
    catalog,
    get_part,
)
from repro.fpga.fabric import Fabric, ResourceCount
from repro.fpga.flash import BootMem
from repro.fpga.frames import (
    BLOCK_TYPE_BRAM_CONTENT,
    BLOCK_TYPE_CONFIG,
    FarCodec,
    FrameAddress,
)
from repro.fpga.icap import Icap, IcapStats
from repro.fpga.jtag import JtagPort
from repro.fpga.mask import MaskFile, mask_from_registers
from repro.fpga.partitions import (
    PartitionMap,
    column_floorplan,
    partition_ratio,
    sacha_floorplan,
    sacha_virtex6_floorplan,
)
from repro.fpga.puf import (
    FuzzyExtractor,
    HelperData,
    PufKeySlot,
    SramPuf,
    enroll_device,
)
from repro.fpga.registers import LiveRegisterFile, RegisterBit
from repro.fpga.scrubbing import Scrubber, ScrubReport, SeuEvent, SeuInjector

__all__ = [
    "Bitstream",
    "BitstreamHeader",
    "BitstreamLoader",
    "BitstreamWriter",
    "ConfigCommand",
    "ConfigRegister",
    "LoadReport",
    "build_full_bitstream",
    "build_partial_bitstream",
    "Board",
    "Fpga",
    "BoundedMemoryCheck",
    "BramInventory",
    "ClockDomain",
    "Dcm",
    "sacha_clocking",
    "CompressionReport",
    "compress_frames",
    "compress_words",
    "decompress_words",
    "ConfigurationMemory",
    "SIM_MEDIUM",
    "SIM_SMALL",
    "XC6VLX240T",
    "ColumnSpec",
    "DevicePart",
    "TileType",
    "catalog",
    "get_part",
    "Fabric",
    "ResourceCount",
    "BootMem",
    "BLOCK_TYPE_BRAM_CONTENT",
    "BLOCK_TYPE_CONFIG",
    "FarCodec",
    "FrameAddress",
    "Icap",
    "IcapStats",
    "JtagPort",
    "MaskFile",
    "mask_from_registers",
    "PartitionMap",
    "column_floorplan",
    "partition_ratio",
    "sacha_floorplan",
    "sacha_virtex6_floorplan",
    "FuzzyExtractor",
    "HelperData",
    "PufKeySlot",
    "SramPuf",
    "enroll_device",
    "LiveRegisterFile",
    "RegisterBit",
    "Scrubber",
    "ScrubReport",
    "SeuEvent",
    "SeuInjector",
]
