"""Bitstream encoding and decoding.

Configuration data reaches the device as a *bitstream*: a header followed
by a stream of 32-bit words — sync sequence, type-1/type-2 packets that
write configuration registers (FAR, CMD, FDRI, CRC, ...) and the frame
data itself.  SACHa's verifier builds full bitstreams (golden reference,
BootMem image) and partial bitstreams (the DynPart payload of the
protocol) in this format; the prover-side loader replays them through the
ICAP.

The packet grammar follows the Xilinx 7-series/Virtex-6 configuration
user guides; the frame address register (FAR) carries a structured
block-type/row/major/minor value (``repro.fpga.frames``), and FDRI data
auto-increments it across frame boundaries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import BitstreamCrcError, BitstreamError
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.device import DevicePart
from repro.fpga.frames import FarCodec
from repro.fpga.icap import Icap
from repro.utils.crc import XilinxBitstreamCrc

DUMMY_WORD = 0xFFFFFFFF
BUS_WIDTH_SYNC = 0x000000BB
BUS_WIDTH_DETECT = 0x11220044
SYNC_WORD = 0xAA995566


class ConfigRegister(enum.IntEnum):
    """Configuration-logic register addresses (5 bits)."""

    CRC = 0
    FAR = 1
    FDRI = 2
    FDRO = 3
    CMD = 4
    CTL0 = 5
    MASK = 6
    STAT = 7
    LOUT = 8
    COR0 = 9
    IDCODE = 12


class ConfigCommand(enum.IntEnum):
    """Values written to the CMD register."""

    NULL = 0
    WCFG = 1
    MFW = 2
    LFRM = 3
    RCFG = 4
    START = 5
    RCAP = 6
    RCRC = 7
    DESYNC = 13


class PacketOp(enum.IntEnum):
    NOP = 0
    READ = 1
    WRITE = 2

_TYPE1 = 0b001
_TYPE2 = 0b010
_TYPE1_COUNT_BITS = 11
_TYPE2_COUNT_BITS = 27


def type1_header(op: PacketOp, register: ConfigRegister, word_count: int) -> int:
    if not 0 <= word_count < (1 << _TYPE1_COUNT_BITS):
        raise BitstreamError(f"type-1 word count {word_count} out of range")
    return (_TYPE1 << 29) | (op << 27) | (int(register) << 13) | word_count


def type2_header(op: PacketOp, word_count: int) -> int:
    if not 0 <= word_count < (1 << _TYPE2_COUNT_BITS):
        raise BitstreamError(f"type-2 word count {word_count} out of range")
    return (_TYPE2 << 29) | (op << 27) | word_count


@dataclass(frozen=True)
class BitstreamHeader:
    """Design metadata carried ahead of the configuration words.

    Models the informational header of a ``.bit`` file: design name,
    target part and build tag (we do not model the Xilinx TLV layout, just
    its content).
    """

    design_name: str
    part_name: str
    build_tag: str = "repro-bitgen-1.0"

    def encode(self) -> bytes:
        fields = [self.design_name, self.part_name, self.build_tag]
        blob = b""
        for text in fields:
            raw = text.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise BitstreamError(f"header field too long: {text[:32]}...")
            blob += len(raw).to_bytes(2, "big") + raw
        return b"XBIT" + blob

    @classmethod
    def decode(cls, data: bytes) -> Tuple["BitstreamHeader", int]:
        if data[:4] != b"XBIT":
            raise BitstreamError("missing bitstream header magic")
        offset = 4
        fields: List[str] = []
        for _ in range(3):
            if offset + 2 > len(data):
                raise BitstreamError("truncated bitstream header")
            length = int.from_bytes(data[offset : offset + 2], "big")
            offset += 2
            if offset + length > len(data):
                raise BitstreamError("truncated bitstream header field")
            fields.append(data[offset : offset + length].decode("utf-8"))
            offset += length
        return cls(fields[0], fields[1], fields[2]), offset


@dataclass
class Bitstream:
    """A complete bitstream: header plus configuration words."""

    header: BitstreamHeader
    words: List[int] = field(default_factory=list)

    def to_bytes(self) -> bytes:
        body = b"".join(word.to_bytes(4, "big") for word in self.words)
        return self.header.encode() + body

    @classmethod
    def from_bytes(cls, data: bytes) -> "Bitstream":
        header, offset = BitstreamHeader.decode(data)
        body = data[offset:]
        if len(body) % 4:
            raise BitstreamError(f"bitstream body of {len(body)} bytes is not word-aligned")
        words = [
            int.from_bytes(body[i : i + 4], "big") for i in range(0, len(body), 4)
        ]
        return cls(header, words)

    def size_bytes(self) -> int:
        return len(self.header.encode()) + 4 * len(self.words)


class BitstreamWriter:
    """Builds the word stream of a bitstream, tracking the running CRC."""

    def __init__(self, device: DevicePart, design_name: str) -> None:
        self._device = device
        self._far_codec = FarCodec(device)
        self._words: List[int] = []
        self._crc = XilinxBitstreamCrc()
        self._synced = False
        self._design_name = design_name

    def _emit(self, word: int) -> None:
        self._words.append(word & 0xFFFFFFFF)

    def dummy(self, count: int = 1) -> "BitstreamWriter":
        for _ in range(count):
            self._emit(DUMMY_WORD)
        return self

    def sync(self) -> "BitstreamWriter":
        self._emit(BUS_WIDTH_SYNC)
        self._emit(BUS_WIDTH_DETECT)
        self._emit(DUMMY_WORD)
        self._emit(SYNC_WORD)
        self._synced = True
        return self

    def nop(self, count: int = 1) -> "BitstreamWriter":
        for _ in range(count):
            self._emit(type1_header(PacketOp.NOP, ConfigRegister.CRC, 0))
        return self

    def write_register(
        self, register: ConfigRegister, values: Sequence[int]
    ) -> "BitstreamWriter":
        if not self._synced:
            raise BitstreamError("packets before sync word")
        self._emit(type1_header(PacketOp.WRITE, register, len(values)))
        for value in values:
            self._emit(value)
            if register != ConfigRegister.CRC:
                self._crc.feed(int(register), value & 0xFFFFFFFF)
        return self

    def command(self, command: ConfigCommand) -> "BitstreamWriter":
        if command == ConfigCommand.RCRC:
            # Reset-CRC clears the accumulator as a side effect.
            self.write_register(ConfigRegister.CMD, [int(command)])
            self._crc.reset()
            return self
        return self.write_register(ConfigRegister.CMD, [int(command)])

    def write_frames(self, start_frame: int, frames: Sequence[bytes]) -> "BitstreamWriter":
        """FAR + WCFG + FDRI packet writing ``frames`` from ``start_frame``.

        Large payloads use the type-1(0)/type-2 continuation form, exactly
        like real full bitstreams.
        """
        words_per_frame = self._device.words_per_frame
        data_words: List[int] = []
        for frame in frames:
            if len(frame) != self._device.frame_bytes:
                raise BitstreamError(
                    f"frame payload must be {self._device.frame_bytes} bytes, "
                    f"got {len(frame)}"
                )
            data_words.extend(
                int.from_bytes(frame[i : i + 4], "big") for i in range(0, len(frame), 4)
            )
        self.write_register(
            ConfigRegister.FAR, [self._far_codec.pack_linear(start_frame)]
        )
        self.command(ConfigCommand.WCFG)
        if len(data_words) < (1 << _TYPE1_COUNT_BITS):
            self.write_register(ConfigRegister.FDRI, data_words)
        else:
            self._emit(type1_header(PacketOp.WRITE, ConfigRegister.FDRI, 0))
            self._emit(type2_header(PacketOp.WRITE, len(data_words)))
            for value in data_words:
                self._emit(value)
                self._crc.feed(int(ConfigRegister.FDRI), value)
        del words_per_frame
        return self

    def crc_check(self) -> "BitstreamWriter":
        """Write the expected CRC — the loader verifies and resets."""
        expected = self._crc.digest()
        self._emit(type1_header(PacketOp.WRITE, ConfigRegister.CRC, 1))
        self._emit(expected)
        self._crc.reset()
        return self

    def desync(self) -> "BitstreamWriter":
        self.command(ConfigCommand.DESYNC)
        self.nop(2)
        self._synced = False
        return self

    def finish(self) -> Bitstream:
        header = BitstreamHeader(self._design_name, self._device.name)
        return Bitstream(header, list(self._words))


def build_full_bitstream(
    memory: ConfigurationMemory, design_name: str = "design"
) -> Bitstream:
    """Full-device bitstream from a configuration image."""
    device = memory.device
    writer = BitstreamWriter(device, design_name)
    writer.dummy(8).sync().nop(2)
    writer.command(ConfigCommand.RCRC)
    writer.write_register(ConfigRegister.IDCODE, [_idcode(device)])
    frames = [memory.read_frame(index) for index in range(device.total_frames)]
    writer.write_frames(0, frames)
    writer.crc_check()
    writer.command(ConfigCommand.START)
    writer.desync()
    return writer.finish()


def build_partial_bitstream(
    memory: ConfigurationMemory,
    frame_indices: Iterable[int],
    design_name: str = "partial",
) -> Bitstream:
    """Partial bitstream covering exactly ``frame_indices``.

    Contiguous index runs become single FAR/FDRI bursts; the bitstream
    only ever touches the given frames — the defining property of a
    partial bitstream targeting a dynamic partition.
    """
    device = memory.device
    indices = sorted(set(frame_indices))
    if not indices:
        raise BitstreamError("partial bitstream needs at least one frame")
    writer = BitstreamWriter(device, design_name)
    writer.dummy(2).sync().nop(1)
    writer.command(ConfigCommand.RCRC)
    writer.write_register(ConfigRegister.IDCODE, [_idcode(device)])

    run_start = indices[0]
    previous = indices[0]
    runs: List[Tuple[int, int]] = []
    for index in indices[1:]:
        if index != previous + 1:
            runs.append((run_start, previous))
            run_start = index
        previous = index
    runs.append((run_start, previous))

    for first, last in runs:
        frames = [memory.read_frame(i) for i in range(first, last + 1)]
        writer.write_frames(first, frames)
    writer.crc_check()
    writer.desync()
    return writer.finish()


def _idcode(device: DevicePart) -> int:
    """A stable 32-bit identifier for the part (hash of its name)."""
    value = 0x0FFFFFFF
    for byte in device.name.encode("utf-8"):
        value = ((value * 33) ^ byte) & 0xFFFFFFFF
    return value | 0x10000000  # never zero, bit 28 set like real IDCODEs


@dataclass
class LoadReport:
    """What a bitstream load did to the device."""

    frames_written: List[int] = field(default_factory=list)
    crc_checks: int = 0
    commands: List[ConfigCommand] = field(default_factory=list)

    @property
    def frame_count(self) -> int:
        return len(self.frames_written)


class BitstreamLoader:
    """Replays a bitstream into a device through its ICAP.

    Implements the loader state machine: sync detection, register writes,
    FAR auto-increment across FDRI data, CRC verification, IDCODE check.
    """

    def __init__(self, icap: Icap) -> None:
        self._icap = icap
        self._device = icap.memory.device
        self._far_codec = FarCodec(self._device)

    def load(self, bitstream: Bitstream) -> LoadReport:
        if bitstream.header.part_name != self._device.name:
            raise BitstreamError(
                f"bitstream targets {bitstream.header.part_name}, "
                f"device is {self._device.name}"
            )
        report = LoadReport()
        crc = XilinxBitstreamCrc()
        registers: Dict[int, int] = {}
        words = bitstream.words
        position = 0
        synced = False
        pending_command: Optional[ConfigCommand] = None

        while position < len(words):
            word = words[position]
            position += 1
            if not synced:
                if word == SYNC_WORD:
                    synced = True
                continue
            packet_type = word >> 29
            op = (word >> 27) & 0b11
            if packet_type == _TYPE1:
                register = (word >> 13) & 0b11111
                count = word & ((1 << _TYPE1_COUNT_BITS) - 1)
                if op == PacketOp.NOP:
                    continue
                if op == PacketOp.WRITE:
                    if count == 0:
                        # Header-only write: a type-2 continuation follows.
                        registers["pending_register"] = register
                        continue
                    payload = words[position : position + count]
                    if len(payload) != count:
                        raise BitstreamError("truncated type-1 payload")
                    position += count
                    pending_command = self._apply_write(
                        register, payload, crc, registers, report
                    )
                    if pending_command is ConfigCommand.DESYNC:
                        synced = False
                        pending_command = None
                    continue
                raise BitstreamError(f"unsupported type-1 op {op}")
            if packet_type == _TYPE2:
                count = word & ((1 << _TYPE2_COUNT_BITS) - 1)
                register = registers.pop("pending_register", None)
                if register is None:
                    raise BitstreamError("type-2 packet without preceding type-1")
                payload = words[position : position + count]
                if len(payload) != count:
                    raise BitstreamError("truncated type-2 payload")
                position += count
                pending_command = self._apply_write(
                    register, payload, crc, registers, report
                )
                continue
            raise BitstreamError(f"unknown packet type {packet_type:#05b}")
        return report

    def _apply_write(
        self,
        register: int,
        payload: Sequence[int],
        crc: XilinxBitstreamCrc,
        registers: Dict[int, int],
        report: LoadReport,
    ) -> Optional[ConfigCommand]:
        if register == ConfigRegister.CRC:
            if len(payload) != 1:
                raise BitstreamError("CRC write must carry exactly one word")
            report.crc_checks += 1
            if not crc.check(payload[0]):
                raise BitstreamCrcError(
                    f"bitstream CRC mismatch at check #{report.crc_checks}"
                )
            return None

        crc.feed_words(register, payload)

        if register == ConfigRegister.CMD:
            command = ConfigCommand(payload[-1])
            report.commands.append(command)
            if command == ConfigCommand.RCRC:
                crc.reset()
            return command
        if register == ConfigRegister.IDCODE:
            expected = _idcode(self._device)
            if payload[-1] != expected:
                raise BitstreamError(
                    f"IDCODE mismatch: bitstream {payload[-1]:#010x}, "
                    f"device {expected:#010x}"
                )
            return None
        if register == ConfigRegister.FAR:
            # The FAR carries a structured (block/row/major/minor) value;
            # keep the linear cursor internally.
            registers[int(ConfigRegister.FAR)] = self._far_codec.unpack_to_linear(
                payload[-1]
            )
            return None
        if register == ConfigRegister.FDRI:
            words_per_frame = self._device.words_per_frame
            if len(payload) % words_per_frame:
                raise BitstreamError(
                    f"FDRI payload of {len(payload)} words is not frame-aligned"
                )
            frame_index = registers.get(int(ConfigRegister.FAR), 0)
            for start in range(0, len(payload), words_per_frame):
                chunk = payload[start : start + words_per_frame]
                data = b"".join(value.to_bytes(4, "big") for value in chunk)
                self._icap.write_frame(frame_index, data)
                report.frames_written.append(frame_index)
                frame_index += 1
            registers[int(ConfigRegister.FAR)] = frame_index
            return None
        # Other registers (CTL0, COR0, MASK, ...) are accepted and ignored.
        registers[register] = payload[-1] if payload else 0
        return None
