"""FPGA device catalog.

A device part is described by a synthetic-but-exact tile geometry: a grid
of ``rows`` identical rows, each holding an ordered list of columns; each
column contributes resource tiles (CLB / BRAM / IOB) and configuration
frames.  The primary part reproduces the Xilinx Virtex-6 XC6VLX240T used
in the paper *exactly* in every quantity the protocol touches:

* 28,488 configuration frames of 81 × 32-bit words (Section 6.1);
* 18,840 CLBs, 832 × 18-kbit BRAMs, 1 ICAP, 12 DCMs (Table 2).

Scaled-down parts (``SIM_SMALL``, ``SIM_MEDIUM``) keep the same structure
so the full protocol, attacks and property tests run in milliseconds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import FrameAddressError


class TileType(enum.Enum):
    """Resource tile classes of the configurable fabric (Figure 2)."""

    CLB = "CLB"
    BRAM = "BRAM"
    IOB = "IOB"
    CFG = "CFG"  # clock/config column: carries DCM sites and config logic


@dataclass(frozen=True)
class ColumnSpec:
    """One fabric column within a row: its tiles and its frame count."""

    tile_type: TileType
    tiles: int
    frames: int

    def __post_init__(self) -> None:
        if self.tiles < 0 or self.frames <= 0:
            raise ValueError(
                f"column must have frames > 0 and tiles >= 0, "
                f"got tiles={self.tiles} frames={self.frames}"
            )


@dataclass(frozen=True)
class DevicePart:
    """A configurable device: geometry plus fixed primitive counts."""

    name: str
    rows: int
    columns: Tuple[ColumnSpec, ...]
    words_per_frame: int
    dcm_count: int
    icap_count: int = 1
    bram_kbits: int = 18
    _column_frame_offsets: Tuple[int, ...] = field(init=False, repr=False, compare=False)
    _frames_per_row: int = field(init=False, repr=False, compare=False)
    _total_frames: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.rows <= 0:
            raise ValueError(f"device needs at least one row, got {self.rows}")
        if self.words_per_frame <= 0:
            raise ValueError(
                f"words_per_frame must be positive, got {self.words_per_frame}"
            )
        offsets: List[int] = []
        total = 0
        for column in self.columns:
            offsets.append(total)
            total += column.frames
        object.__setattr__(self, "_column_frame_offsets", tuple(offsets))
        # Geometry totals are immutable once the columns are fixed; cache
        # them — frame_coordinates() and the per-frame ICAP paths consult
        # them on every frame, and re-summing the column tuple dominated
        # profiles of full-device networked runs.
        object.__setattr__(self, "_frames_per_row", total)
        object.__setattr__(self, "_total_frames", self.rows * total)

    # -- frame geometry ----------------------------------------------------

    @property
    def frames_per_row(self) -> int:
        return self._frames_per_row

    @property
    def total_frames(self) -> int:
        return self._total_frames

    @property
    def frame_words(self) -> int:
        return self.words_per_frame

    @property
    def frame_bytes(self) -> int:
        return self.words_per_frame * 4

    def configuration_bytes(self) -> int:
        """Size of the full configuration memory in bytes."""
        return self.total_frames * self.frame_bytes

    # -- resource totals -----------------------------------------------------

    def _tiles_of(self, tile_type: TileType) -> int:
        return self.rows * sum(
            column.tiles for column in self.columns if column.tile_type is tile_type
        )

    @property
    def clb_count(self) -> int:
        return self._tiles_of(TileType.CLB)

    @property
    def bram_count(self) -> int:
        return self._tiles_of(TileType.BRAM)

    @property
    def iob_count(self) -> int:
        return self._tiles_of(TileType.IOB)

    def bram_capacity_bytes(self) -> int:
        """Total embedded BRAM capacity — the bound in the bounded-memory
        model: a bitstream larger than this cannot be buffered on-chip."""
        return self.bram_count * self.bram_kbits * 1024 // 8

    def resource_totals(self) -> Dict[str, int]:
        return {
            "CLB": self.clb_count,
            "BRAM": self.bram_count,
            "IOB": self.iob_count,
            "ICAP": self.icap_count,
            "DCM": self.dcm_count,
        }

    # -- frame <-> (row, column, minor) addressing ---------------------------

    def column_of_frame(self, frame_index: int) -> ColumnSpec:
        """The column a linear frame index configures."""
        _, column_index, _ = self.frame_coordinates(frame_index)
        return self.columns[column_index]

    def frame_coordinates(self, frame_index: int) -> Tuple[int, int, int]:
        """Map a linear frame index to (row, column, minor)."""
        if not 0 <= frame_index < self.total_frames:
            raise FrameAddressError(
                f"frame {frame_index} out of range for {self.name} "
                f"(0..{self.total_frames - 1})"
            )
        row, within_row = divmod(frame_index, self.frames_per_row)
        # Binary search over column offsets.
        low, high = 0, len(self.columns) - 1
        offsets = self._column_frame_offsets
        while low < high:
            mid = (low + high + 1) // 2
            if offsets[mid] <= within_row:
                low = mid
            else:
                high = mid - 1
        return row, low, within_row - offsets[low]

    def frame_index(self, row: int, column: int, minor: int) -> int:
        """Map (row, column, minor) coordinates to a linear frame index."""
        if not 0 <= row < self.rows:
            raise FrameAddressError(f"row {row} out of range for {self.name}")
        if not 0 <= column < len(self.columns):
            raise FrameAddressError(f"column {column} out of range for {self.name}")
        spec = self.columns[column]
        if not 0 <= minor < spec.frames:
            raise FrameAddressError(
                f"minor {minor} out of range for column {column} "
                f"({spec.frames} frames)"
            )
        return row * self.frames_per_row + self._column_frame_offsets[column] + minor

    def column_frame_range(self, row: int, column: int) -> range:
        """All linear frame indices of one column in one row."""
        start = self.frame_index(row, column, 0)
        return range(start, start + self.columns[column].frames)


def _virtex6_columns() -> Tuple[ColumnSpec, ...]:
    """Column layout of the XC6VLX240T model.

    Per row: 157 CLB columns (15 CLBs, 18 frames each), 13 BRAM columns
    (8 BRAM18, 42 frames each — BRAM columns are frame-heavy because they
    carry block-RAM *content* frames), 2 IOB columns (30 IOBs, 18 frames
    each) and 1 config/clock column (153 frames).  Per row: 3,561 frames;
    with 8 rows this gives exactly 28,488 frames, 18,840 CLBs and 832
    BRAMs — and a 2,088-frame static region (94 CLB + 9 BRAM + 1 IOB
    columns) has capacity for the paper's 1,400-CLB / 72-BRAM StatPart.
    """
    clb = ColumnSpec(TileType.CLB, tiles=15, frames=18)
    bram = ColumnSpec(TileType.BRAM, tiles=8, frames=42)
    iob = ColumnSpec(TileType.IOB, tiles=30, frames=18)
    cfg = ColumnSpec(TileType.CFG, tiles=0, frames=153)

    columns: List[ColumnSpec] = [iob]
    for _group in range(13):
        columns.extend([clb] * 12)
        columns.append(bram)
    columns.append(clb)  # 13*12 + 1 = 157 CLB columns
    columns.append(cfg)
    columns.append(iob)
    return tuple(columns)


XC6VLX240T = DevicePart(
    name="XC6VLX240T",
    rows=8,
    columns=_virtex6_columns(),
    words_per_frame=81,
    dcm_count=12,
)

SIM_SMALL = DevicePart(
    name="SIM-SMALL",
    rows=2,
    columns=(
        ColumnSpec(TileType.IOB, tiles=2, frames=2),
        ColumnSpec(TileType.CLB, tiles=6, frames=3),
        ColumnSpec(TileType.CLB, tiles=6, frames=3),
        ColumnSpec(TileType.CLB, tiles=6, frames=3),
        ColumnSpec(TileType.CLB, tiles=6, frames=3),
        ColumnSpec(TileType.BRAM, tiles=2, frames=2),
        ColumnSpec(TileType.CFG, tiles=0, frames=1),
    ),
    words_per_frame=4,
    dcm_count=2,
)

SIM_MEDIUM = DevicePart(
    name="SIM-MEDIUM",
    rows=4,
    columns=(
        ColumnSpec(TileType.IOB, tiles=4, frames=4),
        ColumnSpec(TileType.CLB, tiles=8, frames=8),
        ColumnSpec(TileType.CLB, tiles=8, frames=8),
        ColumnSpec(TileType.BRAM, tiles=4, frames=6),
        ColumnSpec(TileType.CLB, tiles=8, frames=8),
        ColumnSpec(TileType.CLB, tiles=8, frames=8),
        ColumnSpec(TileType.BRAM, tiles=4, frames=6),
        ColumnSpec(TileType.CLB, tiles=8, frames=8),
        ColumnSpec(TileType.CLB, tiles=8, frames=8),
        ColumnSpec(TileType.IOB, tiles=4, frames=4),
        ColumnSpec(TileType.CFG, tiles=0, frames=4),
    ),
    words_per_frame=8,
    dcm_count=4,
)

_CATALOG: Dict[str, DevicePart] = {
    part.name: part for part in (XC6VLX240T, SIM_SMALL, SIM_MEDIUM)
}


def get_part(name: str) -> DevicePart:
    """Look up a device part by name."""
    try:
        return _CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(_CATALOG))
        raise FrameAddressError(f"unknown part {name!r}; known parts: {known}") from None


def catalog() -> Tuple[str, ...]:
    """Names of all known parts."""
    return tuple(sorted(_CATALOG))
