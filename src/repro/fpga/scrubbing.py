"""Configuration scrubbing: readback for fault detection and correction.

Section 2.1.3 introduces the readback capability through its *other*
canonical use: "applications in which (un)intended faults occur in the
configuration memory ... e.g., space applications, in which Single
Event Upsets cause bit flips".  SACHa repurposes the mechanism for
attestation; this module implements the original use so the substrate
is complete — a scrubber that cycles through the configuration memory
via the ICAP, compares each (masked) frame against a golden reference,
and rewrites corrupted frames.

The scrubber and the attestation protocol share everything: the ICAP
data path, the mask discipline (live register bits are not faults), and
the golden reference.  What they do not share is trust: a scrubber is a
*local* integrity mechanism with no adversary — it happily "repairs"
malicious modifications back, which is precisely why it is not an
attestation scheme (no key, no freshness, no remote verifier).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigMemoryError
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.icap import Icap
from repro.fpga.mask import MaskFile
from repro.utils.rng import DeterministicRng

#: ICAP clock period (the scrub cycle runs in the ICAP domain).
ICAP_NS_PER_CYCLE = 10.0


@dataclass(frozen=True)
class SeuEvent:
    """One injected single-event upset."""

    frame_index: int
    word_index: int
    bit_index: int


class SeuInjector:
    """Injects single-event upsets into a configuration memory.

    A masked (register) position is skipped: flipping live state is a
    functional upset, not a configuration upset, and the scrubber would
    not (and must not) see it.
    """

    def __init__(
        self,
        memory: ConfigurationMemory,
        rng: DeterministicRng,
        mask: Optional[MaskFile] = None,
    ) -> None:
        self._memory = memory
        self._rng = rng
        self._mask = mask
        self.injected: List[SeuEvent] = []

    def inject(self, count: int = 1) -> List[SeuEvent]:
        """Flip ``count`` random configuration bits."""
        if count < 0:
            raise ConfigMemoryError(f"cannot inject {count} upsets")
        device = self._memory.device
        events: List[SeuEvent] = []
        attempts = 0
        while len(events) < count:
            attempts += 1
            if attempts > 100 * (count + 1):
                raise ConfigMemoryError(
                    "could not find unmasked positions to upset"
                )
            frame = self._rng.randint(0, device.total_frames - 1)
            word = self._rng.randint(0, device.words_per_frame - 1)
            bit = self._rng.randint(0, 31)
            if self._mask is not None:
                from repro.fpga.registers import RegisterBit

                if self._mask.is_masked(RegisterBit(frame, word, bit)):
                    continue
            self._memory.flip_bit(frame, word, bit)
            event = SeuEvent(frame_index=frame, word_index=word, bit_index=bit)
            events.append(event)
            self.injected.append(event)
        return events


@dataclass
class ScrubReport:
    """Outcome of one full scrub cycle."""

    frames_checked: int = 0
    frames_corrupted: List[int] = field(default_factory=list)
    frames_corrected: List[int] = field(default_factory=list)
    icap_cycles: int = 0

    @property
    def clean(self) -> bool:
        return not self.frames_corrupted

    @property
    def duration_ns(self) -> float:
        """Scrub cycle time on the 100 MHz ICAP clock."""
        return self.icap_cycles * ICAP_NS_PER_CYCLE


class Scrubber:
    """Golden-reference readback scrubber.

    ``correct=False`` turns it into a pure detector (the paper's "error
    detection" half); with correction on, corrupted frames are rewritten
    from the golden image through the ICAP.
    """

    def __init__(
        self,
        icap: Icap,
        golden: ConfigurationMemory,
        mask: Optional[MaskFile] = None,
        correct: bool = True,
    ) -> None:
        if golden.device != icap.memory.device:
            raise ConfigMemoryError(
                "golden reference targets a different device"
            )
        self._icap = icap
        self._golden = golden
        self._mask = mask
        self._correct = correct
        self.cycles_run = 0

    def scrub_frame(self, frame_index: int, report: ScrubReport) -> None:
        data = self._icap.readback_frame(frame_index)
        expected = self._golden.read_frame(frame_index)
        if self._mask is not None:
            data = self._mask.apply_to_frame(frame_index, data)
            expected = self._mask.apply_to_frame(frame_index, expected)
        report.frames_checked += 1
        report.icap_cycles += self._icap.readback_cycles_per_frame()
        if data == expected:
            return
        report.frames_corrupted.append(frame_index)
        if self._correct:
            self._icap.write_frame(
                frame_index, self._golden.read_frame(frame_index)
            )
            report.frames_corrected.append(frame_index)
            report.icap_cycles += self._icap.write_cycles_per_frame()

    def scrub_cycle(self) -> ScrubReport:
        """One full pass over the configuration memory."""
        report = ScrubReport()
        for frame_index in range(self._icap.memory.total_frames):
            self.scrub_frame(frame_index, report)
        self.cycles_run += 1
        return report

    def scrub_until_clean(self, max_cycles: int = 4) -> List[ScrubReport]:
        """Repeat scrub cycles until one reports no corruption."""
        reports: List[ScrubReport] = []
        for _ in range(max_cycles):
            report = self.scrub_cycle()
            reports.append(report)
            if report.clean:
                return reports
        raise ConfigMemoryError(
            f"configuration still corrupt after {max_cycles} scrub cycles"
        )
