"""Partition layout: StatPart / DynPart / nonce region.

The SACHa floorplan splits the configuration memory into

* **StatMem** — frames configuring the static partition (ETH core, ICAP
  control, MAC core, key storage); loaded from BootMem at power-on and
  never reconfigured in the field;
* **DynMem** — frames of the dynamic partition, fully overwritten by the
  verifier during every attestation;
* a small **nonce region** inside DynMem, a separate reconfigurable
  partition so the verifier can refresh the nonce without resending the
  application (Section 5.2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Tuple

from repro.errors import PartitionError
from repro.fpga.device import DevicePart, TileType


@dataclass(frozen=True)
class PartitionMap:
    """An exhaustive, disjoint split of the device's frames."""

    device: DevicePart
    static_frames: FrozenSet[int]
    nonce_frames: FrozenSet[int]
    dynamic_frames: FrozenSet[int] = field(default=frozenset())

    def __post_init__(self) -> None:
        total = set(range(self.device.total_frames))
        static = set(self.static_frames)
        nonce = set(self.nonce_frames)
        if not static:
            raise PartitionError("static partition cannot be empty")
        if not static <= total:
            raise PartitionError("static frames out of device range")
        if not nonce <= total:
            raise PartitionError("nonce frames out of device range")
        if static & nonce:
            raise PartitionError("nonce region must lie outside the static partition")
        dynamic = total - static
        if self.dynamic_frames and set(self.dynamic_frames) != dynamic:
            raise PartitionError(
                "dynamic partition must be exactly the complement of the "
                "static partition"
            )
        object.__setattr__(self, "dynamic_frames", frozenset(dynamic))
        if not nonce <= dynamic:
            raise PartitionError("nonce region must lie inside the dynamic partition")

    # -- sizes -----------------------------------------------------------------

    @property
    def static_frame_count(self) -> int:
        return len(self.static_frames)

    @property
    def dynamic_frame_count(self) -> int:
        return len(self.dynamic_frames)

    def static_bitstream_bytes(self) -> int:
        return self.static_frame_count * self.device.frame_bytes

    def dynamic_bitstream_bytes(self) -> int:
        return self.dynamic_frame_count * self.device.frame_bytes

    # -- orderings ---------------------------------------------------------------

    def static_frame_list(self) -> List[int]:
        return sorted(self.static_frames)

    def dynamic_frame_list(self) -> List[int]:
        return sorted(self.dynamic_frames)

    def nonce_frame_list(self) -> List[int]:
        return sorted(self.nonce_frames)

    def application_frame_list(self) -> List[int]:
        """Dynamic frames that carry the intended application (not nonce)."""
        return sorted(self.dynamic_frames - self.nonce_frames)

    def classify(self, frame_index: int) -> str:
        if frame_index in self.static_frames:
            return "static"
        if frame_index in self.nonce_frames:
            return "nonce"
        if frame_index in self.dynamic_frames:
            return "dynamic"
        raise PartitionError(f"frame {frame_index} out of device range")


def sacha_floorplan(
    device: DevicePart,
    static_frame_count: int,
    nonce_frame_count: int = 1,
) -> PartitionMap:
    """The SACHa layout: static frames first, nonce at the very end.

    On the XC6VLX240T the paper implies 2,088 static frames (28,488 total
    − 26,400 DynMem frames); ``repro.design.sacha_design`` passes exactly
    that.  The nonce region sits at the top of the address space so the
    application occupies one contiguous run.
    """
    if not 0 < static_frame_count < device.total_frames:
        raise PartitionError(
            f"static frame count {static_frame_count} out of range for "
            f"{device.name} ({device.total_frames} frames)"
        )
    if nonce_frame_count < 1:
        raise PartitionError("nonce region needs at least one frame")
    if static_frame_count + nonce_frame_count > device.total_frames:
        raise PartitionError("static + nonce regions exceed the device")
    static = frozenset(range(static_frame_count))
    nonce = frozenset(
        range(device.total_frames - nonce_frame_count, device.total_frames)
    )
    return PartitionMap(device=device, static_frames=static, nonce_frames=nonce)


def column_floorplan(
    device: DevicePart,
    clb_columns: int,
    bram_columns: int,
    iob_columns: int = 0,
    cfg_columns: int = 0,
    nonce_frame_count: int = 1,
) -> PartitionMap:
    """Column-aligned static floorplan.

    Real partial-reconfiguration regions snap to whole fabric columns;
    this floorplan assigns the first ``clb_columns`` CLB columns, the
    first ``bram_columns`` BRAM columns, etc. (scanning rows in order) to
    the static partition.  The nonce region is the last frame(s) of the
    device, which by construction lie in the dynamic partition.
    """
    wanted = {
        TileType.CLB: clb_columns,
        TileType.BRAM: bram_columns,
        TileType.IOB: iob_columns,
        TileType.CFG: cfg_columns,
    }
    taken = {tile_type: 0 for tile_type in wanted}
    static: set = set()
    for row in range(device.rows):
        for column_index, spec in enumerate(device.columns):
            if taken[spec.tile_type] < wanted[spec.tile_type]:
                static.update(device.column_frame_range(row, column_index))
                taken[spec.tile_type] += 1
    missing = {
        tile_type.value: wanted[tile_type] - taken[tile_type]
        for tile_type in wanted
        if taken[tile_type] < wanted[tile_type]
    }
    if missing:
        raise PartitionError(f"device {device.name} lacks columns: {missing}")
    if nonce_frame_count < 1:
        raise PartitionError("nonce region needs at least one frame")
    nonce = frozenset(
        range(device.total_frames - nonce_frame_count, device.total_frames)
    )
    if nonce & static:
        raise PartitionError("nonce frames collide with the static region")
    return PartitionMap(
        device=device, static_frames=frozenset(static), nonce_frames=nonce
    )


def sacha_virtex6_floorplan(device: DevicePart) -> PartitionMap:
    """The paper's floorplan on the XC6VLX240T model.

    94 CLB + 9 BRAM + 1 IOB columns = exactly 2,088 static frames
    (28,488 − 26,400), with capacity 1,410 CLB / 72 BRAM / 30 IOB — room
    for the 1,400-CLB / 72-BRAM static design of Table 2.
    """
    plan = column_floorplan(device, clb_columns=94, bram_columns=9, iob_columns=1)
    return plan


def partition_ratio(partition_map: PartitionMap) -> Tuple[float, float]:
    """(static, dynamic) fraction of the device's frames."""
    total = partition_map.device.total_frames
    return (
        partition_map.static_frame_count / total,
        partition_map.dynamic_frame_count / total,
    )
