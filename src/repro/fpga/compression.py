"""Bitstream compression — stress-testing the bounded-memory assumption.

The paper grounds its bounded-memory argument in reference [24]: the
internal BRAM cannot hold a bitstream configuring a large part of the
FPGA.  A compressing adversary is the natural objection — configuration
bitstreams of *sparsely used* fabric compress extremely well (unused
frames are all-zero).  This module provides a word-oriented compressor
(zero-run + literal-run encoding, the dominant redundancy in real
bitstreams) so the margin can be measured: at which fabric utilization
would a compressed DynPart image start fitting into BRAM?  (Experiment
E14.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import BitstreamError

_MAX_RUN = 0xFFFF
_TOKEN_ZERO_RUN = 0x00
_TOKEN_LITERALS = 0x01


def compress_words(words: Sequence[int]) -> bytes:
    """Compress 32-bit words: zero runs collapse, literals pass through.

    Format: a stream of tokens — ``00 | count16`` for a run of zero
    words, ``01 | count16 | count×word32`` for literal words.
    """
    out = bytearray()
    position = 0
    total = len(words)
    while position < total:
        if words[position] == 0:
            run = 0
            while (
                position < total and words[position] == 0 and run < _MAX_RUN
            ):
                run += 1
                position += 1
            out.append(_TOKEN_ZERO_RUN)
            out += run.to_bytes(2, "big")
            continue
        start = position
        while (
            position < total
            and words[position] != 0
            and position - start < _MAX_RUN
        ):
            position += 1
        literals = words[start:position]
        out.append(_TOKEN_LITERALS)
        out += len(literals).to_bytes(2, "big")
        for word in literals:
            if not 0 <= word <= 0xFFFFFFFF:
                raise BitstreamError(f"word {word:#x} does not fit in 32 bits")
            out += word.to_bytes(4, "big")
    return bytes(out)


def decompress_words(data: bytes) -> List[int]:
    """Inverse of :func:`compress_words`."""
    words: List[int] = []
    position = 0
    total = len(data)
    while position < total:
        if position + 3 > total:
            raise BitstreamError("truncated compression token")
        token = data[position]
        count = int.from_bytes(data[position + 1 : position + 3], "big")
        position += 3
        if token == _TOKEN_ZERO_RUN:
            words.extend([0] * count)
            continue
        if token == _TOKEN_LITERALS:
            end = position + 4 * count
            if end > total:
                raise BitstreamError("truncated literal run")
            for offset in range(position, end, 4):
                words.append(int.from_bytes(data[offset : offset + 4], "big"))
            position = end
            continue
        raise BitstreamError(f"unknown compression token {token:#04x}")
    return words


@dataclass(frozen=True)
class CompressionReport:
    """Size accounting for one compressed payload."""

    raw_bytes: int
    compressed_bytes: int

    @property
    def ratio(self) -> float:
        """raw / compressed — higher is better for the compressor."""
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes

    @property
    def savings(self) -> float:
        """Fraction of the raw size removed."""
        if self.raw_bytes == 0:
            return 0.0
        return 1.0 - self.compressed_bytes / self.raw_bytes


def compress_frames(frames: Sequence[bytes]) -> CompressionReport:
    """Compress a frame stream and report sizes (content discarded)."""
    words: List[int] = []
    raw = 0
    for frame in frames:
        if len(frame) % 4:
            raise BitstreamError(
                f"frame of {len(frame)} bytes is not word-aligned"
            )
        raw += len(frame)
        words.extend(
            int.from_bytes(frame[offset : offset + 4], "big")
            for offset in range(0, len(frame), 4)
        )
    compressed = compress_words(words)
    return CompressionReport(raw_bytes=raw, compressed_bytes=len(compressed))
