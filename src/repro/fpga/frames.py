"""Frame Address Register (FAR) codec.

Real Xilinx configuration logic addresses frames with a structured FAR
— block type / row / major (column) / minor (frame within column) — not
a flat index.  This codec maps between the two representations for any
catalogued device:

* ``block type`` 0 carries CLB/IOB/CFG configuration, block type 1 the
  BRAM *content* frames (matching the family convention);
* ``row`` and ``major`` follow the device's tile geometry;
* ``minor`` counts frames within one column.

Packed layout (32 bits): ``[24:22] block type, [21:17] row,
[16:8] major, [7:0] minor``.  The bitstream writer emits packed FARs and
the loader decodes them, so generated bitstreams carry realistic
addressing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FrameAddressError
from repro.fpga.device import DevicePart, TileType

BLOCK_TYPE_CONFIG = 0  # CLB / IOB / CFG configuration frames
BLOCK_TYPE_BRAM_CONTENT = 1  # block-RAM content frames

_MINOR_BITS = 8
_MAJOR_BITS = 9
_ROW_BITS = 5
_BLOCK_BITS = 3

_MINOR_SHIFT = 0
_MAJOR_SHIFT = _MINOR_BITS
_ROW_SHIFT = _MAJOR_SHIFT + _MAJOR_BITS
_BLOCK_SHIFT = _ROW_SHIFT + _ROW_BITS


@dataclass(frozen=True)
class FrameAddress:
    """A structured frame address."""

    block_type: int
    row: int
    major: int
    minor: int

    def __post_init__(self) -> None:
        for name, value, bits in (
            ("block_type", self.block_type, _BLOCK_BITS),
            ("row", self.row, _ROW_BITS),
            ("major", self.major, _MAJOR_BITS),
            ("minor", self.minor, _MINOR_BITS),
        ):
            if not 0 <= value < (1 << bits):
                raise FrameAddressError(
                    f"FAR field {name}={value} does not fit in {bits} bits"
                )

    def pack(self) -> int:
        """The 32-bit FAR register value."""
        return (
            (self.block_type << _BLOCK_SHIFT)
            | (self.row << _ROW_SHIFT)
            | (self.major << _MAJOR_SHIFT)
            | (self.minor << _MINOR_SHIFT)
        )

    @classmethod
    def unpack(cls, value: int) -> "FrameAddress":
        if not 0 <= value <= 0xFFFFFFFF:
            raise FrameAddressError(f"FAR value {value:#x} out of range")
        return cls(
            block_type=(value >> _BLOCK_SHIFT) & ((1 << _BLOCK_BITS) - 1),
            row=(value >> _ROW_SHIFT) & ((1 << _ROW_BITS) - 1),
            major=(value >> _MAJOR_SHIFT) & ((1 << _MAJOR_BITS) - 1),
            minor=(value >> _MINOR_SHIFT) & ((1 << _MINOR_BITS) - 1),
        )

    def __str__(self) -> str:
        return (
            f"FAR(bt={self.block_type}, row={self.row}, "
            f"major={self.major}, minor={self.minor})"
        )


class FarCodec:
    """Linear frame index ↔ structured FAR for one device."""

    def __init__(self, device: DevicePart) -> None:
        self._device = device
        if device.rows > (1 << _ROW_BITS):
            raise FrameAddressError(
                f"{device.name} has too many rows for the FAR layout"
            )
        if len(device.columns) > (1 << _MAJOR_BITS):
            raise FrameAddressError(
                f"{device.name} has too many columns for the FAR layout"
            )
        if max(column.frames for column in device.columns) > (1 << _MINOR_BITS):
            raise FrameAddressError(
                f"{device.name} has a column too deep for the FAR layout"
            )

    @property
    def device(self) -> DevicePart:
        return self._device

    def _block_type_of(self, column_index: int) -> int:
        tile_type = self._device.columns[column_index].tile_type
        if tile_type is TileType.BRAM:
            return BLOCK_TYPE_BRAM_CONTENT
        return BLOCK_TYPE_CONFIG

    def from_linear(self, frame_index: int) -> FrameAddress:
        """Structured address of a linear frame index."""
        row, column, minor = self._device.frame_coordinates(frame_index)
        return FrameAddress(
            block_type=self._block_type_of(column),
            row=row,
            major=column,
            minor=minor,
        )

    def to_linear(self, address: FrameAddress) -> int:
        """Linear index of a structured address (validating every field)."""
        if address.major >= len(self._device.columns):
            raise FrameAddressError(
                f"major {address.major} out of range for {self._device.name}"
            )
        expected_block = self._block_type_of(address.major)
        if address.block_type != expected_block:
            raise FrameAddressError(
                f"block type {address.block_type} does not match column "
                f"{address.major} (expected {expected_block})"
            )
        return self._device.frame_index(address.row, address.major, address.minor)

    def pack_linear(self, frame_index: int) -> int:
        """Linear index → packed FAR register value."""
        return self.from_linear(frame_index).pack()

    def unpack_to_linear(self, far_value: int) -> int:
        """Packed FAR register value → linear index."""
        return self.to_linear(FrameAddress.unpack(far_value))

    def increment(self, address: FrameAddress) -> FrameAddress:
        """FAR auto-increment: next frame in configuration order.

        Advances minor within the column, then moves to the next column
        (updating the block type), then to the next row — the order the
        FDRI write pointer follows.
        """
        linear = self.to_linear(address)
        if linear + 1 >= self._device.total_frames:
            raise FrameAddressError("FAR increment past the last frame")
        return self.from_linear(linear + 1)
