"""The prover board: FPGA + BootMem + clocks + network port.

``Fpga`` bundles the live state of the chip (configuration memory, live
registers, ICAP, PUF).  ``Board`` adds the off-chip parts of the system
model (Figure 6): the boot flash and the power-on flow that loads StatMem
from BootMem — the only thing that happens without the verifier.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FlashError
from repro.fpga.bitstream import Bitstream, BitstreamLoader, LoadReport
from repro.fpga.clocking import ClockDomain, sacha_clocking
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.device import DevicePart
from repro.fpga.flash import BootMem
from repro.fpga.icap import Icap
from repro.fpga.puf import SramPuf
from repro.fpga.registers import LiveRegisterFile


class Fpga:
    """One FPGA chip: fabric state and its internal access ports."""

    def __init__(
        self,
        device: DevicePart,
        puf: Optional[SramPuf] = None,
    ) -> None:
        self._device = device
        self.memory = ConfigurationMemory(device)
        self.registers = LiveRegisterFile(device)
        self.icap = Icap(self.memory, self.registers)
        self.puf = puf
        self.clocks = sacha_clocking()

    @property
    def device(self) -> DevicePart:
        return self._device

    def clock(self, name: str) -> ClockDomain:
        return self.clocks[name]


class Board:
    """The deployed embedded system on the prover's side."""

    def __init__(
        self,
        fpga: Fpga,
        boot_mem: BootMem,
    ) -> None:
        self.fpga = fpga
        self.boot_mem = boot_mem
        self.powered_on = False
        self.boot_report: Optional[LoadReport] = None

    def power_on(self) -> LoadReport:
        """Cold boot: load the static bitstream from BootMem into StatMem.

        SRAM configuration memory is volatile, so the chip comes up blank;
        the boot controller streams the BootMem image into the
        configuration logic.  Everything outside the static bitstream's
        frames (the whole DynMem) stays blank until the verifier
        configures it.
        """
        if not self.boot_mem.is_programmed:
            raise FlashError("cannot boot: BootMem is not programmed")
        self.fpga.memory.zeroize()
        bitstream = Bitstream.from_bytes(self.boot_mem.read())
        loader = BitstreamLoader(self.fpga.icap)
        report = loader.load(bitstream)
        self.powered_on = True
        self.boot_report = report
        return report

    def power_off(self) -> None:
        """Power loss clears the (volatile) configuration memory."""
        self.fpga.memory.zeroize()
        self.powered_on = False
        self.boot_report = None
