"""JTAG configuration port — the paper's timing reference.

Section 7.1 notes that a direct configuration of the XC6VLX240T over a
JTAG cable takes around 28 s, which is the yardstick against which the
measured 28.5 s SACHa run is judged "very reasonable".  The model clocks
the bitstream through TCK one bit at a time with a protocol-efficiency
factor (state-machine traversal, IR/DR overhead, USB cable batching).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fpga.bitstream import Bitstream
from repro.utils.units import NS_PER_S


@dataclass(frozen=True)
class JtagPort:
    """A JTAG configuration interface.

    Defaults calibrated to the paper's reference point: a ~9.2 MB full
    bitstream at 6 MHz TCK with 44 % efficiency loads in ≈28 s.
    """

    tck_hz: float = 6_000_000.0
    efficiency: float = 0.44

    def __post_init__(self) -> None:
        if self.tck_hz <= 0:
            raise ValueError(f"TCK must be positive, got {self.tck_hz}")
        if not 0.0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    def effective_bits_per_second(self) -> float:
        return self.tck_hz * self.efficiency

    def configuration_time_ns(self, bitstream_bytes: int) -> float:
        """Time to shift a bitstream of the given size into the device."""
        if bitstream_bytes < 0:
            raise ValueError(f"negative bitstream size {bitstream_bytes}")
        bits = bitstream_bytes * 8
        return bits / self.effective_bits_per_second() * NS_PER_S

    def configuration_time_for(self, bitstream: Bitstream) -> float:
        return self.configuration_time_ns(bitstream.size_bytes())
