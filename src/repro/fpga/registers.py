"""Live register state overlaid on configuration readback.

The ICAP does not read the configuration memory verbatim: readback also
captures the *current values* of the storage elements (flip-flops,
LUT-RAM) of the running design, which depend on the application state.
This is exactly the complication Section 6.1 of the paper solves with the
``Msk`` mask file.

A design declares its state bits as :class:`RegisterBit` positions; the
running application toggles them; the ICAP readback substitutes the live
value at each declared position.  The mask generator (``repro.fpga.mask``)
marks the same positions as "do not compare".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import ConfigMemoryError
from repro.fpga.device import DevicePart
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True, order=True)
class RegisterBit:
    """The configuration-memory position of one storage-element bit."""

    frame_index: int
    word_index: int
    bit_index: int

    def validate(self, device: DevicePart) -> None:
        if not 0 <= self.frame_index < device.total_frames:
            raise ConfigMemoryError(
                f"register bit frame {self.frame_index} out of range "
                f"for {device.name}"
            )
        if not 0 <= self.word_index < device.words_per_frame:
            raise ConfigMemoryError(
                f"register bit word {self.word_index} out of range"
            )
        if not 0 <= self.bit_index < 32:
            raise ConfigMemoryError(f"register bit {self.bit_index} out of range")


class LiveRegisterFile:
    """Current values of all declared storage elements of a design."""

    def __init__(self, device: DevicePart) -> None:
        self._device = device
        self._values: Dict[RegisterBit, int] = {}

    @property
    def device(self) -> DevicePart:
        return self._device

    def declare(self, bits: Iterable[RegisterBit], initial: int = 0) -> None:
        """Register new storage-element positions with an initial value."""
        if initial not in (0, 1):
            raise ConfigMemoryError(f"initial value must be 0 or 1, got {initial}")
        for bit in bits:
            bit.validate(self._device)
            if bit in self._values:
                raise ConfigMemoryError(f"register bit {bit} declared twice")
            self._values[bit] = initial

    def forget_frame(self, frame_index: int) -> None:
        """Drop declarations within one frame (partial reconfiguration
        replaces the logic there, so old state bits vanish)."""
        self._values = {
            bit: value
            for bit, value in self._values.items()
            if bit.frame_index != frame_index
        }

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Tuple[RegisterBit, int]]:
        return iter(sorted(self._values.items()))

    def positions(self) -> List[RegisterBit]:
        return sorted(self._values)

    def get(self, bit: RegisterBit) -> int:
        try:
            return self._values[bit]
        except KeyError:
            raise ConfigMemoryError(f"register bit {bit} is not declared") from None

    def set(self, bit: RegisterBit, value: int) -> None:
        if value not in (0, 1):
            raise ConfigMemoryError(f"register value must be 0 or 1, got {value}")
        if bit not in self._values:
            raise ConfigMemoryError(f"register bit {bit} is not declared")
        self._values[bit] = value

    def scramble(self, rng: DeterministicRng) -> None:
        """Simulate application activity: randomize every live register.

        Readback taken before and after a ``scramble`` differs exactly in
        masked positions — the invariant the mask tests check.
        """
        for bit in self._values:
            self._values[bit] = rng.randint(0, 1)

    def bits_in_frame(self, frame_index: int) -> List[Tuple[RegisterBit, int]]:
        return sorted(
            (bit, value)
            for bit, value in self._values.items()
            if bit.frame_index == frame_index
        )

    def overlay_frame(self, frame_index: int, frame_data: bytes) -> bytes:
        """Substitute live values into a frame's configuration bytes.

        This is what ICAP readback returns for the frame: configuration
        bits everywhere except at declared register positions, which carry
        the current application state.
        """
        bits = self.bits_in_frame(frame_index)
        if not bits:
            return frame_data
        words = bytearray(frame_data)
        for bit, value in bits:
            offset = bit.word_index * 4
            word = int.from_bytes(words[offset : offset + 4], "big")
            if value:
                word |= 1 << bit.bit_index
            else:
                word &= ~(1 << bit.bit_index)
            words[offset : offset + 4] = word.to_bytes(4, "big")
        return bytes(words)
