"""Live register state overlaid on configuration readback.

The ICAP does not read the configuration memory verbatim: readback also
captures the *current values* of the storage elements (flip-flops,
LUT-RAM) of the running design, which depend on the application state.
This is exactly the complication Section 6.1 of the paper solves with the
``Msk`` mask file.

A design declares its state bits as :class:`RegisterBit` positions; the
running application toggles them; the ICAP readback substitutes the live
value at each declared position.  The mask generator (``repro.fpga.mask``)
marks the same positions as "do not compare".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.errors import ConfigMemoryError
from repro.fpga.device import DevicePart
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True, order=True)
class RegisterBit:
    """The configuration-memory position of one storage-element bit."""

    frame_index: int
    word_index: int
    bit_index: int

    def validate(self, device: DevicePart) -> None:
        if not 0 <= self.frame_index < device.total_frames:
            raise ConfigMemoryError(
                f"register bit frame {self.frame_index} out of range "
                f"for {device.name}"
            )
        if not 0 <= self.word_index < device.words_per_frame:
            raise ConfigMemoryError(
                f"register bit word {self.word_index} out of range"
            )
        if not 0 <= self.bit_index < 32:
            raise ConfigMemoryError(f"register bit {self.bit_index} out of range")


class LiveRegisterFile:
    """Current values of all declared storage elements of a design.

    Declarations are indexed per frame: the attestation hot path touches
    registers frame by frame (one overlay per readback, one drop per
    partial reconfiguration), so both operations must cost the declared
    bits *of that frame*, not a sweep over the whole device's register
    map.
    """

    def __init__(self, device: DevicePart) -> None:
        self._device = device
        self._frames: Dict[int, Dict[RegisterBit, int]] = {}
        self._count = 0

    @property
    def device(self) -> DevicePart:
        return self._device

    def declare(self, bits: Iterable[RegisterBit], initial: int = 0) -> None:
        """Register new storage-element positions with an initial value."""
        if initial not in (0, 1):
            raise ConfigMemoryError(f"initial value must be 0 or 1, got {initial}")
        for bit in bits:
            bit.validate(self._device)
            frame = self._frames.setdefault(bit.frame_index, {})
            if bit in frame:
                raise ConfigMemoryError(f"register bit {bit} declared twice")
            frame[bit] = initial
            self._count += 1

    def forget_frame(self, frame_index: int) -> None:
        """Drop declarations within one frame (partial reconfiguration
        replaces the logic there, so old state bits vanish)."""
        dropped = self._frames.pop(frame_index, None)
        if dropped:
            self._count -= len(dropped)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Tuple[RegisterBit, int]]:
        items = [
            (bit, value)
            for frame in self._frames.values()
            for bit, value in frame.items()
        ]
        return iter(sorted(items))

    def positions(self) -> List[RegisterBit]:
        return sorted(
            bit for frame in self._frames.values() for bit in frame
        )

    def get(self, bit: RegisterBit) -> int:
        try:
            return self._frames[bit.frame_index][bit]
        except KeyError:
            raise ConfigMemoryError(f"register bit {bit} is not declared") from None

    def set(self, bit: RegisterBit, value: int) -> None:
        if value not in (0, 1):
            raise ConfigMemoryError(f"register value must be 0 or 1, got {value}")
        frame = self._frames.get(bit.frame_index)
        if frame is None or bit not in frame:
            raise ConfigMemoryError(f"register bit {bit} is not declared")
        frame[bit] = value

    def scramble(self, rng: DeterministicRng) -> None:
        """Simulate application activity: randomize every live register.

        Readback taken before and after a ``scramble`` differs exactly in
        masked positions — the invariant the mask tests check.

        Draw order is the sorted position order, so the scrambled values
        for a given RNG stream do not depend on declaration order.
        """
        for bit in self.positions():
            self._frames[bit.frame_index][bit] = rng.randint(0, 1)

    def bits_in_frame(self, frame_index: int) -> List[Tuple[RegisterBit, int]]:
        frame = self._frames.get(frame_index)
        if not frame:
            return []
        return sorted(frame.items())

    def frames_with_registers(self) -> List[int]:
        """Indices of frames holding at least one declared register."""
        return sorted(index for index, frame in self._frames.items() if frame)

    def overlay_frame(self, frame_index: int, frame_data: bytes) -> bytes:
        """Substitute live values into a frame's configuration bytes.

        This is what ICAP readback returns for the frame: configuration
        bits everywhere except at declared register positions, which carry
        the current application state.
        """
        frame = self._frames.get(frame_index)
        if not frame:
            return frame_data
        words = bytearray(frame_data)
        self._overlay_into(frame, words, 0)
        return bytes(words)

    def overlay_into(
        self, frame_index: int, buffer: bytearray, offset: int
    ) -> None:
        """In-place overlay for one frame at ``offset`` of a sweep buffer.

        The buffer-reuse variant behind bulk readback: no per-frame byte
        string is materialized when the frame has no declared registers,
        and at most one when it does.
        """
        frame = self._frames.get(frame_index)
        if frame:
            self._overlay_into(frame, buffer, offset)

    @staticmethod
    def _overlay_into(
        frame: Dict[RegisterBit, int], buffer: bytearray, base: int
    ) -> None:
        for bit, value in frame.items():
            offset = base + bit.word_index * 4
            word = int.from_bytes(buffer[offset : offset + 4], "big")
            if value:
                word |= 1 << bit.bit_index
            else:
                word &= ~(1 << bit.bit_index)
            buffer[offset : offset + 4] = word.to_bytes(4, "big")
