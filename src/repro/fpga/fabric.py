"""Fabric view: mapping frame sets to the resources they configure.

The partition layer needs to answer "how many CLBs / BRAMs / IOBs does
this set of frames configure?" — e.g. to check that a floorplanned static
region has capacity for the static design, or to find which frames an
adversary must touch to alter the IOB (pin) configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Set

from repro.fpga.device import DevicePart, TileType


@dataclass(frozen=True)
class ResourceCount:
    """Resource tiles of each class."""

    clb: int = 0
    bram: int = 0
    iob: int = 0
    dcm: int = 0
    icap: int = 0

    def __add__(self, other: "ResourceCount") -> "ResourceCount":
        return ResourceCount(
            clb=self.clb + other.clb,
            bram=self.bram + other.bram,
            iob=self.iob + other.iob,
            dcm=self.dcm + other.dcm,
            icap=self.icap + other.icap,
        )

    def __sub__(self, other: "ResourceCount") -> "ResourceCount":
        return ResourceCount(
            clb=self.clb - other.clb,
            bram=self.bram - other.bram,
            iob=self.iob - other.iob,
            dcm=self.dcm - other.dcm,
            icap=self.icap - other.icap,
        )

    def fits_within(self, capacity: "ResourceCount") -> bool:
        return (
            self.clb <= capacity.clb
            and self.bram <= capacity.bram
            and self.iob <= capacity.iob
            and self.dcm <= capacity.dcm
            and self.icap <= capacity.icap
        )

    def as_dict(self) -> Dict[str, int]:
        return {
            "CLB": self.clb,
            "BRAM": self.bram,
            "IOB": self.iob,
            "DCM": self.dcm,
            "ICAP": self.icap,
        }


class Fabric:
    """Resource geometry of one device."""

    def __init__(self, device: DevicePart) -> None:
        self._device = device

    @property
    def device(self) -> DevicePart:
        return self._device

    def device_capacity(self) -> ResourceCount:
        return ResourceCount(
            clb=self._device.clb_count,
            bram=self._device.bram_count,
            iob=self._device.iob_count,
            dcm=self._device.dcm_count,
            icap=self._device.icap_count,
        )

    def capacity_of_frames(self, frame_indices: Iterable[int]) -> ResourceCount:
        """Resources of all columns *fully covered* by the frame set.

        Partial-reconfiguration regions are frame-aligned per column: a
        column's tiles belong to a region only if every one of its frames
        does.  Partially covered columns contribute nothing (conservative,
        and matches how PR floorplans snap to column boundaries).
        """
        frames: Set[int] = set(frame_indices)
        clb = bram = iob = 0
        device = self._device
        for row in range(device.rows):
            for column_index, spec in enumerate(device.columns):
                column_frames = device.column_frame_range(row, column_index)
                if all(index in frames for index in column_frames):
                    if spec.tile_type is TileType.CLB:
                        clb += spec.tiles
                    elif spec.tile_type is TileType.BRAM:
                        bram += spec.tiles
                    elif spec.tile_type is TileType.IOB:
                        iob += spec.tiles
        return ResourceCount(clb=clb, bram=bram, iob=iob)

    def iob_frames(self) -> List[int]:
        """All frames that configure IOB columns — the pin configuration.

        The proxy-adversary detection (Section 7.2) rests on these frames:
        "the bitstream reflects which FPGA pins are connected to
        peripherals".
        """
        frames: List[int] = []
        device = self._device
        for row in range(device.rows):
            for column_index, spec in enumerate(device.columns):
                if spec.tile_type is TileType.IOB:
                    frames.extend(device.column_frame_range(row, column_index))
        return frames

    def frames_of_tile_type(self, tile_type: TileType) -> List[int]:
        """All frames belonging to columns of one tile class."""
        frames: List[int] = []
        device = self._device
        for row in range(device.rows):
            for column_index, spec in enumerate(device.columns):
                if spec.tile_type is tile_type:
                    frames.extend(device.column_frame_range(row, column_index))
        return frames
