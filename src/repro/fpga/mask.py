"""Mask (``Msk``) files.

Readback data contains live register values at storage-element positions
(see ``repro.fpga.registers``); the verifier must ignore those bits when
comparing readback against the golden bitstream.  The Xilinx tools emit a
``.msk`` file alongside each bitstream for exactly this purpose; this
module generates the equivalent from a design's declared register map and
applies it (Section 6.1: "we apply the Msk on the side of the Vrf").

Convention: a mask bit of **1** means *ignore this bit* (matches the
Xilinx readback-verify convention).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigMemoryError
from repro.fpga.device import DevicePart
from repro.fpga.registers import LiveRegisterFile, RegisterBit


class MaskFile:
    """Per-frame bit mask over the whole configuration memory.

    The complement (``keep`` bits) is cached as a big-endian array so
    applying the mask — per frame or over a whole sweep — is a single
    vectorized AND with no per-call table rebuilds.
    """

    def __init__(self, device: DevicePart) -> None:
        self._device = device
        self._bits = np.zeros(
            (device.total_frames, device.words_per_frame), dtype=">u4"
        )
        self._keep: Optional[np.ndarray] = None  # cached ~mask, lazily built

    @classmethod
    def from_bits(cls, device: DevicePart, bits: np.ndarray) -> "MaskFile":
        """Rebuild a mask from a stored bit array (the ``.npy`` blob)."""
        expected = (device.total_frames, device.words_per_frame)
        if bits.shape != expected:
            raise ConfigMemoryError(
                f"mask bits of shape {bits.shape} do not fit "
                f"{device.name} ({expected[0]} x {expected[1]} words)"
            )
        mask = cls(device)
        mask._bits = bits.astype(">u4")
        return mask

    @property
    def device(self) -> DevicePart:
        return self._device

    def _keep_bits(self) -> np.ndarray:
        """Cached complement of the mask (1 = compare this bit)."""
        if self._keep is None:
            self._keep = np.bitwise_not(self._bits)
        return self._keep

    def set_positions(self, positions: Iterable[RegisterBit]) -> None:
        """Mark the given bit positions as masked."""
        for position in positions:
            position.validate(self._device)
            self._bits[position.frame_index, position.word_index] |= np.uint32(
                1 << position.bit_index
            )
        self._keep = None

    def masked_bit_count(self) -> int:
        """Total number of masked bits."""
        return int(sum(int(word).bit_count() for word in self._bits.flat if word))

    def is_masked(self, position: RegisterBit) -> bool:
        position.validate(self._device)
        word = int(self._bits[position.frame_index, position.word_index])
        return bool((word >> position.bit_index) & 1)

    def frame_mask(self, frame_index: int) -> bytes:
        if not 0 <= frame_index < self._device.total_frames:
            raise ConfigMemoryError(f"frame {frame_index} out of range")
        return self._bits[frame_index].tobytes()

    def apply_to_frame(self, frame_index: int, data: bytes) -> bytes:
        """Clear every masked bit in one frame's data."""
        if len(data) != self._device.frame_bytes:
            raise ConfigMemoryError(
                f"frame data must be {self._device.frame_bytes} bytes, "
                f"got {len(data)}"
            )
        keep = self._keep_bits()[frame_index]
        words = np.frombuffer(data, dtype=">u4")
        # numpy bitwise ops return native byte order; cast back before
        # serializing so the wire order is preserved.
        return (words & keep).astype(">u4").tobytes()

    def apply_to_frames(self, frames: List[bytes], frame_indices: List[int]) -> List[bytes]:
        """Mask a list of frames addressed by their indices."""
        if len(frames) != len(frame_indices):
            raise ConfigMemoryError(
                f"{len(frames)} frames but {len(frame_indices)} indices"
            )
        return [
            self.apply_to_frame(index, data)
            for index, data in zip(frame_indices, frames)
        ]

    def apply_to_sweep(
        self, frames: np.ndarray, frame_indices: Sequence[int]
    ) -> np.ndarray:
        """Mask a whole readback sweep in one vectorized AND.

        ``frames`` is a ``(len(frame_indices), words_per_frame)`` array in
        readback order; rows are masked with the mask rows addressed by
        ``frame_indices``.
        """
        if frames.shape != (len(frame_indices), self._device.words_per_frame):
            raise ConfigMemoryError(
                f"sweep shape {frames.shape} does not match "
                f"{len(frame_indices)} frames of "
                f"{self._device.words_per_frame} words"
            )
        indices = np.asarray(frame_indices, dtype=np.intp)
        return frames & self._keep_bits()[indices]

    def freeze(self) -> None:
        """Build the keep-bit cache now, before the mask is shared.

        A mask published to concurrent readers (the artifact cache hands
        one combined mask to every shard worker) must not lazily build
        state on first use; freezing makes every later call read-only.
        """
        self._keep_bits()

    def bits_array(self) -> np.ndarray:
        """The raw ``(total_frames, words_per_frame)`` mask-bit array.

        Zero-copy view for serialization; treat as read-only.
        """
        return self._bits

    def union(self, other: "MaskFile") -> "MaskFile":
        """Combine two masks (bits masked in either)."""
        if other.device != self._device:
            raise ConfigMemoryError("cannot combine masks for different devices")
        combined = MaskFile(self._device)
        combined._bits = (self._bits | other._bits).astype(">u4")
        return combined


def mask_from_registers(device: DevicePart, registers: LiveRegisterFile) -> MaskFile:
    """Generate the ``Msk`` for a design's declared storage elements."""
    mask = MaskFile(device)
    mask.set_positions(registers.positions())
    return mask
