"""Combined hardware/software attestation: the FPGA as the trusted
module attesting a microprocessor (Figure 1, right-hand side)."""

from repro.system.combined import (
    CombinedAttestation,
    CombinedReport,
    FpgaTrustModule,
)
from repro.system.processor import Microprocessor

__all__ = [
    "CombinedAttestation",
    "CombinedReport",
    "FpgaTrustModule",
    "Microprocessor",
]
