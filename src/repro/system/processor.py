"""The microprocessor of the combined embedded system (Figure 1).

A typical FPGA-based embedded system pairs a general-purpose µP with the
configurable hardware; the adversary of the traditional model tampers
with the software code in the processor.  The model is a bounded program
memory plus a local bus the FPGA-based trusted module can read — which is
all hardware-based attestation of the software needs.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ProtocolError


class Microprocessor:
    """A µP with bounded program memory, readable over a local bus."""

    def __init__(self, memory_bytes: int) -> None:
        if memory_bytes <= 0:
            raise ProtocolError(f"memory size must be positive, got {memory_bytes}")
        self.memory_bytes = memory_bytes
        self._memory = bytearray(memory_bytes)
        self.loaded_image: Optional[bytes] = None

    def load_software(self, image: bytes) -> None:
        """Flash a software image (zero-padded to the memory size)."""
        if len(image) > self.memory_bytes:
            raise ProtocolError(
                f"image of {len(image)} bytes exceeds memory of "
                f"{self.memory_bytes}"
            )
        self._memory[:] = image + bytes(self.memory_bytes - len(image))
        self.loaded_image = bytes(image)

    def tamper(self, offset: int, payload: bytes) -> None:
        """Adversarial code modification (Figure 1: software tampering)."""
        if offset < 0 or offset + len(payload) > self.memory_bytes:
            raise ProtocolError("tamper outside the program memory")
        self._memory[offset : offset + len(payload)] = payload

    def bus_read(self, offset: int, length: int) -> bytes:
        """Local-bus read, as performed by the trusted hardware module."""
        if offset < 0 or length < 0 or offset + length > self.memory_bytes:
            raise ProtocolError(
                f"bus read [{offset}, {offset + length}) outside memory"
            )
        return bytes(self._memory[offset : offset + length])

    def full_memory(self) -> bytes:
        return bytes(self._memory)
