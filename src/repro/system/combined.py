"""Combined hardware/software attestation (the point of the paper).

SACHa exists so that an FPGA can serve as the trusted hardware module of
a hardware-based attestation scheme *without* being assumed
tamper-resistant.  The combined flow:

1. **FPGA self-attestation** — the SACHa protocol proves the FPGA holds
   exactly the intended configuration (including the attestation logic
   that will perform step 2);
2. **software attestation** — the now-trusted FPGA module reads the µP's
   program memory over the local bus and returns
   ``MAC_K(nonce ‖ software memory)``, which the verifier compares
   against the expected image.

The model also shows the failure the paper motivates with: skipping step
1 lets a compromised FPGA forge step 2.
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from typing import Optional

from repro.crypto.cmac import AesCmac
from repro.core.protocol import SessionOptions, run_attestation
from repro.core.prover import SachaProver
from repro.core.report import AttestationReport
from repro.core.verifier import SachaVerifier
from repro.system.processor import Microprocessor
from repro.utils.rng import DeterministicRng


class FpgaTrustModule:
    """The software-attestation function configured into the FPGA.

    ``honest`` models the intended configuration; a tampered FPGA
    (``honest=False``) answers with a forged MAC for whatever image the
    adversary wants the verifier to believe is loaded.
    """

    def __init__(
        self,
        prover: SachaProver,
        processor: Microprocessor,
        key: bytes,
        honest: bool = True,
        forged_image: Optional[bytes] = None,
    ) -> None:
        self._prover = prover
        self._processor = processor
        self._key = bytes(key)
        self._honest = honest
        self._forged_image = forged_image

    def attest_software(self, nonce: bytes) -> bytes:
        """MAC_K(nonce ‖ program memory), read over the local bus."""
        mac = AesCmac(self._key)
        mac.update(nonce)
        if self._honest or self._forged_image is None:
            memory = self._processor.full_memory()
        else:
            padding = bytes(
                self._processor.memory_bytes - len(self._forged_image)
            )
            memory = self._forged_image + padding
        mac.update(memory)
        return mac.finalize()


@dataclass
class CombinedReport:
    """Verdict over the whole hardware/software system."""

    fpga_report: Optional[AttestationReport]
    fpga_attested: bool
    software_attested: bool
    skipped_self_attestation: bool = False

    @property
    def system_trusted(self) -> bool:
        return self.fpga_attested and self.software_attested

    def explain(self) -> str:
        parts = []
        if self.skipped_self_attestation:
            parts.append("FPGA self-attestation SKIPPED (unsound!)")
        else:
            parts.append(
                "FPGA self-attestation "
                + ("passed" if self.fpga_attested else "FAILED")
            )
        parts.append(
            "software attestation "
            + ("passed" if self.software_attested else "FAILED")
        )
        verdict = "SYSTEM TRUSTED" if self.system_trusted else "SYSTEM REJECTED"
        return f"{verdict}: " + "; ".join(parts)


class CombinedAttestation:
    """The verifier-side driver of the two-step flow."""

    def __init__(
        self,
        prover: SachaProver,
        verifier: SachaVerifier,
        trust_module: FpgaTrustModule,
        software_key: bytes,
        expected_image: bytes,
        processor_memory_bytes: int,
    ) -> None:
        self._prover = prover
        self._verifier = verifier
        self._trust_module = trust_module
        self._software_key = bytes(software_key)
        self._expected_image = bytes(expected_image)
        self._processor_memory_bytes = processor_memory_bytes

    def expected_software_mac(self, nonce: bytes) -> bytes:
        mac = AesCmac(self._software_key)
        mac.update(nonce)
        padding = bytes(self._processor_memory_bytes - len(self._expected_image))
        mac.update(self._expected_image + padding)
        return mac.finalize()

    def run(
        self,
        rng: DeterministicRng,
        skip_self_attestation: bool = False,
        options: Optional[SessionOptions] = None,
    ) -> CombinedReport:
        """Step 1 (SACHa), then step 2 (software MAC)."""
        options = options if options is not None else SessionOptions()
        fpga_report: Optional[AttestationReport] = None
        if skip_self_attestation:
            fpga_attested = True  # blind trust — the unsound shortcut
        else:
            fpga_report = run_attestation(
                self._prover, self._verifier, rng, options
            ).report
            fpga_attested = fpga_report.accepted

        software_attested = False
        if fpga_attested:
            nonce = rng.fork("software-nonce").randbytes(16)
            received = self._trust_module.attest_software(nonce)
            software_attested = hmac.compare_digest(
                received, self.expected_software_mac(nonce)
            )

        return CombinedReport(
            fpga_report=fpga_report,
            fpga_attested=fpga_attested,
            software_attested=software_attested,
            skipped_self_attestation=skip_self_attestation,
        )
