"""Exception hierarchy for the SACHa reproduction.

Every subsystem raises a subclass of :class:`ReproError` so callers can
catch library failures without swallowing genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigMemoryError(ReproError):
    """Invalid access to the FPGA configuration memory."""


class FrameAddressError(ConfigMemoryError):
    """A frame address is malformed or out of range for the device."""


class BitstreamError(ReproError):
    """A bitstream could not be encoded or decoded."""


class BitstreamCrcError(BitstreamError):
    """The CRC check of a bitstream packet stream failed."""


class IcapError(ReproError):
    """The ICAP primitive rejected an operation."""


class PartitionError(ReproError):
    """Partition layout violation (overlap, out of bounds, wrong region)."""


class PlacementError(ReproError):
    """The design does not fit into its target partition."""


class FlashError(ReproError):
    """Illegal BootMem operation (capacity, online programming, ...)."""


class PufError(ReproError):
    """PUF enrollment or key reconstruction failure."""


class NetworkError(ReproError):
    """Network substrate failure (malformed frame, channel down, ...)."""


class WireFormatError(NetworkError):
    """A SACHa command or response could not be (de)serialized."""


class ProtocolError(ReproError):
    """The attestation protocol was driven out of order or timed out."""


class ProvisioningError(ReproError):
    """Pre-deployment provisioning failed (enrollment, golden registration)."""


class AttackError(ReproError):
    """An attack harness was configured inconsistently."""


class VerificationError(ReproError):
    """The verifier could not reach a verdict (missing golden data, ...)."""


class ObservabilityError(ReproError):
    """Misuse of the metrics/tracing API (name, label or type conflicts)."""


class FleetError(ReproError):
    """Fleet control-plane failure (registry, migration, sweep state)."""
