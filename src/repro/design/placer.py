"""A deterministic placer.

The placer assigns every instance of a design a disjoint set of frames
inside its target region and decides where the instance's storage-element
bits sit inside those frames.  It is intentionally simple — frames are
the placement unit, shares are proportional to resource cost — but it
enforces the checks that matter for the reproduction:

* the design's CLB/BRAM/IOB cost must fit the region's column capacity
  (this is what makes the StatPart-malware attack fail: there is no room
  in the 2,088-frame static region for extra logic);
* register-bit positions are deterministic functions of the design, so
  the generated ``Msk`` is stable across runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.crypto.sha256 import sha256
from repro.design.netlist import Design, Instance
from repro.errors import PlacementError
from repro.fpga.device import DevicePart
from repro.fpga.fabric import Fabric
from repro.fpga.registers import RegisterBit


@dataclass
class Placement:
    """The result of placing one design into one region."""

    design: Design
    device: DevicePart
    region_frames: List[int]
    frame_assignment: Dict[str, List[int]] = field(default_factory=dict)
    register_positions: Dict[str, List[RegisterBit]] = field(default_factory=dict)

    def all_register_positions(self) -> List[RegisterBit]:
        positions: List[RegisterBit] = []
        for instance_positions in self.register_positions.values():
            positions.extend(instance_positions)
        return sorted(positions)

    def frames_of(self, instance_name: str) -> List[int]:
        try:
            return self.frame_assignment[instance_name]
        except KeyError:
            raise PlacementError(
                f"instance {instance_name!r} is not placed"
            ) from None

    def used_frames(self) -> List[int]:
        used: List[int] = []
        for frames in self.frame_assignment.values():
            used.extend(frames)
        return sorted(used)

    def unused_region_frames(self) -> List[int]:
        used = set(self.used_frames())
        return [frame for frame in self.region_frames if frame not in used]


def _check_capacity(
    design: Design, fabric: Fabric, region_frames: Sequence[int]
) -> None:
    need = design.resources()
    region_capacity = fabric.capacity_of_frames(region_frames)
    # CLB/BRAM/IOB live in the region's columns; DCM and ICAP are dedicated
    # primitives checked against the whole device.
    device_capacity = fabric.device_capacity()
    shortfalls = []
    if need.clb > region_capacity.clb:
        shortfalls.append(f"CLB {need.clb} > {region_capacity.clb}")
    if need.bram > region_capacity.bram:
        shortfalls.append(f"BRAM {need.bram} > {region_capacity.bram}")
    if need.iob > region_capacity.iob:
        shortfalls.append(f"IOB {need.iob} > {region_capacity.iob}")
    if need.dcm > device_capacity.dcm:
        shortfalls.append(f"DCM {need.dcm} > {device_capacity.dcm}")
    if need.icap > device_capacity.icap:
        shortfalls.append(f"ICAP {need.icap} > {device_capacity.icap}")
    if shortfalls:
        raise PlacementError(
            f"design {design.name!r} does not fit its region: "
            + "; ".join(shortfalls)
        )


def _frame_shares(instances: List[Instance], frame_budget: int) -> List[int]:
    """Proportional frame shares (largest-remainder method), each >= 1."""
    weights = [max(1, instance.core.clb + 8 * instance.core.bram) for instance in instances]
    total_weight = sum(weights)
    if frame_budget < len(instances):
        raise PlacementError(
            f"region of {frame_budget} frames cannot hold "
            f"{len(instances)} instances"
        )
    raw = [weight * frame_budget / total_weight for weight in weights]
    shares = [max(1, int(value)) for value in raw]
    remainders = sorted(
        range(len(instances)),
        key=lambda index: raw[index] - int(raw[index]),
        reverse=True,
    )
    index = 0
    while sum(shares) < frame_budget and index < len(remainders):
        # Hand out leftover frames by largest remainder.  It is fine to
        # leave frames unassigned (they become default-content fabric),
        # but never to over-assign.
        shares[remainders[index]] += 1
        index += 1
    while sum(shares) > frame_budget:
        largest = max(range(len(shares)), key=lambda i: shares[i])
        if shares[largest] == 1:
            raise PlacementError("cannot shrink shares below one frame each")
        shares[largest] -= 1
    return shares


def _register_bits_for(
    instance: Instance,
    frames: List[int],
    device: DevicePart,
    design_signature: bytes,
) -> List[RegisterBit]:
    """Deterministic storage-element positions within the instance frames."""
    count = instance.core.register_bits
    if count == 0:
        return []
    capacity = len(frames) * device.words_per_frame * 32
    if count > capacity:
        raise PlacementError(
            f"instance {instance.name!r} needs {count} register bits but its "
            f"{len(frames)} frames only hold {capacity}"
        )
    positions: List[RegisterBit] = []
    seen = set()
    counter = 0
    seed = design_signature + instance.name.encode("utf-8")
    bits_per_frame = device.words_per_frame * 32
    while len(positions) < count:
        digest = sha256(seed + counter.to_bytes(4, "big"))
        counter += 1
        for offset in range(0, len(digest) - 3, 4):
            value = int.from_bytes(digest[offset : offset + 4], "big")
            frame = frames[value % len(frames)]
            bit_offset = (value // len(frames)) % bits_per_frame
            key = (frame, bit_offset)
            if key in seen:
                continue
            seen.add(key)
            positions.append(
                RegisterBit(
                    frame_index=frame,
                    word_index=bit_offset // 32,
                    bit_index=bit_offset % 32,
                )
            )
            if len(positions) == count:
                break
    return positions


def place(design: Design, device: DevicePart, region_frames: Sequence[int]) -> Placement:
    """Place ``design`` into the frames of one region."""
    region = sorted(set(region_frames))
    if not region:
        raise PlacementError("cannot place into an empty region")
    if len(design) == 0:
        raise PlacementError(f"design {design.name!r} has no instances")
    fabric = Fabric(device)
    _check_capacity(design, fabric, region)

    instances = sorted(design.instances, key=lambda instance: instance.name)
    shares = _frame_shares(instances, len(region))
    placement = Placement(design=design, device=device, region_frames=region)
    signature = design.content_signature()
    cursor = 0
    for instance, share in zip(instances, shares):
        frames = region[cursor : cursor + share]
        cursor += share
        placement.frame_assignment[instance.name] = frames
        placement.register_positions[instance.name] = _register_bits_for(
            instance, frames, device, signature
        )
    return placement
