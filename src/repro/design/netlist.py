"""Design netlists: named instances of library cores.

A :class:`Design` is what the bit generator consumes: a set of core
instances destined for one partition.  It knows its total resource cost
and its total storage-element (register) bit count — the quantities the
placer checks against region capacity and the mask generator covers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

from repro.design.cores import CoreSpec
from repro.errors import PlacementError
from repro.fpga.fabric import ResourceCount


@dataclass(frozen=True)
class Instance:
    """One placed-able occurrence of a core."""

    name: str
    core: CoreSpec


@dataclass
class Design:
    """A named collection of core instances."""

    name: str
    instances: List[Instance] = field(default_factory=list)

    def add(self, core: CoreSpec, instance_name: str = "") -> "Design":
        instance_name = instance_name or core.name
        if any(existing.name == instance_name for existing in self.instances):
            raise PlacementError(
                f"design {self.name!r} already has an instance {instance_name!r}"
            )
        self.instances.append(Instance(instance_name, core))
        return self

    def remove(self, instance_name: str) -> "Design":
        before = len(self.instances)
        self.instances = [
            instance for instance in self.instances if instance.name != instance_name
        ]
        if len(self.instances) == before:
            raise PlacementError(
                f"design {self.name!r} has no instance {instance_name!r}"
            )
        return self

    def __iter__(self) -> Iterator[Instance]:
        return iter(self.instances)

    def __len__(self) -> int:
        return len(self.instances)

    def resources(self) -> ResourceCount:
        total = ResourceCount()
        for instance in self.instances:
            total = total + instance.core.resources()
        return total

    def register_bit_count(self) -> int:
        return sum(instance.core.register_bits for instance in self.instances)

    def resource_table(self) -> List[Tuple[str, Dict[str, int]]]:
        """Per-instance resource summary (for reports)."""
        return [
            (instance.name, instance.core.resources().as_dict())
            for instance in self.instances
        ]

    def content_signature(self) -> bytes:
        """A stable byte signature of the netlist.

        The bit generator derives frame content from this, so two
        identical designs produce identical bitstreams and any netlist
        change changes the configuration — the property tamper detection
        relies on.
        """
        parts = [self.name.encode("utf-8")]
        for instance in sorted(self.instances, key=lambda i: i.name):
            core = instance.core
            parts.append(
                f"{instance.name}:{core.name}:{core.clb}:{core.bram}:{core.iob}:"
                f"{core.dcm}:{core.icap}:{core.register_bits}:{core.clock_domain}"
                .encode("utf-8")
            )
        return b"|".join(parts)


def design_from_cores(name: str, cores: List[CoreSpec]) -> Design:
    """Build a design with one instance per core."""
    design = Design(name)
    for core in cores:
        design.add(core)
    return design
