"""Design layer: core library, netlists, placement, bit generation.

Bridges the FPGA substrate and the SACHa protocol: turns the block
diagram of the paper's Figure 10 into placed designs, configuration
content, register maps and mask files.
"""

from repro.design.bitgen import Implementation, implement, nonce_frame_content
from repro.design.cores import (
    AES_CMAC_CORE,
    APP_AES_ACCELERATOR,
    APP_BLINKER,
    APP_SOFTCORE,
    CMD_BRAM,
    CLOCK_INFRA,
    CORE_LIBRARY,
    ETH_CORE,
    HEADER_FIFO,
    ICAP_CONTROLLER,
    KEY_STORE,
    MALICIOUS_KEY_EXFIL,
    MALICIOUS_TAP,
    NONCE_REGISTER,
    PUF_CORE,
    RX_FSM,
    STATIC_CORES,
    TX_FSM,
    CoreSpec,
    get_core,
    static_resources,
)
from repro.design.netlist import Design, Instance, design_from_cores
from repro.design.placer import Placement, place
from repro.design.sacha_design import (
    SachaSystemDesign,
    build_sacha_system,
    build_static_design,
    default_floorplan,
    scaled_static_design,
)

__all__ = [
    "Implementation",
    "implement",
    "nonce_frame_content",
    "AES_CMAC_CORE",
    "APP_AES_ACCELERATOR",
    "APP_BLINKER",
    "APP_SOFTCORE",
    "CMD_BRAM",
    "CLOCK_INFRA",
    "CORE_LIBRARY",
    "ETH_CORE",
    "HEADER_FIFO",
    "ICAP_CONTROLLER",
    "KEY_STORE",
    "MALICIOUS_KEY_EXFIL",
    "MALICIOUS_TAP",
    "NONCE_REGISTER",
    "PUF_CORE",
    "RX_FSM",
    "STATIC_CORES",
    "TX_FSM",
    "CoreSpec",
    "get_core",
    "static_resources",
    "Design",
    "Instance",
    "design_from_cores",
    "Placement",
    "place",
    "SachaSystemDesign",
    "build_sacha_system",
    "build_static_design",
    "default_floorplan",
    "scaled_static_design",
]
