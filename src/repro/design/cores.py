"""Hardware core library.

Each :class:`CoreSpec` describes one block of the SACHa block diagram
(Figure 10) or an application core for the dynamic partition: its
resource cost, its storage-element (register) count — which determines
how many readback bits the ``Msk`` must cover — and the clock domain it
runs in.

The StatPart budget reproduces Table 2 exactly: the static cores sum to
1,400 CLBs and 72 BRAMs, with the AES-CMAC core (including its input
FIFO) at 283 CLBs / 8 BRAMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.fpga.fabric import ResourceCount


@dataclass(frozen=True)
class CoreSpec:
    """One synthesizable core: cost, state size, clock domain."""

    name: str
    clb: int
    bram: int = 0
    iob: int = 0
    dcm: int = 0
    icap: int = 0
    register_bits: int = 0
    clock_domain: str = "RX"
    description: str = ""

    def resources(self) -> ResourceCount:
        return ResourceCount(
            clb=self.clb, bram=self.bram, iob=self.iob, dcm=self.dcm, icap=self.icap
        )


# ---------------------------------------------------------------------------
# Static-partition cores (Figure 10).  CLB sum = 1,400; BRAM sum = 72.
# ---------------------------------------------------------------------------

ETH_CORE = CoreSpec(
    name="eth_core",
    clb=420,
    bram=24,
    iob=24,
    register_bits=512,
    clock_domain="RX",
    description="Gigabit Ethernet MAC: one byte per 125 MHz cycle, RX + TX ports",
)

RX_FSM = CoreSpec(
    name="rx_fsm",
    clb=110,
    register_bits=96,
    clock_domain="RX",
    description="Receive-side finite state machine: parses command packets",
)

TX_FSM = CoreSpec(
    name="tx_fsm",
    clb=125,
    register_bits=112,
    clock_domain="TX",
    description="Transmit-side FSM: assembles response packets",
)

CMD_BRAM = CoreSpec(
    name="cmd_bram",
    clb=45,
    bram=16,
    register_bits=48,
    clock_domain="RX",
    description="BRAM command buffer: stores exactly one bitstream frame",
)

HEADER_FIFO = CoreSpec(
    name="header_fifo",
    clb=35,
    bram=8,
    register_bits=40,
    clock_domain="TX",
    description="FIFO holding the outgoing packet header",
)

AES_CMAC_CORE = CoreSpec(
    name="aes_cmac",
    clb=283,
    bram=8,
    register_bits=384,
    clock_domain="TX",
    description=(
        "Low-area AES-128 CMAC core incl. its input FIFO "
        "(283 CLBs / 8 BRAMs — the MAC row of Table 2)"
    ),
)

ICAP_CONTROLLER = CoreSpec(
    name="icap_ctrl",
    clb=190,
    icap=1,
    register_bits=160,
    clock_domain="ICAP",
    description="ICAP sequencer: frame writes, readback, FAR management",
)

KEY_STORE = CoreSpec(
    name="key_store",
    clb=112,
    bram=16,
    register_bits=128,
    clock_domain="TX",
    description="Key register (proof of concept) or PUF + fuzzy extractor slot",
)

CLOCK_INFRA = CoreSpec(
    name="clock_infra",
    clb=80,
    dcm=1,
    register_bits=32,
    clock_domain="ICAP",
    description="DCM glue: derives the 125 MHz TX and 100 MHz ICAP clocks",
)

STATIC_CORES: Tuple[CoreSpec, ...] = (
    ETH_CORE,
    RX_FSM,
    TX_FSM,
    CMD_BRAM,
    HEADER_FIFO,
    AES_CMAC_CORE,
    ICAP_CONTROLLER,
    KEY_STORE,
    CLOCK_INFRA,
)

# ---------------------------------------------------------------------------
# Dynamic-partition cores.
# ---------------------------------------------------------------------------

NONCE_REGISTER = CoreSpec(
    name="nonce_register",
    clb=4,
    register_bits=0,  # the nonce is *configuration* content, not live state
    clock_domain="RX",
    description="64-bit nonce, configured by the verifier as frame content",
)

PUF_CORE = CoreSpec(
    name="puf_core",
    clb=96,
    register_bits=64,
    clock_domain="TX",
    description="Weak key-generating PUF shipped by the verifier (option 2)",
)

APP_BLINKER = CoreSpec(
    name="app_blinker",
    clb=12,
    iob=2,
    register_bits=36,
    clock_domain="RX",
    description="Minimal demo application: LED blinker",
)

APP_AES_ACCELERATOR = CoreSpec(
    name="app_aes_accel",
    clb=850,
    bram=12,
    register_bits=1024,
    clock_domain="RX",
    description="Representative application: pipelined AES accelerator",
)

APP_SOFTCORE = CoreSpec(
    name="app_softcore",
    clb=2400,
    bram=64,
    iob=8,
    register_bits=4096,
    clock_domain="RX",
    description="Embedded soft-core processor (future-work scenario, Sec. 8)",
)

MALICIOUS_TAP = CoreSpec(
    name="malicious_tap",
    clb=64,
    register_bits=80,
    clock_domain="RX",
    description="Adversarial core: taps internal signals and leaks them",
)

MALICIOUS_KEY_EXFIL = CoreSpec(
    name="malicious_key_exfil",
    clb=150,
    bram=2,
    iob=2,
    register_bits=192,
    clock_domain="TX",
    description="Adversarial core: attempts to copy key material to pins",
)

CORE_LIBRARY: Dict[str, CoreSpec] = {
    core.name: core
    for core in STATIC_CORES
    + (
        NONCE_REGISTER,
        PUF_CORE,
        APP_BLINKER,
        APP_AES_ACCELERATOR,
        APP_SOFTCORE,
        MALICIOUS_TAP,
        MALICIOUS_KEY_EXFIL,
    )
}


def get_core(name: str) -> CoreSpec:
    try:
        return CORE_LIBRARY[name]
    except KeyError:
        known = ", ".join(sorted(CORE_LIBRARY))
        raise KeyError(f"unknown core {name!r}; known cores: {known}") from None


def static_resources() -> ResourceCount:
    """Total resources of the StatPart design (the Table 2 row)."""
    total = ResourceCount()
    for core in STATIC_CORES:
        total = total + core.resources()
    return total
