"""The SACHa system design (Figures 7 and 10) and the Table 2 report.

Assembles the static-partition design (ETH core, FSMs, BRAM command
buffer, FIFOs, AES-CMAC, ICAP controller, key store, clocking) and an
application design for the dynamic partition, places both into the SACHa
floorplan, and derives every quantity of Table 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.design.bitgen import Implementation, implement, nonce_frame_content
from repro.design.cores import (
    AES_CMAC_CORE,
    APP_BLINKER,
    CoreSpec,
    NONCE_REGISTER,
    PUF_CORE,
    STATIC_CORES,
)
from repro.design.netlist import Design, design_from_cores
from repro.errors import PlacementError
from repro.fpga.bitstream import Bitstream, build_partial_bitstream
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.device import XC6VLX240T, DevicePart, TileType
from repro.fpga.fabric import Fabric, ResourceCount
from repro.fpga.mask import MaskFile
from repro.fpga.partitions import (
    PartitionMap,
    column_floorplan,
    sacha_virtex6_floorplan,
)


def build_static_design() -> Design:
    """The paper's StatPart netlist: 1,400 CLBs / 72 BRAMs total."""
    return design_from_cores("sacha_static", list(STATIC_CORES))


def scaled_static_design(device: DevicePart) -> Design:
    """A StatPart netlist scaled to a smaller device.

    Keeps every core of the block diagram but shrinks its budget
    proportionally to the device's CLB count, so the full protocol runs
    on the millisecond-scale test parts with the same structure.
    """
    if device.name == XC6VLX240T.name:
        return build_static_design()
    factor = device.clb_count / XC6VLX240T.clb_count
    bram_factor = device.bram_count / XC6VLX240T.bram_count
    bits_per_frame = device.words_per_frame * 32
    scaled: List[CoreSpec] = []
    for core in STATIC_CORES:
        scaled.append(
            CoreSpec(
                name=core.name,
                clb=max(1, round(core.clb * factor)),
                bram=round(core.bram * bram_factor),
                iob=min(core.iob and 1, device.iob_count),
                dcm=min(core.dcm, device.dcm_count),
                icap=core.icap,
                register_bits=max(2, min(core.register_bits // 16, bits_per_frame // 2)),
                clock_domain=core.clock_domain,
                description=f"scaled: {core.description}",
            )
        )
    return design_from_cores("sacha_static_scaled", scaled)


def default_floorplan(device: DevicePart) -> PartitionMap:
    """The SACHa floorplan for any catalogued device."""
    if device.name == XC6VLX240T.name:
        return sacha_virtex6_floorplan(device)
    clb_column_instances = device.rows * sum(
        1 for column in device.columns if column.tile_type is TileType.CLB
    )
    bram_column_instances = device.rows * sum(
        1 for column in device.columns if column.tile_type is TileType.BRAM
    )
    iob_column_instances = device.rows * sum(
        1 for column in device.columns if column.tile_type is TileType.IOB
    )
    # Static gets roughly a third of the CLB columns plus one BRAM and
    # one IOB column; everything else is dynamic.
    return column_floorplan(
        device,
        clb_columns=max(1, clb_column_instances // 3),
        bram_columns=min(1, bram_column_instances),
        iob_columns=min(1, iob_column_instances),
    )


@dataclass(frozen=True)
class SystemPlan:
    """The nonce-independent inputs of one SACHa system build.

    Everything here is a cheap, pure function of the device part and the
    requested application cores — no placement, no bit generation.  The
    plan is what the artifact cache fingerprints: two identical plans
    implement to byte-identical golden templates, masks and boot images,
    so a plan hash is a sound content address for the built artifacts.
    """

    device: DevicePart
    partition: PartitionMap
    static_design: Design
    app_design: Design
    nonce_bytes: int = 8


@dataclass
class SachaSystemDesign:
    """A complete SACHa configuration of one device."""

    device: DevicePart
    partition: PartitionMap
    static_impl: Implementation
    app_impl: Implementation
    nonce_bytes: int = 8
    #: Nonce-independent golden image (static + application applied, no
    #: nonce yet), built once — each golden_memory() call copies it and
    #: writes the nonce frames instead of replaying both implementations.
    _golden_template: Optional[ConfigurationMemory] = field(
        default=None, repr=False, compare=False
    )
    _combined_mask: Optional[MaskFile] = field(
        default=None, repr=False, compare=False
    )
    #: Cached static boot image: pure function of the static
    #: implementation, rebuilt for every provisioned board otherwise
    #: (``recommended_bootmem_bytes`` alone walks it once per device).
    _boot_image: Optional[bytes] = field(
        default=None, repr=False, compare=False
    )

    @property
    def static_design(self) -> Design:
        return self.static_impl.design

    @property
    def app_design(self) -> Design:
        return self.app_impl.design

    # -- configuration images ------------------------------------------------

    def golden_memory(self, nonce: bytes) -> ConfigurationMemory:
        """The intended full configuration for a given nonce."""
        if self._golden_template is None:
            template = ConfigurationMemory(self.device)
            self.static_impl.apply_to(template)
            self.app_impl.apply_to(template)
            self._golden_template = template
        memory = self._golden_template.copy()
        self.write_nonce(memory, nonce)
        return memory

    def write_nonce(self, memory: ConfigurationMemory, nonce: bytes) -> None:
        if len(nonce) != self.nonce_bytes:
            raise ValueError(
                f"nonce must be {self.nonce_bytes} bytes, got {len(nonce)}"
            )
        for frame_index in self.partition.nonce_frame_list():
            memory.write_frame(frame_index, nonce_frame_content(nonce, self.device))

    def combined_mask(self) -> MaskFile:
        """``Msk`` covering static + application storage elements.

        The union is computed once and cached — the implementations'
        register maps are fixed once placed, and callers treat the mask
        as read-only.
        """
        if self._combined_mask is None:
            self._combined_mask = self.static_impl.mask().union(
                self.app_impl.mask()
            )
        return self._combined_mask

    # -- boot image -----------------------------------------------------------

    def static_bitstream(self) -> Bitstream:
        scratch = ConfigurationMemory(self.device)
        self.static_impl.apply_to(scratch)
        return build_partial_bitstream(
            scratch, self.partition.static_frame_list(), "sacha_static_boot"
        )

    def boot_image(self) -> bytes:
        if self._boot_image is None:
            self._boot_image = self.static_bitstream().to_bytes()
        return self._boot_image

    def freeze_artifacts(self) -> None:
        """Eagerly build every lazily-cached shared artifact.

        The artifact cache shares one system object across shard
        workers; materializing the golden template, the combined mask
        (including its keep-bit complement) and the boot image *before*
        the object is published keeps the shared state strictly
        read-only afterwards — no lazy first-touch initialization racing
        between threads.
        """
        self.golden_memory(bytes(self.nonce_bytes))
        self.combined_mask().freeze()
        self.boot_image()

    def recommended_bootmem_bytes(self) -> int:
        """BootMem sizing: fits the static image, not the partial bitstream.

        Section 5.2.1: the BootMem must not be able to store the DynPart
        bitstream, or it would undermine the bounded-memory assumption.
        """
        static_size = len(self.boot_image())
        dynamic_payload = self.partition.dynamic_bitstream_bytes()
        if static_size >= dynamic_payload:
            raise PlacementError(
                "static image is not smaller than the dynamic payload; "
                "the BootMem sizing rule cannot be satisfied"
            )
        margin = 4096
        return min(static_size + margin, dynamic_payload - 1)

    # -- Table 2 ---------------------------------------------------------------

    def table2_rows(self) -> List[Tuple[str, Dict[str, int]]]:
        """The rows of Table 2: entire FPGA, StatPart, MAC(+FIFO), DynPart."""
        device_total = ResourceCount(
            clb=self.device.clb_count,
            bram=self.device.bram_count,
            dcm=self.device.dcm_count,
            icap=self.device.icap_count,
        )
        stat = self.static_design.resources()
        mac = next(
            instance.core.resources()
            for instance in self.static_design
            if instance.core.name == AES_CMAC_CORE.name
        )
        dyn = device_total - stat
        return [
            ("Entire FPGA", _row(device_total)),
            ("StatPart", _row(stat)),
            ("MAC (+ FIFO)", _row(mac)),
            ("DynPart", _row(dyn)),
        ]

    def static_utilization(self) -> float:
        """StatPart share of the FPGA, the max over CLB and BRAM shares.

        The paper reports "less than 9 % ... considering both CLBs and
        BRAMs".
        """
        stat = self.static_design.resources()
        return max(
            stat.clb / self.device.clb_count,
            stat.bram / self.device.bram_count,
        )


def _row(resources: ResourceCount) -> Dict[str, int]:
    return {
        "CLB": resources.clb,
        "BRAM": resources.bram,
        "ICAP": resources.icap,
        "DCM": resources.dcm,
    }


def plan_sacha_system(
    device: DevicePart = XC6VLX240T,
    app_cores: Optional[Sequence[CoreSpec]] = None,
    include_dynamic_puf: bool = False,
    floorplan: Optional[PartitionMap] = None,
) -> SystemPlan:
    """The cheap, deterministic front half of :func:`build_sacha_system`.

    Resolves the floorplan and both netlists without placing or
    generating a single frame — milliseconds even on the full part —
    so callers (the artifact cache above all) can fingerprint a build
    before paying for it.
    """
    partition = floorplan or default_floorplan(device)
    fabric = Fabric(device)
    static_design = (
        build_static_design()
        if device.name == XC6VLX240T.name
        else scaled_static_design(device)
    )
    cores = list(app_cores) if app_cores is not None else [APP_BLINKER]
    if include_dynamic_puf:
        cores.append(PUF_CORE)
    cores.append(NONCE_REGISTER)
    app_design = design_from_cores(
        "sacha_app", _fit_cores(cores, device, fabric, partition)
    )
    return SystemPlan(
        device=device,
        partition=partition,
        static_design=static_design,
        app_design=app_design,
    )


def implement_plan(plan: SystemPlan) -> SachaSystemDesign:
    """The expensive back half: place both designs and generate content."""
    static_impl = implement(
        plan.static_design, plan.device, plan.partition.static_frame_list()
    )
    app_impl = implement(
        plan.app_design, plan.device, plan.partition.application_frame_list()
    )
    return SachaSystemDesign(
        device=plan.device,
        partition=plan.partition,
        static_impl=static_impl,
        app_impl=app_impl,
        nonce_bytes=plan.nonce_bytes,
    )


def build_sacha_system(
    device: DevicePart = XC6VLX240T,
    app_cores: Optional[Sequence[CoreSpec]] = None,
    include_dynamic_puf: bool = False,
    floorplan: Optional[PartitionMap] = None,
) -> SachaSystemDesign:
    """Implement the full SACHa system on a device.

    ``app_cores`` is the intended application of the dynamic partition
    (default: the LED-blinker demo).  With ``include_dynamic_puf`` the
    verifier-supplied PUF core (key option 2 of Section 5.2.1) is added
    to the dynamic design.
    """
    return implement_plan(
        plan_sacha_system(
            device,
            app_cores=app_cores,
            include_dynamic_puf=include_dynamic_puf,
            floorplan=floorplan,
        )
    )


def _fit_cores(
    cores: Sequence[CoreSpec],
    device: DevicePart,
    fabric: Fabric,
    partition: PartitionMap,
) -> List[CoreSpec]:
    """Scale application cores down if the (test) device is too small."""
    capacity = fabric.capacity_of_frames(partition.application_frame_list())
    need_clb = sum(core.clb for core in cores)
    if need_clb <= capacity.clb:
        return list(cores)
    factor = capacity.clb / max(1, need_clb) / 2
    bits_per_frame = device.words_per_frame * 32
    return [
        CoreSpec(
            name=core.name,
            clb=max(1, int(core.clb * factor)),
            bram=0,
            iob=0,
            dcm=0,
            icap=0,
            register_bits=max(0, min(core.register_bits // 32, bits_per_frame // 4)),
            clock_domain=core.clock_domain,
            description=f"scaled: {core.description}",
        )
        for core in cores
    ]
