"""Bit generation: from a placed design to configuration content.

``bitgen`` turns a :class:`Placement` into

* deterministic frame content for every region frame (the configuration
  the design "synthesizes to") — any change to the netlist changes the
  content, which is what the verifier's golden comparison detects;
* the design's storage-element declarations for the live-register
  overlay;
* the matching ``Msk`` mask file;
* full/partial bitstreams via ``repro.fpga.bitstream``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.crypto.sha256 import sha256
from repro.errors import ConfigMemoryError, FrameAddressError
from repro.design.netlist import Design
from repro.design.placer import Placement, place
from repro.fpga.bitstream import Bitstream, build_partial_bitstream
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.device import DevicePart
from repro.fpga.mask import MaskFile
from repro.fpga.registers import LiveRegisterFile, RegisterBit


def _instance_content(
    instance_tag: bytes, frames: List[int], frame_bytes: int
) -> Dict[int, bytes]:
    """Deterministic configuration bytes for one instance's frames.

    Content is a pure function of the instance's netlist signature, so
    any design change changes the configuration — the property the golden
    comparison detects.  A counter-based generator (Philox) keyed by the
    signature hash produces the bulk data quickly.
    """
    if not frames:
        return {}
    seed = int.from_bytes(sha256(instance_tag)[:16], "big")
    generator = np.random.Generator(np.random.Philox(key=seed))
    data = generator.integers(
        0, 256, size=(len(frames), frame_bytes), dtype=np.uint8
    )
    return {
        frame_index: data[position].tobytes()
        for position, frame_index in enumerate(frames)
    }


@dataclass
class Implementation:
    """A fully implemented design: placement plus generated configuration."""

    design: Design
    device: DevicePart
    placement: Placement
    frame_content: Dict[int, bytes]

    @property
    def region_frames(self) -> List[int]:
        return self.placement.region_frames

    def register_positions(self) -> List[RegisterBit]:
        return self.placement.all_register_positions()

    def apply_to(self, memory: ConfigurationMemory) -> None:
        """Write the implementation's frames into a configuration memory.

        All frames land in one fancy-indexed store — the golden-memory
        rebuild inside every verifier evaluation walks this path, so a
        per-frame ``write_frame`` loop would tax each attestation run.
        """
        if not self.frame_content:
            return
        count = len(self.frame_content)
        indices = np.fromiter(
            self.frame_content.keys(), dtype=np.intp, count=count
        )
        if int(indices.min()) < 0 or int(indices.max()) >= memory.total_frames:
            raise FrameAddressError(
                f"frame index out of range for {memory.device.name}"
            )
        data = b"".join(self.frame_content.values())
        words = memory.device.words_per_frame
        if len(data) != count * memory.frame_bytes:
            raise ConfigMemoryError(
                f"{len(data)} bytes do not hold {count} frames of "
                f"{memory.frame_bytes} bytes"
            )
        memory.frames_array()[indices] = np.frombuffer(data, dtype=">u4").reshape(
            count, words
        )

    def declare_registers(self, registers: LiveRegisterFile) -> None:
        """Declare the design's storage elements on a live register file."""
        registers.declare(self.register_positions())

    def mask(self) -> MaskFile:
        """The ``Msk`` covering exactly this design's storage elements."""
        mask = MaskFile(self.device)
        mask.set_positions(self.register_positions())
        return mask

    def partial_bitstream(self, design_name: str = "") -> Bitstream:
        """Partial bitstream configuring exactly the region frames."""
        scratch = ConfigurationMemory(self.device)
        self.apply_to(scratch)
        return build_partial_bitstream(
            scratch, self.region_frames, design_name or self.design.name
        )

    def bitstream_bytes(self) -> int:
        """Raw configuration payload size (frames x frame size)."""
        return len(self.region_frames) * self.device.frame_bytes


def implement(
    design: Design, device: DevicePart, region_frames
) -> Implementation:
    """Place a design and generate its configuration content.

    Every frame of the region receives content: frames assigned to an
    instance get design-derived bits; unassigned frames get the default
    (all-zero) fabric configuration — exactly like unused fabric in a
    real partial bitstream, which is still part of the payload.
    """
    placement = place(design, device, region_frames)
    signature = design.content_signature()
    frame_content: Dict[int, bytes] = {}
    for instance_name, frames in placement.frame_assignment.items():
        instance_tag = signature + b"/" + instance_name.encode("utf-8")
        frame_content.update(
            _instance_content(instance_tag, frames, device.frame_bytes)
        )
    for frame_index in placement.unused_region_frames():
        frame_content[frame_index] = bytes(device.frame_bytes)
    return Implementation(
        design=design,
        device=device,
        placement=placement,
        frame_content=frame_content,
    )


def nonce_frame_content(nonce: bytes, device: DevicePart) -> bytes:
    """The configuration content of the nonce frame.

    The 64-bit nonce lands in the first words of the nonce frame; the
    rest of the frame is the default configuration of the nonce-register
    partition.
    """
    if len(nonce) > device.frame_bytes:
        raise ValueError(
            f"nonce of {len(nonce)} bytes exceeds a frame "
            f"({device.frame_bytes} bytes)"
        )
    return nonce + bytes(device.frame_bytes - len(nonce))
