"""SACHa: Self-Attestation of Configurable Hardware — full reproduction.

A frame-accurate simulation of the SACHa system (Vliegen, Rabbani,
Conti, Mentens — DATE 2019 and its extended version): an FPGA
architecture and attestation protocol that let an SRAM-based FPGA prove
its *entire* configuration memory to a remote verifier without a
tamper-resistant hardware module.

Quick start::

    from repro import quick_attestation

    report = quick_attestation()
    print(report.explain())

Package map:

* ``repro.core``      — prover, verifier, protocol (the contribution);
* ``repro.fpga``      — device, configuration memory, ICAP, bitstreams;
* ``repro.design``    — core library, placer, bitgen, the Fig.-10 design;
* ``repro.crypto``    — AES, AES-CMAC, SHA-256 (from scratch);
* ``repro.net``       — Ethernet, channel, SACHa wire format;
* ``repro.timing``    — Table-3/4 models and the network-overhead gap;
* ``repro.baselines`` — Perito–Tsudik PoSE, SWATT, Chaves, Drimer–Kuhn;
* ``repro.attacks``   — the Section-7.2 adversaries, executable;
* ``repro.system``    — FPGA-as-trusted-module attestation of a µP;
* ``repro.analysis``  — experiment registry E1–E11 and table rendering.
"""

from repro.core import (
    AttestationReport,
    SachaProver,
    SachaVerifier,
    SessionOptions,
    attest,
    provision_device,
    run_attestation,
)
from repro.design import build_sacha_system
from repro.fpga import SIM_MEDIUM, SIM_SMALL, XC6VLX240T
from repro.utils.rng import DeterministicRng

__version__ = "1.0.0"

__all__ = [
    "AttestationReport",
    "SachaProver",
    "SachaVerifier",
    "SessionOptions",
    "attest",
    "provision_device",
    "run_attestation",
    "build_sacha_system",
    "SIM_MEDIUM",
    "SIM_SMALL",
    "XC6VLX240T",
    "DeterministicRng",
    "quick_attestation",
]


def quick_attestation(device=SIM_MEDIUM, seed: int = 2019) -> AttestationReport:
    """Provision a device and run one honest attestation.

    The three-line demo: build the SACHa system for ``device``, provision
    a board (BootMem + PUF enrollment), run the full protocol, and return
    the verifier's report.
    """
    system = build_sacha_system(device)
    provisioned, record = provision_device(system, "quickstart", seed=seed)
    verifier = SachaVerifier(
        record.system, record.mac_key, DeterministicRng(seed + 1)
    )
    return attest(provisioned.prover, verifier, DeterministicRng(seed + 2))
