"""``repro cache`` — the artifact cache's ops surface.

Subcommands:

* ``stats`` — both tiers: memoized bundles in this process (usually none
  for a fresh CLI invocation) and every entry under the configured cache
  directory, with per-entry sizes; ``--json`` for machines;
* ``clear`` — drop the memo tier and delete every on-disk entry
  (``--memo-only`` keeps the disk tier).

The cache directory comes from the usual configuration chain: the global
``--cache-dir`` flag, else ``REPRO_CACHE_DIR``, else no disk tier.
"""

from __future__ import annotations

import argparse
import json

from repro.cache import get_artifact_cache


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``cache`` subcommand tree to ``parser``."""
    commands = parser.add_subparsers(dest="cache_command", required=True)

    stats = commands.add_parser(
        "stats", help="per-tier entry listing and sizes"
    )
    stats.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    clear = commands.add_parser(
        "clear", help="drop memoized bundles and delete on-disk entries"
    )
    clear.add_argument(
        "--memo-only",
        action="store_true",
        help="keep the on-disk tier, clear only this process's memo",
    )


def run(args: argparse.Namespace) -> int:
    if args.cache_command == "stats":
        return _command_stats(args)
    return _command_clear(args)


def _command_stats(args: argparse.Namespace) -> int:
    stats = get_artifact_cache().stats()
    if args.json:
        print(json.dumps(stats, sort_keys=True))
        return 0
    memo = stats["memo"]
    disk = stats["disk"]
    print(
        f"memo tier: {len(memo['entries'])} bundle(s), {memo['bytes']} bytes"
    )
    for entry in memo["entries"]:
        print(
            f"  {entry['fingerprint'][:16]}  {entry['part']}  "
            f"{entry['bytes']} bytes"
        )
    if not disk["dir"]:
        print("disk tier: disabled (set --cache-dir or REPRO_CACHE_DIR)")
        return 0
    print(
        f"disk tier ({disk['dir']}): {len(disk['entries'])} entr"
        f"{'y' if len(disk['entries']) == 1 else 'ies'}, "
        f"{disk['bytes']} bytes"
    )
    for entry in disk["entries"]:
        print(
            f"  {entry['fingerprint'][:16]}  {entry['part']}  "
            f"{entry['bytes']} bytes"
        )
    return 0


def _command_clear(args: argparse.Namespace) -> int:
    cache = get_artifact_cache()
    removed = cache.clear(disk=not args.memo_only)
    print(f"cleared {removed['memo']} memoized bundle(s)")
    store = cache.disk_store()
    if args.memo_only:
        print("disk tier left intact (--memo-only)")
    elif store is None:
        print("disk tier: disabled, nothing to delete")
    else:
        print(f"deleted {removed['disk']} on-disk entr"
              f"{'y' if removed['disk'] == 1 else 'ies'} from {store.root}")
    return 0
