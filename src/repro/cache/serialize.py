"""Packing placed implementations into flat arrays and back.

The expensive halves of a system build — placement's register-bit
derivation and bitgen's per-instance content generation — both produce
plain data: frame lists, ``(frame, word, bit)`` register positions and
per-frame configuration bytes.  This module flattens one
:class:`~repro.design.bitgen.Implementation` into numpy arrays plus a
small JSON-able metadata dict (and reverses it), so the disk tier can
rebuild a bit-identical implementation without re-running the placer or
the Philox generators.

The designs themselves are *not* serialized: netlists are cheap, pure
functions of the device part, so the loader rebuilds them from the
:class:`~repro.design.sacha_design.SystemPlan` and only the derived
placement state comes off disk.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.design.bitgen import Implementation
from repro.design.netlist import Design
from repro.design.placer import Placement
from repro.errors import ReproError
from repro.fpga.device import DevicePart
from repro.fpga.registers import RegisterBit


def pack_implementation(
    impl: Implementation,
) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
    """Flatten one implementation into (metadata, arrays)."""
    placement = impl.placement
    instance_order: List[str] = list(placement.frame_assignment.keys())
    assign_frames: List[int] = []
    assign_offsets: List[int] = [0]
    for name in instance_order:
        assign_frames.extend(placement.frame_assignment[name])
        assign_offsets.append(len(assign_frames))
    regpos_rows: List[Tuple[int, int, int, int]] = []
    for index, name in enumerate(instance_order):
        for position in placement.register_positions.get(name, []):
            regpos_rows.append(
                (
                    index,
                    position.frame_index,
                    position.word_index,
                    position.bit_index,
                )
            )
    content_index = np.fromiter(
        impl.frame_content.keys(), dtype=np.int64, count=len(impl.frame_content)
    )
    frame_bytes = impl.device.frame_bytes
    content_data = np.frombuffer(
        b"".join(impl.frame_content.values()), dtype=np.uint8
    ).reshape(len(impl.frame_content), frame_bytes)
    arrays = {
        "region_frames": np.asarray(placement.region_frames, dtype=np.int64),
        "assign_frames": np.asarray(assign_frames, dtype=np.int64),
        "assign_offsets": np.asarray(assign_offsets, dtype=np.int64),
        "regpos": np.asarray(regpos_rows, dtype=np.uint32).reshape(
            len(regpos_rows), 4
        ),
        "content_index": content_index,
        "content_data": content_data,
    }
    meta = {"design_name": impl.design.name, "instances": instance_order}
    return meta, arrays


def unpack_implementation(
    design: Design,
    device: DevicePart,
    meta: Dict[str, object],
    arrays: Dict[str, np.ndarray],
) -> Implementation:
    """Rebuild an implementation from stored (metadata, arrays).

    ``design`` must be the freshly re-planned netlist the arrays were
    packed from; the fingerprint match guarantees that, and the name
    check below catches a manifest wired to the wrong arrays.
    """
    if meta.get("design_name") != design.name:
        raise ReproError(
            f"cached implementation is for design {meta.get('design_name')!r}, "
            f"expected {design.name!r}"
        )
    instance_order = [str(name) for name in meta.get("instances", [])]
    placed = {instance.name for instance in design}
    if set(instance_order) != placed:
        raise ReproError(
            f"cached placement instances do not match design {design.name!r}"
        )
    assign_offsets = arrays["assign_offsets"]
    assign_frames = arrays["assign_frames"]
    placement = Placement(
        design=design,
        device=device,
        region_frames=[int(f) for f in arrays["region_frames"]],
    )
    for index, name in enumerate(instance_order):
        start, stop = int(assign_offsets[index]), int(assign_offsets[index + 1])
        placement.frame_assignment[name] = [
            int(frame) for frame in assign_frames[start:stop]
        ]
        placement.register_positions[name] = []
    for row in arrays["regpos"]:
        placement.register_positions[instance_order[int(row[0])]].append(
            RegisterBit(
                frame_index=int(row[1]),
                word_index=int(row[2]),
                bit_index=int(row[3]),
            )
        )
    content_data = arrays["content_data"]
    if content_data.ndim != 2 or content_data.shape[1] != device.frame_bytes:
        raise ReproError(
            f"cached frame content of shape {content_data.shape} does not "
            f"fit {device.name} frames of {device.frame_bytes} bytes"
        )
    frame_content = {
        int(frame_index): content_data[position].tobytes()
        for position, frame_index in enumerate(arrays["content_index"])
    }
    return Implementation(
        design=design,
        device=device,
        placement=placement,
        frame_content=frame_content,
    )
