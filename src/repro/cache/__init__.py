"""Content-addressed cache of built attestation artifacts.

A SACHa system build — placement, register-bit derivation, Philox frame
content, golden template, combined ``Msk``, boot image — is a pure
function of the :class:`~repro.design.sacha_design.SystemPlan`, and a
fleet is mostly many devices of few parts.  This package therefore
memoizes builds by a canonical SHA-256 fingerprint of the plan:

* **memo tier** (:mod:`repro.cache.memo`): an in-process, lock-guarded
  map so N same-part devices in one sweep build once and share one
  frozen, read-only bundle across shard workers;
* **disk tier** (:mod:`repro.cache.store`): checksummed ``.npy``/JSON
  blobs under a cache directory so the *next process* warm-starts too.
  Entries are verified blob-by-blob and silently rebuilt on any
  mismatch — the cache can change how fast an answer arrives, never
  what the answer is.

Only nonce- and key-independent state is cached.  Per-device mutable
state — board, PUF, live registers, prover, MAC keys — is rebuilt per
device by :func:`repro.core.provisioning.provision_device`; no secret
ever reaches this package.

Both tiers are governed by :class:`repro.perf.config.ReproConfig`:
``artifact_cache`` is the master switch and ``cache_dir`` enables
persistence.  Hit/miss traffic lands on the ambient metrics registry as
``sacha_cache_hits_total`` / ``sacha_cache_misses_total`` (labeled
``tier=memo|disk``) plus the ``sacha_cache_bytes`` resident-size gauge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.cache.artifacts import (
    SystemArtifacts,
    build_artifacts,
    resolve_plan,
)
from repro.cache.fingerprint import CACHE_SCHEMA_VERSION, plan_fingerprint
from repro.cache.memo import ArtifactMemo
from repro.cache.store import DiskStore
from repro.design.cores import CoreSpec
from repro.design.sacha_design import SachaSystemDesign
from repro.obs.metrics import get_registry
from repro.perf.config import get_config

__all__ = [
    "ArtifactCache",
    "CACHE_SCHEMA_VERSION",
    "SystemArtifacts",
    "get_artifact_cache",
    "plan_fingerprint",
    "reset_artifact_cache",
]


def _hits(tier: str) -> None:
    get_registry().counter(
        "sacha_cache_hits_total",
        "Artifact cache hits by tier.",
        labels=("tier",),
    ).inc(tier=tier)


def _misses(tier: str) -> None:
    get_registry().counter(
        "sacha_cache_misses_total",
        "Artifact cache misses by tier.",
        labels=("tier",),
    ).inc(tier=tier)


class ArtifactCache:
    """The two-tier facade instrumented code materializes through."""

    def __init__(self) -> None:
        self._memo = ArtifactMemo()

    @property
    def memo(self) -> ArtifactMemo:
        return self._memo

    def disk_store(self) -> Optional[DiskStore]:
        """The configured disk tier, or ``None`` when persistence is off."""
        cache_dir = get_config().cache_dir
        return DiskStore(cache_dir) if cache_dir else None

    def get_artifacts(
        self,
        part: str,
        app_cores: Optional[Sequence[CoreSpec]] = None,
        include_dynamic_puf: bool = False,
    ) -> SystemArtifacts:
        """The shared build bundle for a part, through both tiers.

        Tier order per fingerprint: memo hit → done; else disk hit →
        memoize and done; else cold build, then populate both tiers.
        The cold build runs under the memo lock, so concurrent misses
        for one part collapse into a single build and the hit/miss
        counts stay a pure function of the device list, independent of
        worker count.
        """
        config = get_config()
        if not config.artifact_cache:
            # Bypass: the cold baseline.  No memoization, no metrics.
            return build_artifacts(
                resolve_plan(
                    part,
                    app_cores=app_cores,
                    include_dynamic_puf=include_dynamic_puf,
                )
            )
        plan = resolve_plan(
            part, app_cores=app_cores, include_dynamic_puf=include_dynamic_puf
        )
        fingerprint = plan_fingerprint(plan)
        store = self.disk_store()

        def _build_through_disk() -> SystemArtifacts:
            if store is not None:
                loaded = store.load(fingerprint, plan)
                if loaded is not None:
                    _hits("disk")
                    return loaded
                _misses("disk")
                # A failed verification may mean a corrupt entry is
                # squatting on the fingerprint; drop it so the rebuild
                # below republishes a good copy.
                store.invalidate(fingerprint)
            built = build_artifacts(plan, fingerprint)
            if store is not None:
                store.save(built)
            return built

        artifacts, memo_hit = self._memo.get_or_build(
            fingerprint, _build_through_disk
        )
        if memo_hit:
            _hits("memo")
        else:
            _misses("memo")
        get_registry().gauge(
            "sacha_cache_bytes",
            "Resident bytes of memoized artifact bundles.",
        ).set(self._memo.total_bytes())
        return artifacts

    def get_system(
        self,
        part: str,
        app_cores: Optional[Sequence[CoreSpec]] = None,
        include_dynamic_puf: bool = False,
    ) -> SachaSystemDesign:
        """The (frozen, shared) system design for a part."""
        return self.get_artifacts(
            part, app_cores=app_cores, include_dynamic_puf=include_dynamic_puf
        ).system

    # -- ops -----------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Snapshot of both tiers for the ``repro cache stats`` surface."""
        store = self.disk_store()
        memo_entries: List[Dict[str, object]] = [
            {
                "fingerprint": entry.fingerprint,
                "part": entry.part,
                "bytes": entry.memory_bytes(),
            }
            for entry in self._memo.entries()
        ]
        return {
            "memo": {
                "entries": memo_entries,
                "bytes": sum(int(entry["bytes"]) for entry in memo_entries),
            },
            "disk": {
                "dir": store.root if store is not None else "",
                "entries": store.entries() if store is not None else [],
                "bytes": store.total_bytes() if store is not None else 0,
            },
        }

    def clear(self, disk: bool = True) -> Dict[str, int]:
        """Drop the memo tier and (optionally) the disk tier."""
        removed = {"memo": self._memo.clear(), "disk": 0}
        store = self.disk_store()
        if disk and store is not None:
            removed["disk"] = store.clear()
        return removed


#: The process-wide cache, created at import time (module import is
#: serialized by the interpreter, so shard workers never race a lazy
#: constructor).
_CACHE = ArtifactCache()


def get_artifact_cache() -> ArtifactCache:
    """The process-wide artifact cache."""
    return _CACHE


def reset_artifact_cache() -> ArtifactCache:
    """Swap in a fresh cache (tests, benchmark cold legs); returns it.

    Main-thread only — callers reset between sweeps, never during one.
    """
    global _CACHE
    _CACHE = ArtifactCache()
    return _CACHE
