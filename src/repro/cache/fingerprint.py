"""Deterministic content addresses for built system artifacts.

A SACHa system build is a pure function of its :class:`SystemPlan` —
the device geometry, both netlists, the floorplan and the nonce width.
Everything the build produces (golden template, combined mask, boot
image, register maps) is nonce- and key-independent, so a canonical
SHA-256 over the plan is a sound content address: equal fingerprints
imply byte-identical artifacts, and *any* change to the part catalog,
a core spec, the placer's region lists or the cache schema changes the
address and forces a rebuild instead of serving stale state.

``hashlib`` (not the pure-Python teaching SHA-256 in ``repro.crypto``)
computes the digest: fingerprints are infrastructure on the verifier's
hot path, not protocol state, and the canonical-JSON preimage keeps
them reproducible across processes and machines either way.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List

from repro.design.netlist import Design
from repro.design.sacha_design import SystemPlan
from repro.fpga.device import DevicePart

#: Bump on any change to the cached artifact layout or to the meaning of
#: the fingerprint preimage; old entries then simply never match.
CACHE_SCHEMA_VERSION = 1


def _device_facts(device: DevicePart) -> Dict[str, object]:
    """Every geometric quantity the build reads from the part."""
    return {
        "name": device.name,
        "rows": device.rows,
        "columns": [
            [column.tile_type.value, column.tiles, column.frames]
            for column in device.columns
        ],
        "words_per_frame": device.words_per_frame,
        "dcm_count": device.dcm_count,
        "icap_count": device.icap_count,
        "bram_kbits": device.bram_kbits,
    }


def _design_facts(design: Design) -> str:
    """The netlist version: the same signature bitgen derives content from."""
    return design.content_signature().decode("utf-8", errors="surrogateescape")


def _region_facts(plan: SystemPlan) -> Dict[str, List[int]]:
    partition = plan.partition
    return {
        "static": partition.static_frame_list(),
        "application": partition.application_frame_list(),
        "nonce": partition.nonce_frame_list(),
    }


def plan_fingerprint(plan: SystemPlan) -> str:
    """The canonical SHA-256 content address of one system plan."""
    preimage = {
        "schema": CACHE_SCHEMA_VERSION,
        "device": _device_facts(plan.device),
        "static_design": _design_facts(plan.static_design),
        "app_design": _design_facts(plan.app_design),
        "regions": _region_facts(plan),
        "nonce_bytes": plan.nonce_bytes,
    }
    canonical = json.dumps(
        preimage, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def blob_checksum(data: bytes) -> str:
    """Integrity checksum for one stored blob (manifest ``sha256`` field)."""
    return hashlib.sha256(data).hexdigest()
