"""On-disk cache tier: one directory of checksummed blobs per fingerprint.

Layout under the cache root::

    <cache_dir>/<fingerprint>/
        manifest.json       schema, part, sizes, per-file sha256 checksums
        golden_template.npy nonce-independent golden configuration frames
        mask_bits.npy       combined Msk bit array
        boot_image.bin      static boot bitstream bytes
        static_impl.npz     packed static implementation (see serialize.py)
        app_impl.npz        packed application implementation

Entries are *verified, never trusted*: every blob is checksummed against
the manifest on load and any mismatch — truncated file, flipped byte,
schema bump, wrong part — makes the load return ``None`` so the caller
rebuilds and overwrites.  Writes go to a per-process temp directory that
is renamed into place, so a reader never observes a half-written entry;
the loser of a cross-process publish race just discards its temp dir.
"""

from __future__ import annotations

import io
import json
import os
import shutil
from typing import Dict, List, Optional

import numpy as np

from repro.cache.artifacts import SystemArtifacts, artifacts_from_system
from repro.cache.fingerprint import CACHE_SCHEMA_VERSION, blob_checksum
from repro.cache.serialize import pack_implementation, unpack_implementation
from repro.design.sacha_design import SachaSystemDesign, SystemPlan
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.mask import MaskFile

MANIFEST_NAME = "manifest.json"


def _array_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def _arrays_bytes(arrays: Dict[str, np.ndarray]) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _load_array(data: bytes) -> np.ndarray:
    return np.load(io.BytesIO(data), allow_pickle=False)


def _load_arrays(data: bytes) -> Dict[str, np.ndarray]:
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        return {name: archive[name] for name in archive.files}


class DiskStore:
    """Persistent artifact store rooted at one cache directory."""

    def __init__(self, root: str) -> None:
        self._root = os.path.abspath(root)

    @property
    def root(self) -> str:
        return self._root

    def _entry_dir(self, fingerprint: str) -> str:
        return os.path.join(self._root, fingerprint)

    # -- write ---------------------------------------------------------------

    def save(self, artifacts: SystemArtifacts) -> int:
        """Persist one bundle; returns the bytes written.

        Idempotent: an existing entry for the fingerprint is left alone
        (content-addressing makes it byte-identical by construction).
        """
        final_dir = self._entry_dir(artifacts.fingerprint)
        if os.path.isfile(os.path.join(final_dir, MANIFEST_NAME)):
            return 0
        system = artifacts.system
        static_meta, static_arrays = pack_implementation(system.static_impl)
        app_meta, app_arrays = pack_implementation(system.app_impl)
        system.freeze_artifacts()
        template = system._golden_template
        assert template is not None  # freeze_artifacts() just built it
        blobs: Dict[str, bytes] = {
            "golden_template.npy": _array_bytes(template.frames_array()),
            "mask_bits.npy": _array_bytes(system.combined_mask().bits_array()),
            "boot_image.bin": artifacts.boot_image,
            "static_impl.npz": _arrays_bytes(static_arrays),
            "app_impl.npz": _arrays_bytes(app_arrays),
        }
        manifest = {
            "schema": CACHE_SCHEMA_VERSION,
            "fingerprint": artifacts.fingerprint,
            "part": artifacts.part,
            "nonce_bytes": system.nonce_bytes,
            "bootmem_bytes": artifacts.bootmem_bytes,
            "impl_meta": {"static": static_meta, "app": app_meta},
            "files": {
                name: {"sha256": blob_checksum(data), "bytes": len(data)}
                for name, data in blobs.items()
            },
        }
        # Per-process temp dir, renamed into place: readers only ever see
        # complete entries, and a lost cross-process race is discarded.
        temp_dir = os.path.join(
            self._root, f".tmp-{artifacts.fingerprint[:12]}-{os.getpid()}"
        )
        os.makedirs(temp_dir, exist_ok=True)
        try:
            for name, data in blobs.items():
                with open(os.path.join(temp_dir, name), "wb") as handle:
                    handle.write(data)
            with open(os.path.join(temp_dir, MANIFEST_NAME), "w") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
            try:
                os.rename(temp_dir, final_dir)
            except OSError:
                # Another process published first; its entry is equivalent.
                shutil.rmtree(temp_dir, ignore_errors=True)
                return 0
        except Exception:
            shutil.rmtree(temp_dir, ignore_errors=True)
            raise
        return sum(len(data) for data in blobs.values())

    # -- read ----------------------------------------------------------------

    def load(
        self, fingerprint: str, plan: SystemPlan
    ) -> Optional[SystemArtifacts]:
        """Load and verify one entry; ``None`` means rebuild.

        ``plan`` supplies the freshly re-derived netlists — only placed
        state comes off disk, and it is re-checksummed blob by blob.
        """
        entry_dir = self._entry_dir(fingerprint)
        manifest_path = os.path.join(entry_dir, MANIFEST_NAME)
        try:
            with open(manifest_path, "r") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            manifest.get("schema") != CACHE_SCHEMA_VERSION
            or manifest.get("fingerprint") != fingerprint
            or manifest.get("part") != plan.device.name
            or manifest.get("nonce_bytes") != plan.nonce_bytes
        ):
            return None
        files = manifest.get("files", {})
        blobs: Dict[str, bytes] = {}
        for name, expected in files.items():
            try:
                with open(os.path.join(entry_dir, name), "rb") as handle:
                    data = handle.read()
            except OSError:
                return None
            if blob_checksum(data) != expected.get("sha256"):
                return None
            blobs[name] = data
        try:
            impl_meta = manifest["impl_meta"]
            static_impl = unpack_implementation(
                plan.static_design,
                plan.device,
                impl_meta["static"],
                _load_arrays(blobs["static_impl.npz"]),
            )
            app_impl = unpack_implementation(
                plan.app_design,
                plan.device,
                impl_meta["app"],
                _load_arrays(blobs["app_impl.npz"]),
            )
            template = ConfigurationMemory.from_frames(
                plan.device, _load_array(blobs["golden_template.npy"])
            )
            mask = MaskFile.from_bits(
                plan.device, _load_array(blobs["mask_bits.npy"])
            )
        except Exception:
            return None
        system = SachaSystemDesign(
            device=plan.device,
            partition=plan.partition,
            static_impl=static_impl,
            app_impl=app_impl,
            nonce_bytes=plan.nonce_bytes,
            _golden_template=template,
            _combined_mask=mask,
            _boot_image=blobs["boot_image.bin"],
        )
        artifacts = artifacts_from_system(fingerprint, system)
        if artifacts.bootmem_bytes != manifest.get("bootmem_bytes"):
            return None
        return artifacts

    def invalidate(self, fingerprint: str) -> None:
        """Delete one entry (called after a failed verification, so the
        rebuild's :meth:`save` republishes a good copy)."""
        entry_dir = self._entry_dir(fingerprint)
        if os.path.isdir(entry_dir):
            shutil.rmtree(entry_dir, ignore_errors=True)

    # -- ops -----------------------------------------------------------------

    def entries(self) -> List[Dict[str, object]]:
        """Manifest summaries of every complete on-disk entry."""
        if not os.path.isdir(self._root):
            return []
        summaries: List[Dict[str, object]] = []
        for name in sorted(os.listdir(self._root)):
            manifest_path = os.path.join(self._root, name, MANIFEST_NAME)
            try:
                with open(manifest_path, "r") as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            files = manifest.get("files", {})
            summaries.append(
                {
                    "fingerprint": manifest.get("fingerprint", name),
                    "part": manifest.get("part", "?"),
                    "bytes": sum(
                        int(entry.get("bytes", 0)) for entry in files.values()
                    ),
                }
            )
        return summaries

    def total_bytes(self) -> int:
        return sum(int(entry["bytes"]) for entry in self.entries())

    def clear(self) -> int:
        """Delete every entry (and stale temp dirs); returns the count."""
        if not os.path.isdir(self._root):
            return 0
        removed = 0
        for name in sorted(os.listdir(self._root)):
            path = os.path.join(self._root, name)
            if not os.path.isdir(path):
                continue
            is_entry = os.path.isfile(os.path.join(path, MANIFEST_NAME))
            if is_entry or name.startswith(".tmp-"):
                shutil.rmtree(path, ignore_errors=True)
                removed += int(is_entry)
        return removed
