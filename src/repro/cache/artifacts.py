"""The cached unit: everything one system build produces that is shareable.

A :class:`SystemArtifacts` bundles the immutable, nonce- and
key-independent outputs of ``build_sacha_system`` for one fingerprint:
the implemented system design (with its golden template, combined mask
and boot image eagerly frozen), the boot image bytes, the BootMem
sizing, and the readback coverage plan.  One bundle is shared by every
device of the same part in a sweep; per-device mutable state (board,
PUF, live registers, prover) is explicitly *not* part of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.cache.fingerprint import plan_fingerprint
from repro.design.cores import CoreSpec
from repro.design.sacha_design import (
    SachaSystemDesign,
    SystemPlan,
    implement_plan,
    plan_sacha_system,
)
from repro.fpga.device import DevicePart, get_part


@dataclass(frozen=True)
class SystemArtifacts:
    """One content-addressed bundle of shared build outputs."""

    fingerprint: str
    part: str
    system: SachaSystemDesign
    boot_image: bytes
    bootmem_bytes: int
    #: The full-coverage readback plan: every frame index, ascending.
    #: Sessions derive their nonce-dependent permutations from this
    #: shared tuple instead of re-enumerating the device geometry.
    readback_frames: Tuple[int, ...]

    def memory_bytes(self) -> int:
        """Approximate resident size, for the ``sacha_cache_bytes`` gauge."""
        system = self.system
        total = len(self.boot_image)
        template = system._golden_template
        if template is not None:
            total += template.frames_array().nbytes
        mask = system._combined_mask
        if mask is not None:
            total += 2 * mask.bits_array().nbytes  # bits + frozen keep bits
        for impl in (system.static_impl, system.app_impl):
            total += len(impl.frame_content) * system.device.frame_bytes
        return total


def resolve_plan(
    part: Union[str, DevicePart],
    app_cores: Optional[Sequence[CoreSpec]] = None,
    include_dynamic_puf: bool = False,
) -> SystemPlan:
    """The plan for a part name or part object (cheap; no build)."""
    device = get_part(part) if isinstance(part, str) else part
    return plan_sacha_system(
        device, app_cores=app_cores, include_dynamic_puf=include_dynamic_puf
    )


def artifacts_from_system(
    fingerprint: str, system: SachaSystemDesign
) -> SystemArtifacts:
    """Freeze a built system and wrap it as a shareable bundle."""
    system.freeze_artifacts()
    return SystemArtifacts(
        fingerprint=fingerprint,
        part=system.device.name,
        system=system,
        boot_image=system.boot_image(),
        bootmem_bytes=system.recommended_bootmem_bytes(),
        readback_frames=tuple(range(system.device.total_frames)),
    )


def build_artifacts(plan: SystemPlan, fingerprint: str = "") -> SystemArtifacts:
    """The cold path: implement the plan and freeze the outputs."""
    return artifacts_from_system(
        fingerprint or plan_fingerprint(plan), implement_plan(plan)
    )
