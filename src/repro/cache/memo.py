"""In-process memo tier: one build per fingerprint, shared by all workers.

Shard workers hitting the same part serialize on one lock and the first
arrival pays for the build; everyone else gets the already-frozen bundle.
Building *under* the lock is deliberate: it makes hit/miss counts a pure
function of the device list — one miss plus N-1 hits for N same-part
devices — regardless of worker count, which the determinism tests pin.
SACHA007 discipline: every write to guarded state happens with the lock
held.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.artifacts import SystemArtifacts


class ArtifactMemo:
    """Lock-guarded fingerprint -> :class:`SystemArtifacts` map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: Dict[str, SystemArtifacts] = {}

    def get(self, fingerprint: str) -> Optional[SystemArtifacts]:
        with self._lock:
            return self._entries.get(fingerprint)

    def get_or_build(
        self, fingerprint: str, build: Callable[[], SystemArtifacts]
    ) -> Tuple[SystemArtifacts, bool]:
        """The memoized bundle, plus whether this call was a hit.

        ``build`` runs with the lock held, so concurrent misses for one
        fingerprint collapse into a single build that every waiter then
        shares.
        """
        with self._lock:
            cached = self._entries.get(fingerprint)
            if cached is not None:
                return cached, True
            built = build()
            self._entries[fingerprint] = built
            return built, False

    def put(self, artifacts: SystemArtifacts) -> None:
        with self._lock:
            self._entries[artifacts.fingerprint] = artifacts

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def entries(self) -> List[SystemArtifacts]:
        """A stable snapshot of the current bundles (insertion order)."""
        with self._lock:
            return list(self._entries.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def total_bytes(self) -> int:
        """Resident size of all memoized bundles."""
        return sum(entry.memory_bytes() for entry in self.entries())
