"""ASCII table rendering in the layout of the paper's tables.

The benchmark harness prints these so a run's output can be compared
line by line with Tables 2–4 of the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width table with a separator under the header."""
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in materialized)
    return "\n".join(lines)


def render_comparison(
    headers: Sequence[str],
    paper_rows: Iterable[Sequence[object]],
    repro_rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Two tables side by side vertically: paper first, reproduction under."""
    parts = []
    if title:
        parts.append(f"== {title} ==")
    parts.append(render_table(headers, paper_rows, title="-- paper --"))
    parts.append(render_table(headers, repro_rows, title="-- reproduced --"))
    return "\n".join(parts)
