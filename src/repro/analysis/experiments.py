"""Experiment implementations (the E1–E11 index of DESIGN.md).

Each experiment regenerates one artifact of the paper's evaluation —
a table, the measured-duration comparison, the security matrix — and
returns both structured rows and a rendered report.  The benchmark
harness under ``benchmarks/`` is a thin wrapper over these functions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

from repro.analysis.tables import render_table
from repro.attacks.base import AttackOutcome
from repro.attacks.scenarios import run_all_scenarios
from repro.attacks.software import (
    chaves_core_tamper,
    drimer_kuhn_memory_tamper,
    pose_resident_malware,
    smart_key_exfiltration,
    swatt_redirection,
)
from repro.core.protocol import SessionOptions, run_attestation
from repro.core.provisioning import provision_device
from repro.core.verifier import SachaVerifier
from repro.design.sacha_design import SachaSystemDesign, build_sacha_system
from repro.fpga.device import SIM_MEDIUM, SIM_SMALL, XC6VLX240T, DevicePart
from repro.fpga.jtag import JtagPort
from repro.timing.model import (
    ActionCounts,
    ActionTimingModel,
    ProtocolAction,
    sacha_action_counts,
    theoretical_duration_ns,
)
from repro.timing.network import LAB_NETWORK, NetworkModel
from repro.timing.report import (
    PAPER_MEASURED_S,
    PAPER_TABLE4_COUNTS,
    PAPER_THEORETICAL_S,
    table3_rows,
    table4_report,
)
from repro.utils.rng import DeterministicRng
from repro.utils.units import format_time_ns

#: Table 2 of the paper, verbatim.
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "Entire FPGA": {"CLB": 18_840, "BRAM": 832, "ICAP": 1, "DCM": 12},
    "StatPart": {"CLB": 1_400, "BRAM": 72, "ICAP": 1, "DCM": 1},
    "MAC (+ FIFO)": {"CLB": 283, "BRAM": 8, "ICAP": 0, "DCM": 0},
    "DynPart": {"CLB": 17_440, "BRAM": 760, "ICAP": 0, "DCM": 11},
}


# ---------------------------------------------------------------------------
# E1 — Table 2
# ---------------------------------------------------------------------------


@dataclass
class Table2Result:
    rows: List[Tuple[str, Dict[str, int]]]
    matches_paper: bool
    rendered: str


def e1_table2(system: SachaSystemDesign = None) -> Table2Result:
    """Regenerate Table 2 from the implemented SACHa design."""
    system = system or build_sacha_system(XC6VLX240T)
    rows = system.table2_rows()
    matches = {name: row for name, row in rows} == PAPER_TABLE2
    table_rows = [
        [name, row["CLB"], row["BRAM"], row["ICAP"], row["DCM"]]
        for name, row in rows
    ]
    rendered = render_table(
        ["Component", "CLB", "BRAM", "ICAP", "DCM"],
        table_rows,
        title="Table 2: FPGA resources of the SACHa architecture",
    )
    rendered += (
        f"\nStatPart utilization: {system.static_utilization():.1%} "
        f"(paper: < 9 %)\nmatches paper: {matches}"
    )
    return Table2Result(rows=rows, matches_paper=matches, rendered=rendered)


# ---------------------------------------------------------------------------
# E2 — Table 3
# ---------------------------------------------------------------------------


@dataclass
class Table3Result:
    matches_paper: bool
    rendered: str


def e2_table3(device: DevicePart = XC6VLX240T) -> Table3Result:
    rows = table3_rows(device)
    table = render_table(
        ["Action", "Description", "Model (ns)", "Paper (ns)", "Match"],
        [
            [
                row.action.code,
                row.action.description,
                f"{row.model_ns:,.0f}",
                "-" if row.paper_ns is None else f"{row.paper_ns:,.0f}",
                "yes" if row.matches_paper else "NO",
            ]
            for row in rows
        ],
        title="Table 3: timing of the low-level protocol steps",
    )
    return Table3Result(
        matches_paper=all(row.matches_paper for row in rows), rendered=table
    )


# ---------------------------------------------------------------------------
# E3 — Table 4 (theoretical 1.443 s vs measured 28.5 s)
# ---------------------------------------------------------------------------


@dataclass
class Table4Result:
    theoretical_s: float
    measured_s: float
    theoretical_matches: bool
    measured_matches: bool
    rendered: str


def e3_table4(network: NetworkModel = LAB_NETWORK) -> Table4Result:
    report = table4_report(network=network)
    rows = [
        [
            row.action.code,
            f"{row.count:,}",
            format_time_ns(row.total_ns),
            f"{PAPER_TABLE4_COUNTS[row.action]:,}",
        ]
        for row in report.rows
    ]
    rendered = render_table(
        ["Action", "Count", "Total time", "Paper count"],
        rows,
        title="Table 4: total timing of the SACHa protocol",
    )
    theoretical_ok = abs(report.theoretical_s - PAPER_THEORETICAL_S) < 0.005
    measured_ok = abs(report.measured_s - PAPER_MEASURED_S) < 0.05
    rendered += (
        f"\nTheoretical duration: {report.theoretical_s:.3f} s "
        f"(paper: {PAPER_THEORETICAL_S} s, match: {theoretical_ok})"
        f"\nMeasured duration:    {report.measured_s:.3f} s "
        f"(paper: {PAPER_MEASURED_S} s, match: {measured_ok})"
    )
    return Table4Result(
        theoretical_s=report.theoretical_s,
        measured_s=report.measured_s,
        theoretical_matches=theoretical_ok,
        measured_matches=measured_ok,
        rendered=rendered,
    )


# ---------------------------------------------------------------------------
# E4 — JTAG reference point
# ---------------------------------------------------------------------------


@dataclass
class JtagResult:
    jtag_s: float
    sacha_measured_s: float
    rendered: str


def e4_jtag_reference() -> JtagResult:
    """§7.1: direct JTAG configuration (~28 s) vs SACHa measured (28.5 s)."""
    jtag = JtagPort()
    jtag_ns = jtag.configuration_time_ns(XC6VLX240T.configuration_bytes())
    sacha = table4_report()
    rendered = render_table(
        ["Method", "Duration", "Covers"],
        [
            ["JTAG full configuration", format_time_ns(jtag_ns), "configuration only"],
            [
                "SACHa protocol (lab network)",
                format_time_ns(sacha.measured_ns),
                "configuration + attestation",
            ],
        ],
        title="JTAG reference vs SACHa measured duration (Section 7.1)",
    )
    return JtagResult(
        jtag_s=jtag_ns / 1e9, sacha_measured_s=sacha.measured_s, rendered=rendered
    )


# ---------------------------------------------------------------------------
# E5 — security evaluation
# ---------------------------------------------------------------------------


@dataclass
class SecurityResult:
    outcomes: List[AttackOutcome]
    all_defenses_hold: bool
    rendered: str


def e5_security_evaluation(
    device: DevicePart = SIM_MEDIUM, seed: int = 7000
) -> SecurityResult:
    """Mount every Section-7.2 threat against fresh provisioned devices."""
    counter = [0]

    def make() -> tuple:
        counter[0] += 1
        return provision_device(
            build_sacha_system(device), f"prv-{counter[0]}", seed=seed + counter[0]
        )

    outcomes = run_all_scenarios(make, seed=seed)
    rendered = render_table(
        ["Threat", "Adversary", "Mounted", "Outcome"],
        [
            [
                outcome.attack_name,
                outcome.adversary_class,
                "yes" if outcome.mounted else "no (infeasible)",
                "defense holds" if outcome.defense_holds else "DEFENSE FAILED",
            ]
            for outcome in outcomes
        ],
        title=f"Security evaluation (Section 7.2) on {device.name}",
    )
    return SecurityResult(
        outcomes=outcomes,
        all_defenses_hold=all(outcome.defense_holds for outcome in outcomes),
        rendered=rendered,
    )


# ---------------------------------------------------------------------------
# E6 — protocol trace shape (Figure 9)
# ---------------------------------------------------------------------------


@dataclass
class TraceResult:
    kinds_in_order: List[str]
    counts: Dict[str, int]
    accepted: bool
    rendered: str


def e6_protocol_trace(device: DevicePart = SIM_SMALL, seed: int = 61) -> TraceResult:
    system = build_sacha_system(device)
    provisioned, record = provision_device(system, "prv-trace", seed=seed)
    verifier = SachaVerifier(record.system, record.mac_key, DeterministicRng(seed + 1))
    result = run_attestation(
        provisioned.prover,
        verifier,
        DeterministicRng(seed + 2),
        SessionOptions(record_trace=True),
    )
    trace = result.report.trace
    kinds = trace.kinds_in_order()
    counts = trace.counts_by_kind()
    rendered = (
        f"Figure 9 trace shape on {device.name}:\n"
        + trace.summarize()
        + f"\nphase order: {' -> '.join(kinds)}"
        + f"\ncounts: {counts}"
    )
    return TraceResult(
        kinds_in_order=kinds,
        counts=counts,
        accepted=result.report.accepted,
        rendered=rendered,
    )


# ---------------------------------------------------------------------------
# E7 — BRAM buffer size vs communication steps (Section 6.1 trade-off)
# ---------------------------------------------------------------------------


@dataclass
class BufferAblationRow:
    buffer_frames: int
    feasible: bool
    config_commands: int
    total_commands: int
    duration_s: float


@dataclass
class BufferAblationResult:
    rows: List[BufferAblationRow]
    rendered: str


def e7_buffer_ablation(
    device: DevicePart = XC6VLX240T, network: NetworkModel = LAB_NETWORK
) -> BufferAblationResult:
    """Trade BRAM buffer size against protocol round trips.

    The paper buffers exactly one frame per packet; a k-frame buffer cuts
    the configuration phase's command count by k at the cost of k frames
    of BRAM — legitimate "as long as the memory is not capable of storing
    the partial bitstream at once".
    """
    from repro.design.sacha_design import default_floorplan

    partition = default_floorplan(device)
    dynamic = partition.dynamic_frame_count
    total = device.total_frames
    model = ActionTimingModel(device)

    rows: List[BufferAblationRow] = []
    sizes = []
    buffer_frames = 1
    while buffer_frames < dynamic:
        sizes.append(buffer_frames)
        buffer_frames *= 4
    sizes.append(dynamic)  # the infeasible endpoint: the whole bitstream
    for buffer_frames in sizes:
        payload_bytes = buffer_frames * device.frame_bytes
        feasible = payload_bytes < partition.dynamic_bitstream_bytes()
        config_commands = math.ceil(dynamic / buffer_frames)
        counts = ActionCounts(config_steps=config_commands, readback_steps=total)
        # A k-frame config command serializes k frames (A1 scales) and
        # performs k ICAP writes (A2 scales); readback is unchanged.
        a1 = (
            (buffer_frames * device.frame_bytes + 45) * 8.0 * 3.0
        )
        a2 = buffer_frames * model.action_ns(ProtocolAction.A2)
        config_ns = config_commands * (a1 + a2)
        readback_ns = total * model.readback_step_ns()
        checksum_ns = model.checksum_step_ns() + model.action_ns(ProtocolAction.A5)
        duration_ns = (
            config_ns + readback_ns + checksum_ns + network.overhead_ns(counts)
        )
        rows.append(
            BufferAblationRow(
                buffer_frames=buffer_frames,
                feasible=feasible,
                config_commands=config_commands,
                total_commands=counts.total_commands(),
                duration_s=duration_ns / 1e9,
            )
        )

    rendered = render_table(
        ["Buffer (frames)", "Feasible", "Config cmds", "Total cmds", "Duration (s)"],
        [
            [
                row.buffer_frames,
                "yes" if row.feasible else "NO (stores whole bitstream)",
                f"{row.config_commands:,}",
                f"{row.total_commands:,}",
                f"{row.duration_s:.2f}",
            ]
            for row in rows
        ],
        title=(
            "E7: BRAM buffer size vs communication steps "
            f"({device.name}, {network.name} network)"
        ),
    )
    return BufferAblationResult(rows=rows, rendered=rendered)


# ---------------------------------------------------------------------------
# E8 — readback-order ablation
# ---------------------------------------------------------------------------


@dataclass
class OrderAblationRow:
    order_name: str
    steps: int
    tamper_detected: bool
    duration_ms: float


@dataclass
class OrderAblationResult:
    rows: List[OrderAblationRow]
    rendered: str


def e8_order_ablation(
    device: DevicePart = SIM_MEDIUM, seed: int = 81
) -> OrderAblationResult:
    """Every allowed readback order detects the same tamper; repeats only
    cost time."""
    from repro.core.orders import (
        OffsetOrder,
        PermutationOrder,
        RepeatedFramesOrder,
        SequentialOrder,
    )

    orders = [
        SequentialOrder(),
        OffsetOrder(device.total_frames // 3),
        PermutationOrder(DeterministicRng(seed)),
        RepeatedFramesOrder(DeterministicRng(seed + 1), repeat_fraction=0.25),
    ]
    rows: List[OrderAblationRow] = []
    for index, order in enumerate(orders):
        system = build_sacha_system(device)
        provisioned, record = provision_device(
            system, f"prv-order-{index}", seed=seed + 10 + index
        )
        # Tamper one static frame: every full-coverage order must see it.
        target = system.partition.static_frame_list()[0]
        provisioned.board.fpga.memory.flip_bit(target, 0, 11)
        verifier = SachaVerifier(
            record.system,
            record.mac_key,
            DeterministicRng(seed + 20 + index),
            order=order,
        )
        result = run_attestation(
            provisioned.prover, verifier, DeterministicRng(seed + 30 + index)
        )
        rows.append(
            OrderAblationRow(
                order_name=order.name,
                steps=len(result.plan),
                tamper_detected=not result.report.accepted,
                duration_ms=result.report.timing.total_ns / 1e6,
            )
        )
    rendered = render_table(
        ["Order", "Readback steps", "Tamper detected", "Duration (ms)"],
        [
            [
                row.order_name,
                row.steps,
                "yes" if row.tamper_detected else "NO",
                f"{row.duration_ms:.2f}",
            ]
            for row in rows
        ],
        title=f"E8: readback-order strategies on {device.name}",
    )
    return OrderAblationResult(rows=rows, rendered=rendered)


# ---------------------------------------------------------------------------
# E9 — baseline comparison matrix
# ---------------------------------------------------------------------------


@dataclass
class BaselineMatrixResult:
    outcomes: List[AttackOutcome]
    rendered: str


def e9_baseline_matrix(device: DevicePart = SIM_SMALL, seed: int = 91) -> BaselineMatrixResult:
    """Who detects what: SACHa vs the related-work schemes."""
    outcomes = [
        pose_resident_malware(seed=seed),
        swatt_redirection(networked=False, seed=seed + 1),
        swatt_redirection(networked=True, seed=seed + 2),
        smart_key_exfiltration(seed=seed + 7),
        chaves_core_tamper(device, seed=seed + 3),
        drimer_kuhn_memory_tamper(device, seed=seed + 4),
    ]
    # SACHa against the same class of attack (config-memory tamper):
    system = build_sacha_system(device)
    provisioned, record = provision_device(system, "prv-matrix", seed=seed + 5)
    from repro.attacks.scenarios import statpart_substitution_attack

    outcomes.append(statpart_substitution_attack(provisioned, record, seed=seed + 6))

    rendered = render_table(
        ["Scheme / attack", "Detected", "Why"],
        [
            [
                outcome.attack_name,
                "yes" if outcome.detected else "NO",
                outcome.notes[:72],
            ]
            for outcome in outcomes
        ],
        title="E9: baseline comparison under equivalent adversaries",
    )
    return BaselineMatrixResult(outcomes=outcomes, rendered=rendered)


# ---------------------------------------------------------------------------
# E11 — live-state attestation (Section 8 future work)
# ---------------------------------------------------------------------------


@dataclass
class StateAttestRow:
    mode: str
    app_running: bool
    accepted: bool


@dataclass
class StateAttestResult:
    rows: List[StateAttestRow]
    rendered: str


def e11_state_attestation(
    device: DevicePart = SIM_MEDIUM, seed: int = 111
) -> StateAttestResult:
    """Masked vs live-state attestation.

    With the mask (the paper's solution) a running application passes;
    without the mask (the future-work extension) attestation also covers
    the register state — a quiesced device passes, a running one fails
    against a static golden reference, which is exactly why the extension
    needs expected-state tracking.
    """
    rows: List[StateAttestRow] = []
    for attest_live_state in (False, True):
        for scramble in (False, True):
            system = build_sacha_system(device)
            provisioned, record = provision_device(
                system,
                f"prv-state-{attest_live_state}-{scramble}",
                seed=seed + (2 if attest_live_state else 0) + (1 if scramble else 0),
            )
            verifier = SachaVerifier(
                record.system,
                record.mac_key,
                DeterministicRng(seed + 10),
                attest_live_state=attest_live_state,
            )
            result = run_attestation(
                provisioned.prover,
                verifier,
                DeterministicRng(seed + 20),
                SessionOptions(scramble_registers=scramble),
            )
            rows.append(
                StateAttestRow(
                    mode="live-state" if attest_live_state else "masked",
                    app_running=scramble,
                    accepted=result.report.accepted,
                )
            )
    rendered = render_table(
        ["Mode", "Application running", "Attested"],
        [
            [row.mode, "yes" if row.app_running else "no (quiesced)",
             "yes" if row.accepted else "no"]
            for row in rows
        ],
        title="E11: masked vs live-state attestation (Section 8)",
    )
    return StateAttestResult(rows=rows, rendered=rendered)


# ---------------------------------------------------------------------------
# E12 — signature extension (Section 8)
# ---------------------------------------------------------------------------


@dataclass
class SignatureExtRow:
    mode: str
    authenticator_bytes: int
    honest_accepted: bool
    tamper_detected: bool


@dataclass
class SignatureExtResult:
    rows: List[SignatureExtRow]
    rendered: str


def e12_signature_extension(
    device: DevicePart = SIM_SMALL, seed: int = 121
) -> SignatureExtResult:
    """MAC mode vs the future-work signature mode, same verdicts.

    The signature mode removes the pre-shared-secret requirement at the
    cost of an 18x larger authenticator and a public-key operation.
    """
    from repro.core.signature_ext import SignatureVerifier, upgrade_to_signatures

    rows: List[SignatureExtRow] = []
    for mode in ("mac", "signature"):
        outcomes = {}
        for tampered in (False, True):
            system = build_sacha_system(device)
            provisioned, record = provision_device(
                system, f"e12-{mode}-{tampered}", seed=seed + (1 if tampered else 0)
            )
            if tampered:
                frame = system.partition.static_frame_list()[0]
                provisioned.board.fpga.memory.flip_bit(frame, 0, 2)
            if mode == "mac":
                prover = provisioned.prover
                verifier = SachaVerifier(
                    record.system, record.mac_key, DeterministicRng(seed + 2)
                )
            else:
                prover, public_key = upgrade_to_signatures(provisioned, record)
                verifier = SignatureVerifier(
                    record.system, public_key, DeterministicRng(seed + 2)
                )
            result = run_attestation(prover, verifier, DeterministicRng(seed + 3))
            outcomes[tampered] = result
        rows.append(
            SignatureExtRow(
                mode=mode,
                authenticator_bytes=len(outcomes[False].tag),
                honest_accepted=outcomes[False].report.accepted,
                tamper_detected=not outcomes[True].report.accepted,
            )
        )
    rendered = render_table(
        ["Mode", "Authenticator (bytes)", "Honest accepted", "Tamper detected"],
        [
            [
                row.mode,
                row.authenticator_bytes,
                "yes" if row.honest_accepted else "NO",
                "yes" if row.tamper_detected else "NO",
            ]
            for row in rows
        ],
        title="E12: MAC vs signature authenticator (Section 8 extension)",
    )
    return SignatureExtResult(rows=rows, rendered=rendered)


# ---------------------------------------------------------------------------
# E13 — swarm attestation scaling
# ---------------------------------------------------------------------------


@dataclass
class SwarmScalingRow:
    fleet_size: int
    sequential_ms: float
    parallel_ms: float
    all_healthy: bool


@dataclass
class SwarmScalingResult:
    rows: List[SwarmScalingRow]
    rendered: str


def e13_swarm_scaling(
    device: DevicePart = SIM_SMALL,
    sizes: Tuple[int, ...] = (1, 2, 4, 8),
    seed: int = 131,
) -> SwarmScalingResult:
    """Fleet sweeps: linear sequential scaling, flat parallel scaling."""
    from repro.core.swarm import SwarmAttestation, SwarmMember

    rows: List[SwarmScalingRow] = []
    for size in sizes:
        members = []
        for index in range(size):
            system = build_sacha_system(device)
            provisioned, record = provision_device(
                system, f"e13-{size}-{index}", seed=seed + 10 * size + index
            )
            verifier = SachaVerifier(
                record.system, record.mac_key, DeterministicRng(seed + index)
            )
            members.append(
                SwarmMember(f"e13-{size}-{index}", provisioned.prover, verifier)
            )
        report = SwarmAttestation(members).run(DeterministicRng(seed + size))
        rows.append(
            SwarmScalingRow(
                fleet_size=size,
                sequential_ms=report.sequential_ns / 1e6,
                parallel_ms=report.parallel_ns / 1e6,
                all_healthy=report.all_healthy,
            )
        )
    rendered = render_table(
        ["Fleet size", "Sequential (ms)", "Parallel (ms)", "All healthy"],
        [
            [
                row.fleet_size,
                f"{row.sequential_ms:.3f}",
                f"{row.parallel_ms:.3f}",
                "yes" if row.all_healthy else "NO",
            ]
            for row in rows
        ],
        title=f"E13: swarm attestation scaling on {device.name}",
    )
    return SwarmScalingResult(rows=rows, rendered=rendered)


# ---------------------------------------------------------------------------
# E14 — compression vs the bounded-memory assumption (reference [24])
# ---------------------------------------------------------------------------


@dataclass
class CompressionMarginRow:
    utilization: float
    compressed_bytes: int
    ratio: float
    fits_in_bram: bool


@dataclass
class CompressionMarginResult:
    rows: List[CompressionMarginRow]
    break_even_utilization: float
    rendered: str


def e14_compression_margin(
    device: DevicePart = XC6VLX240T,
    utilizations: Tuple[float, ...] = (0.05, 0.10, 0.25, 0.50, 1.00),
    seed: int = 141,
) -> CompressionMarginResult:
    """Could a *compressing* adversary hoard the DynPart image in BRAM?

    Used frames carry (incompressible) design content; unused frames are
    all-zero and collapse to a few bytes.  The sweep finds the DynPart
    utilization below which a compressed image would fit into BRAM —
    the quantitative margin behind the paper's reference to [24].
    """
    import numpy as np

    from repro.design.sacha_design import default_floorplan
    from repro.fpga.bram import BramInventory
    from repro.fpga.compression import compress_frames

    partition = default_floorplan(device)
    dynamic_frames = partition.dynamic_frame_count
    frame_bytes = device.frame_bytes
    bram_bytes = BramInventory(device).total_bytes

    generator = np.random.Generator(np.random.Philox(key=seed))
    rows: List[CompressionMarginRow] = []
    for utilization in utilizations:
        used = int(round(dynamic_frames * utilization))
        content = generator.integers(
            1, 256, size=(used, frame_bytes), dtype=np.uint8
        )
        frames = [content[index].tobytes() for index in range(used)]
        frames += [bytes(frame_bytes)] * (dynamic_frames - used)
        report = compress_frames(frames)
        rows.append(
            CompressionMarginRow(
                utilization=utilization,
                compressed_bytes=report.compressed_bytes,
                ratio=report.ratio,
                fits_in_bram=report.compressed_bytes <= bram_bytes,
            )
        )

    break_even = bram_bytes / (dynamic_frames * frame_bytes)
    rendered = render_table(
        ["DynPart utilization", "Compressed size", "Ratio", "Fits in BRAM?"],
        [
            [
                f"{row.utilization:.0%}",
                f"{row.compressed_bytes:,} B",
                f"{row.ratio:.2f}x",
                "YES (assumption at risk)" if row.fits_in_bram else "no",
            ]
            for row in rows
        ],
        title=(
            f"E14: compressed DynPart image vs BRAM ({bram_bytes:,} B) "
            f"on {device.name}"
        ),
    )
    rendered += (
        f"\nbreak-even utilization ~ {break_even:.1%}: above it the "
        "bounded-memory model holds even against a compressing adversary"
    )
    return CompressionMarginResult(
        rows=rows, break_even_utilization=break_even, rendered=rendered
    )


# ---------------------------------------------------------------------------
# E15 — mask placement: verifier-side vs prover-side (Section 6.1 note)
# ---------------------------------------------------------------------------


@dataclass
class MaskPlacementRow:
    variant: str
    accepted: bool
    localizes_tamper: bool
    readback_step_ns: float
    total_s_at_paper_scale: float


@dataclass
class MaskPlacementResult:
    rows: List[MaskPlacementRow]
    latency_ratio: float
    rendered: str


def e15_mask_placement(
    device: DevicePart = SIM_MEDIUM, seed: int = 151
) -> MaskPlacementResult:
    """Compare the paper's variant (frames sent back, Msk applied at the
    Vrf) against the alternative it sketches (Msk sent to the Prv, frames
    not returned) — "This would lead to a similar communication latency".
    """
    from repro.core.protocol import SessionOptions

    model = ActionTimingModel(XC6VLX240T)
    counts = sacha_action_counts(26_400, 28_488)
    config_total = 26_400 * model.config_step_ns()
    checksum_total = model.checksum_step_ns() + model.action_ns(ProtocolAction.A5)
    network_total = LAB_NETWORK.overhead_ns(counts)

    rows: List[MaskPlacementRow] = []
    for variant, mask_at_prover, step_ns in (
        ("Vrf-side mask (paper)", False, model.readback_step_ns()),
        ("Prv-side mask (alternative)", True, model.masked_readback_step_ns()),
    ):
        system = build_sacha_system(device)
        provisioned, record = provision_device(
            system, f"e15-{mask_at_prover}", seed=seed + (1 if mask_at_prover else 0)
        )
        target = system.partition.static_frame_list()[0]
        provisioned.board.fpga.memory.flip_bit(target, 0, 9)
        verifier = SachaVerifier(
            record.system, record.mac_key, DeterministicRng(seed + 2)
        )
        result = run_attestation(
            provisioned.prover,
            verifier,
            DeterministicRng(seed + 3),
            SessionOptions(mask_at_prover=mask_at_prover),
        )
        total_ns = (
            config_total + 28_488 * step_ns + checksum_total + network_total
        )
        rows.append(
            MaskPlacementRow(
                variant=variant,
                accepted=result.report.accepted,
                localizes_tamper=bool(result.report.mismatched_frames),
                readback_step_ns=step_ns,
                total_s_at_paper_scale=total_ns / 1e9,
            )
        )

    ratio = rows[1].total_s_at_paper_scale / rows[0].total_s_at_paper_scale
    rendered = render_table(
        ["Variant", "Tamper rejected", "Localizes frame", "Readback step",
         "Total @ paper scale"],
        [
            [
                row.variant,
                "yes" if not row.accepted else "NO",
                "yes" if row.localizes_tamper else "no",
                format_time_ns(row.readback_step_ns),
                f"{row.total_s_at_paper_scale:.2f} s",
            ]
            for row in rows
        ],
        title="E15: mask placement variants (Section 6.1)",
    )
    rendered += (
        f"\nlatency ratio alternative/paper = {ratio:.3f} — "
        "\"a similar communication latency\", as the paper notes; the "
        "alternative gives up per-frame tamper localization"
    )
    return MaskPlacementResult(rows=rows, latency_ratio=ratio, rendered=rendered)


# ---------------------------------------------------------------------------
# E17 — continuous monitoring: detection latency vs attestation period
# ---------------------------------------------------------------------------


@dataclass
class MonitorLatencyRow:
    period_ms: float
    detection_latency_ms: float
    runs_until_detection: int


@dataclass
class MonitorLatencyResult:
    rows: List[MonitorLatencyRow]
    paper_scale_min_period_s: float
    rendered: str


def e17_monitor_latency(
    device: DevicePart = SIM_MEDIUM,
    period_multipliers: Tuple[float, ...] = (2.0, 4.0, 8.0, 16.0),
    seed: int = 171,
) -> MonitorLatencyResult:
    """Sweep the monitoring period; detection latency tracks it.

    A tamper lands mid-interval; the next run catches it, so the latency
    is ~0.6 period + one run.  The floor under the period is one full
    protocol duration — 28.5 s at paper scale on the lab network, which
    bounds how fresh continuous attestation of an XC6VLX240T can be.
    """
    from repro.core.monitor import AttestationMonitor
    from repro.sim.events import Simulator

    # One run's duration at this scale (for period sizing).
    probe_system = build_sacha_system(device)
    probe, probe_record = provision_device(probe_system, "e17-probe", seed=seed)
    probe_verifier = SachaVerifier(
        probe_record.system, probe_record.mac_key, DeterministicRng(seed + 1)
    )
    run_ns = run_attestation(
        probe.prover, probe_verifier, DeterministicRng(seed + 2)
    ).report.timing.total_ns

    rows: List[MonitorLatencyRow] = []
    for multiplier in period_multipliers:
        period_ns = run_ns * multiplier
        system = build_sacha_system(device)
        provisioned, record = provision_device(
            system, f"e17-{multiplier}", seed=seed + int(multiplier)
        )
        verifier = SachaVerifier(
            record.system, record.mac_key, DeterministicRng(seed + 3)
        )
        simulator = Simulator()
        monitor = AttestationMonitor(
            simulator,
            provisioned.prover,
            verifier,
            period_ns=period_ns,
            rng=DeterministicRng(seed + 4),
        )
        target = system.partition.static_frame_list()[0]

        def tamper(provisioned=provisioned, monitor=monitor, target=target):
            provisioned.board.fpga.memory.flip_bit(target, 0, 7)
            monitor.record_tamper()

        simulator.schedule(1.4 * period_ns, tamper)
        monitor.start(runs=12)
        simulator.run()
        latency = monitor.history.detection_latency_ns
        rows.append(
            MonitorLatencyRow(
                period_ms=period_ns / 1e6,
                detection_latency_ms=(latency or 0.0) / 1e6,
                runs_until_detection=monitor.history.runs,
            )
        )

    paper_counts = sacha_action_counts(26_400, 28_488)
    paper_model = ActionTimingModel(XC6VLX240T)
    paper_min_period_s = (
        theoretical_duration_ns(paper_model, paper_counts)
        + LAB_NETWORK.overhead_ns(paper_counts)
    ) / 1e9

    rendered = render_table(
        ["Period (ms)", "Detection latency (ms)", "Runs until detection"],
        [
            [f"{row.period_ms:.1f}", f"{row.detection_latency_ms:.1f}",
             row.runs_until_detection]
            for row in rows
        ],
        title=f"E17: monitoring period vs detection latency ({device.name})",
    )
    rendered += (
        f"\nfloor under the period at paper scale: one protocol run = "
        f"{paper_min_period_s:.1f} s on the lab network"
    )
    return MonitorLatencyResult(
        rows=rows,
        paper_scale_min_period_s=paper_min_period_s,
        rendered=rendered,
    )


# ---------------------------------------------------------------------------
# E18 — full batching: driving the networked duration to the ICAP bound
# ---------------------------------------------------------------------------


@dataclass
class FullBatchingRow:
    batch_frames: int
    total_commands: int
    duration_s: float


@dataclass
class FullBatchingResult:
    rows: List[FullBatchingRow]
    theoretical_floor_s: float
    rendered: str


def e18_full_batching(
    device: DevicePart = XC6VLX240T,
    batch_sizes: Tuple[int, ...] = (1, 4, 16, 64, 256, 1024),
    network: NetworkModel = LAB_NETWORK,
) -> FullBatchingResult:
    """Batch *both* phases (config per E7, readback per the range
    command) and watch the 28.5 s networked duration collapse toward the
    ICAP-bound floor.

    Functional correctness of readback batching (detection + frame
    localization preserved) is exercised by
    ``tests/core/test_batched_readback.py``; this sweep is the analytic
    paper-scale projection.
    """
    import math

    from repro.design.sacha_design import default_floorplan

    partition = default_floorplan(device)
    dynamic = partition.dynamic_frame_count
    total = device.total_frames
    frame_bytes = device.frame_bytes
    model = ActionTimingModel(device)

    rows: List[FullBatchingRow] = []
    for batch in batch_sizes:
        config_commands = math.ceil(dynamic / batch)
        readback_commands = math.ceil(total / batch)
        counts = ActionCounts(
            config_steps=config_commands, readback_steps=readback_commands
        )
        config_ns = config_commands * (
            (min(batch, dynamic) * frame_bytes + 45) * 8.0 * 3.0
        ) + dynamic * model.action_ns(ProtocolAction.A2)
        readback_ns = (
            readback_commands * model.action_ns(ProtocolAction.A3)
            + total
            * (
                model.action_ns(ProtocolAction.A4)
                + model.action_ns(ProtocolAction.A6)
            )
            + readback_commands * 42 * 8.0
            + total * frame_bytes * 8.0
        )
        checksum_ns = model.checksum_step_ns() + model.action_ns(ProtocolAction.A5)
        duration_ns = (
            config_ns + readback_ns + checksum_ns + network.overhead_ns(counts)
        )
        rows.append(
            FullBatchingRow(
                batch_frames=batch,
                total_commands=counts.total_commands(),
                duration_s=duration_ns / 1e9,
            )
        )

    # The floor: every frame still crosses the ICAP and the wire once.
    floor_ns = (
        dynamic * model.action_ns(ProtocolAction.A2)
        + total
        * (model.action_ns(ProtocolAction.A4) + model.action_ns(ProtocolAction.A6))
        + (dynamic * frame_bytes * 24.0)
        + (total * frame_bytes * 8.0)
    )
    rendered = render_table(
        ["Batch (frames)", "Commands", "Duration (s)"],
        [
            [row.batch_frames, f"{row.total_commands:,}", f"{row.duration_s:.2f}"]
            for row in rows
        ],
        title=(
            f"E18: config + readback batching at paper scale "
            f"({device.name}, {network.name} network)"
        ),
    )
    rendered += (
        f"\nfloor (every frame through ICAP + wire once): "
        f"{floor_ns / 1e9:.2f} s — vs 28.50 s at the paper's "
        "one-frame-per-packet operating point"
    )
    return FullBatchingResult(
        rows=rows, theoretical_floor_s=floor_ns / 1e9, rendered=rendered
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "E1-table2": e1_table2,
    "E2-table3": e2_table3,
    "E3-table4": e3_table4,
    "E4-jtag": e4_jtag_reference,
    "E5-security": e5_security_evaluation,
    "E6-trace": e6_protocol_trace,
    "E7-buffer": e7_buffer_ablation,
    "E8-orders": e8_order_ablation,
    "E9-baselines": e9_baseline_matrix,
    "E11-state": e11_state_attestation,
    "E12-signature": e12_signature_extension,
    "E13-swarm": e13_swarm_scaling,
    "E14-compression": e14_compression_margin,
    "E15-mask-placement": e15_mask_placement,
    "E17-monitoring": e17_monitor_latency,
    "E18-batching": e18_full_batching,
}
