"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``attest [--device PART] [--seed N] [--tamper]`` — provision a device,
  run one attestation, print the report;
* ``tables`` — regenerate Tables 2, 3 and 4 plus the JTAG reference;
* ``security [--device PART]`` — run the Section-7.2 threat sweep;
* ``trace [--device PART]`` — print the Figure-9 protocol trace;
* ``experiment <ID>`` — run one registered experiment (E1-table2, ...);
* ``list`` — list devices and experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    EXPERIMENTS,
    e1_table2,
    e2_table3,
    e3_table4,
    e4_jtag_reference,
    e5_security_evaluation,
    e6_protocol_trace,
)
from repro.core.protocol import run_attestation
from repro.core.provisioning import provision_device
from repro.core.verifier import SachaVerifier
from repro.design.sacha_design import build_sacha_system
from repro.fpga.device import catalog, get_part
from repro.utils.rng import DeterministicRng


def _add_device_option(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--device",
        default=default,
        choices=list(catalog()),
        help=f"device part (default: {default})",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SACHa: self-attestation of configurable hardware",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attest = commands.add_parser("attest", help="run one attestation")
    _add_device_option(attest, "SIM-MEDIUM")
    attest.add_argument("--seed", type=int, default=2019)
    attest.add_argument(
        "--tamper",
        action="store_true",
        help="flip one static-frame bit before attesting",
    )

    commands.add_parser("tables", help="regenerate Tables 2-4 + JTAG reference")

    security = commands.add_parser("security", help="Section-7.2 threat sweep")
    _add_device_option(security, "SIM-MEDIUM")

    trace = commands.add_parser("trace", help="Figure-9 protocol trace")
    _add_device_option(trace, "SIM-SMALL")

    experiment = commands.add_parser("experiment", help="run one experiment")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))

    commands.add_parser("list", help="list devices and experiments")
    return parser


def _command_attest(args: argparse.Namespace) -> int:
    device = get_part(args.device)
    system = build_sacha_system(device)
    provisioned, record = provision_device(system, "cli-board", seed=args.seed)
    if args.tamper:
        frame = system.partition.static_frame_list()[0]
        provisioned.board.fpga.memory.flip_bit(frame, 0, 0)
        print(f"(tampered static frame {frame})")
    verifier = SachaVerifier(
        record.system, record.mac_key, DeterministicRng(args.seed + 1)
    )
    result = run_attestation(
        provisioned.prover, verifier, DeterministicRng(args.seed + 2)
    )
    print(result.report.explain())
    return 0 if result.report.accepted == (not args.tamper) else 1


def _command_tables(_: argparse.Namespace) -> int:
    ok = True
    table2 = e1_table2()
    table3 = e2_table3()
    table4 = e3_table4()
    for rendered in (table2.rendered, table3.rendered, table4.rendered,
                     e4_jtag_reference().rendered):
        print(rendered)
        print()
    ok = table2.matches_paper and table3.matches_paper
    ok = ok and table4.theoretical_matches and table4.measured_matches
    return 0 if ok else 1


def _command_security(args: argparse.Namespace) -> int:
    result = e5_security_evaluation(get_part(args.device))
    print(result.rendered)
    print()
    for outcome in result.outcomes:
        print("  *", outcome.explain())
    return 0 if result.all_defenses_hold else 1


def _command_trace(args: argparse.Namespace) -> int:
    result = e6_protocol_trace(get_part(args.device))
    print(result.rendered)
    return 0 if result.accepted else 1


def _command_experiment(args: argparse.Namespace) -> int:
    result = EXPERIMENTS[args.id]()
    rendered = getattr(result, "rendered", None)
    print(rendered if rendered is not None else result)
    return 0


def _command_list(_: argparse.Namespace) -> int:
    print("devices:")
    for name in catalog():
        part = get_part(name)
        print(
            f"  {name}: {part.total_frames} frames x {part.words_per_frame} "
            f"words, {part.clb_count} CLB, {part.bram_count} BRAM"
        )
    print("experiments:")
    for identifier in sorted(EXPERIMENTS):
        print(f"  {identifier}")
    return 0


_HANDLERS = {
    "attest": _command_attest,
    "tables": _command_tables,
    "security": _command_security,
    "trace": _command_trace,
    "experiment": _command_experiment,
    "list": _command_list,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
