"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``attest [--device PART] [--seed N] [--tamper]`` — provision a device,
  run one attestation, print the report; with ``--loss`` /
  ``--fault-profile`` the run goes over the simulated network with fault
  injection, ARQ (``--arq-backoff``) and session retry
  (``--max-attempts``), and exits 2 on an ``inconclusive`` verdict;
* ``tables`` — regenerate Tables 2, 3 and 4 plus the JTAG reference;
* ``security [--device PART]`` — run the Section-7.2 threat sweep;
* ``trace [--device PART]`` — print the Figure-9 protocol trace;
* ``experiment <ID>`` — run one registered experiment (E1-table2, ...);
* ``metrics [--device PART]`` — observability demo: attest with metrics,
  spans and structured logging enabled, print the collected evidence;
* ``lint [PATHS] [--format json] [--write-baseline]`` — run sachalint,
  the domain-aware static analysis pass (see docs/STATIC_ANALYSIS.md);
* ``obs report|flame|health`` — offline telemetry analysis: merge span
  dumps into a stitched profile report, export a collapsed-stack
  flamegraph, or evaluate SLO health rules over registry snapshots;
* ``cache stats|clear`` — inspect or clear the content-addressed
  artifact cache (see the global ``--cache-dir`` / ``--artifact-cache``
  performance flags);
* ``list`` — list devices and experiments.

``attest``, ``trace``, ``experiment`` and ``metrics`` take observability
options: ``--metrics-out FILE`` (Prometheus text exposition),
``--spans-out FILE`` (JSON-lines span log), ``--snapshot-out FILE``
(lossless JSON registry snapshot for ``obs health`` and offline
merging), ``--log-json`` (structured JSON logs plus the span log on
stderr) and ``--log-level``.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.experiments import (
    EXPERIMENTS,
    e1_table2,
    e2_table3,
    e3_table4,
    e4_jtag_reference,
    e5_security_evaluation,
    e6_protocol_trace,
)
from repro.cache import get_artifact_cache
from repro.core.protocol import SessionOptions, run_attestation
from repro.core.provisioning import provision_device
from repro.core.verifier import SachaVerifier
from repro.fpga.device import catalog, get_part
from repro.obs import log as obs_log
from repro.obs.exporters import to_prometheus, write_jsonl, write_prometheus
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.obs.spans import render_span_tree
from repro.utils.rng import DeterministicRng


def _add_device_option(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--device",
        default=default,
        choices=list(catalog()),
        help=f"device part (default: {default})",
    )


def _add_obs_options(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group("observability")
    group.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="write the run's metrics to FILE in Prometheus text format",
    )
    group.add_argument(
        "--spans-out",
        metavar="FILE",
        default=None,
        help="write the structured span log to FILE as JSON lines",
    )
    group.add_argument(
        "--snapshot-out",
        metavar="FILE",
        default=None,
        help="write a lossless JSON registry snapshot to FILE "
        "(consumed by 'repro obs health' and offline merging)",
    )
    group.add_argument(
        "--log-json",
        action="store_true",
        help="structured logs (and the span log) as JSON lines on stderr",
    )
    group.add_argument(
        "--log-level",
        default="info",
        choices=["debug", "info", "warning", "error"],
        help="minimum structured log level (default: info)",
    )
    group.add_argument(
        "--span-frames",
        action="store_true",
        help="emit one span per readback frame (large logs on big parts)",
    )


def _obs_requested(args: argparse.Namespace) -> bool:
    return bool(
        getattr(args, "metrics_out", None)
        or getattr(args, "spans_out", None)
        or getattr(args, "snapshot_out", None)
        or getattr(args, "log_json", False)
        or args.command == "metrics"
    )


def _setup_obs(args: argparse.Namespace):
    """Install an enabled registry + log handler when any obs flag is set.

    Returns ``(registry, previous_registry)`` or ``None``.
    """
    if not _obs_requested(args):
        return None
    obs_log.configure(
        level=getattr(logging, args.log_level.upper()),
        json_output=args.log_json,
    )
    registry = MetricsRegistry(enabled=True)
    return registry, set_registry(registry)


def _finish_obs(args: argparse.Namespace, scope) -> None:
    """Export collected evidence, then restore the previous registry."""
    if scope is None:
        return
    registry, previous = scope
    try:
        if args.metrics_out:
            write_prometheus(registry, args.metrics_out)
        if args.spans_out:
            write_jsonl(
                (record.to_dict() for record in registry.spans), args.spans_out
            )
        if getattr(args, "snapshot_out", None):
            import json

            from repro.obs.exporters import registry_snapshot

            Path(args.snapshot_out).write_text(
                json.dumps(registry_snapshot(registry), sort_keys=True)
                + "\n",
                encoding="utf-8",
            )
        if args.log_json and not args.spans_out:
            span_logger = obs_log.get_logger("repro.obs.spans")
            for record in registry.spans:
                fields = record.to_dict()
                fields.pop("record", None)
                span_logger.info("span", **fields)
    finally:
        set_registry(previous)
        obs_log.reset()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SACHa: self-attestation of configurable hardware",
    )
    perf = parser.add_argument_group("performance (before the subcommand)")
    perf.add_argument(
        "--aes-backend",
        default=None,
        choices=["auto", "reference", "table", "native"],
        help="AES implementation for the MAC chain "
        "(default: REPRO_AES_BACKEND or auto)",
    )
    perf.add_argument(
        "--swarm-workers",
        type=int,
        default=None,
        metavar="N",
        help="thread-pool size for swarm sweeps; 0/1 = sequential "
        "(default: REPRO_SWARM_WORKERS)",
    )
    perf.add_argument(
        "--arq-window",
        type=int,
        default=None,
        metavar="N",
        help="ARQ sliding-window size for networked runs; 1 = stop-and-wait "
        "(default: REPRO_ARQ_WINDOW or 8)",
    )
    perf.add_argument(
        "--readback-batch-frames",
        type=int,
        default=None,
        metavar="N",
        help="readback frames per batched command; 1 = per-frame lockstep "
        "(default: REPRO_READBACK_BATCH_FRAMES or 256)",
    )
    perf.add_argument(
        "--arq-adaptive",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="AIMD window adaptation: --arq-window becomes the ceiling of "
        "a congestion window that halves on timeouts and regrows on clean "
        "ACKs (default: REPRO_ARQ_ADAPTIVE or on)",
    )
    perf.add_argument(
        "--artifact-cache",
        action=argparse.BooleanOptionalAction,
        default=None,
        help="memoize built system artifacts so same-part devices share "
        "one build (default: REPRO_ARTIFACT_CACHE or on)",
    )
    perf.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist built artifacts under DIR so later processes "
        "warm-start (default: REPRO_CACHE_DIR or off)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attest = commands.add_parser("attest", help="run one attestation")
    _add_device_option(attest, "SIM-MEDIUM")
    attest.add_argument("--seed", type=int, default=2019)
    attest.add_argument(
        "--tamper",
        action="store_true",
        help="flip one static-frame bit before attesting",
    )
    resilience = attest.add_argument_group(
        "resilience (runs the protocol over the simulated network)"
    )
    resilience.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="P",
        help="per-frame loss probability on the channel (implies networked run)",
    )
    resilience.add_argument(
        "--fault-profile",
        default=None,
        metavar="SPEC",
        help="named profile (clean/lossy/noisy/harsh) or key=value spec, "
        'e.g. "loss=0.05,corrupt=0.02,dup=0.02,outage=5ms+50ms"',
    )
    resilience.add_argument(
        "--arq-backoff",
        type=float,
        default=2.0,
        metavar="FACTOR",
        help="ARQ retransmission backoff factor (default: 2.0)",
    )
    resilience.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="session-level retries (fresh nonce) before giving up (default: 3)",
    )
    resilience.add_argument(
        "--raw-transport",
        action="store_true",
        help="run without the ARQ layer (reliable=False): the resequencer "
        "restores exactly-once in-order delivery for pipelined runs, but "
        "lost frames fail the attempt instead of retransmitting",
    )
    _add_obs_options(attest)

    commands.add_parser("tables", help="regenerate Tables 2-4 + JTAG reference")

    security = commands.add_parser("security", help="Section-7.2 threat sweep")
    _add_device_option(security, "SIM-MEDIUM")

    trace = commands.add_parser("trace", help="Figure-9 protocol trace")
    _add_device_option(trace, "SIM-SMALL")
    _add_obs_options(trace)

    experiment = commands.add_parser("experiment", help="run one experiment")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    _add_obs_options(experiment)

    metrics = commands.add_parser(
        "metrics",
        help="observability demo: attest honest + tampered, print evidence",
    )
    _add_device_option(metrics, "SIM-SMALL")
    metrics.add_argument("--seed", type=int, default=2019)
    _add_obs_options(metrics)

    lint = commands.add_parser(
        "lint",
        help="run sachalint, the domain-aware static analysis pass",
    )
    from repro.lint import cli as lint_cli

    lint_cli.add_arguments(lint)

    fleet = commands.add_parser(
        "fleet",
        help="fleet control plane: persistent registry + sharded sweeps",
    )
    from repro.fleet import cli as fleet_cli

    fleet_cli.add_arguments(fleet)

    cache = commands.add_parser(
        "cache",
        help="artifact cache ops: per-tier stats and clearing",
    )
    from repro.cache import cli as cache_cli

    cache_cli.add_arguments(cache)

    obs = commands.add_parser(
        "obs",
        help="offline telemetry analysis: span profiling and SLO health",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_commands.add_parser(
        "report",
        help="merge span dumps (JSONL) into one stitched profile report",
    )
    report.add_argument(
        "files", nargs="+", metavar="SPANS_JSONL", help="span dump files"
    )
    flame = obs_commands.add_parser(
        "flame",
        help="export merged span dumps as collapsed stacks "
        "(flamegraph.pl / speedscope)",
    )
    flame.add_argument(
        "files", nargs="+", metavar="SPANS_JSONL", help="span dump files"
    )
    flame.add_argument(
        "-o",
        "--out",
        default=None,
        metavar="FILE",
        help="write collapsed stacks to FILE (default: stdout)",
    )
    health = obs_commands.add_parser(
        "health",
        help="evaluate SLO rules over registry snapshots "
        "(exit 0 OK, 1 WARN, 2 CRIT)",
    )
    health.add_argument(
        "snapshots",
        nargs="+",
        metavar="SNAPSHOT_JSON",
        help="registry snapshot files (several merge into one fleet view)",
    )

    commands.add_parser("list", help="list devices and experiments")
    return parser


def _command_attest(args: argparse.Namespace) -> int:
    system = get_artifact_cache().get_system(args.device)
    provisioned, record = provision_device(system, "cli-board", seed=args.seed)
    if args.tamper:
        frame = system.partition.static_frame_list()[0]
        provisioned.board.fpga.memory.flip_bit(frame, 0, 0)
        print(f"(tampered static frame {frame})")
    verifier = SachaVerifier(
        record.system, record.mac_key, DeterministicRng(args.seed + 1)
    )
    if args.loss is not None or args.fault_profile is not None:
        return _attest_over_network(args, provisioned, verifier)
    result = run_attestation(
        provisioned.prover,
        verifier,
        DeterministicRng(args.seed + 2),
        SessionOptions(span_frames=args.span_frames),
    )
    print(result.report.explain())
    return 0 if result.report.accepted == (not args.tamper) else 1


def _attest_over_network(args, provisioned, verifier) -> int:
    """Attest through the simulated channel under an injected fault profile."""
    import dataclasses

    from repro.core.net_session import NetworkAttestationSession
    from repro.net.arq import ArqTuning
    from repro.net.channel import Channel, LatencyModel
    from repro.net.faults import FaultModel, FaultProfile
    from repro.sim.events import Simulator

    profile = (
        FaultProfile.parse(args.fault_profile)
        if args.fault_profile
        else FaultProfile()
    )
    if args.loss is not None:
        profile = dataclasses.replace(profile, loss_probability=args.loss)
    rng = DeterministicRng(args.seed + 3)
    fault_model = (
        FaultModel(profile, rng.fork("faults")) if profile.is_active else None
    )
    simulator = Simulator()
    channel = Channel(
        simulator, LatencyModel(base_ns=5_000.0), fault_model=fault_model
    )
    from repro.perf import get_config

    # An explicit tuning is the session's single source of truth for the
    # window, so thread the config through here — it already carries any
    # --arq-window / --arq-adaptive / REPRO_ARQ_* override.
    session = NetworkAttestationSession(
        simulator,
        channel,
        provisioned.prover,
        verifier,
        rng.fork("session"),
        reliable=not args.raw_transport,
        arq_tuning=ArqTuning(
            backoff_factor=args.arq_backoff,
            window=get_config().arq_window,
            adaptive=get_config().arq_adaptive,
        ),
        max_attempts=args.max_attempts,
    )
    result = session.run()
    print(result.report.explain())
    if fault_model is not None:
        injected = ", ".join(
            f"{kind}={count}"
            for kind, count in fault_model.counters.as_dict().items()
            if count
        )
        print(f"faults: {injected or 'none'}")
    print(
        f"attempts: {result.attempts}, "
        f"retransmissions: {session.total_retransmissions}"
    )
    if result.report.inconclusive:
        return 2
    return 0 if result.report.accepted == (not args.tamper) else 1


def _command_tables(_: argparse.Namespace) -> int:
    ok = True
    table2 = e1_table2()
    table3 = e2_table3()
    table4 = e3_table4()
    for rendered in (table2.rendered, table3.rendered, table4.rendered,
                     e4_jtag_reference().rendered):
        print(rendered)
        print()
    ok = table2.matches_paper and table3.matches_paper
    ok = ok and table4.theoretical_matches and table4.measured_matches
    return 0 if ok else 1


def _command_security(args: argparse.Namespace) -> int:
    result = e5_security_evaluation(get_part(args.device))
    print(result.rendered)
    print()
    for outcome in result.outcomes:
        print("  *", outcome.explain())
    return 0 if result.all_defenses_hold else 1


def _command_trace(args: argparse.Namespace) -> int:
    result = e6_protocol_trace(get_part(args.device))
    print(result.rendered)
    return 0 if result.accepted else 1


def _command_experiment(args: argparse.Namespace) -> int:
    result = EXPERIMENTS[args.id]()
    rendered = getattr(result, "rendered", None)
    print(rendered if rendered is not None else result)
    return 0


def _command_metrics(args: argparse.Namespace) -> int:
    """Observability demo: one honest + one tampered run, evidence printed.

    The honest run populates the accept counters and the span tree; the
    tampered run exercises the reject path, so the exposition shows both
    ``result`` label values.
    """
    registry = get_registry()  # enabled by _setup_obs for this command
    options = SessionOptions(record_trace=True, span_frames=args.span_frames)
    accepted = True
    for tamper in (False, True):
        system = get_artifact_cache().get_system(args.device)
        provisioned, record = provision_device(
            system, f"metrics-demo-{int(tamper)}", seed=args.seed + int(tamper)
        )
        if tamper:
            frame = system.partition.static_frame_list()[0]
            provisioned.board.fpga.memory.flip_bit(frame, 0, 0)
        verifier = SachaVerifier(
            record.system, record.mac_key, DeterministicRng(args.seed + 10)
        )
        result = run_attestation(
            provisioned.prover,
            verifier,
            DeterministicRng(args.seed + 20),
            options,
        )
        accepted = accepted and (result.report.accepted == (not tamper))
    print("== Prometheus exposition ==")
    print(to_prometheus(registry), end="")
    print("== span tree ==")
    print(render_span_tree(registry.spans))
    print("== trace (JSONL, first 5 lines) ==")
    jsonl = result.report.trace.to_jsonl().splitlines()
    print("\n".join(jsonl[:5]))
    return 0 if accepted else 1


def _command_obs(args: argparse.Namespace) -> int:
    """Offline telemetry analysis over span dumps and snapshots."""
    import json

    from repro.obs.aggregate import merge_snapshots
    from repro.obs.exporters import registry_snapshot
    from repro.obs.health import evaluate_health, health_exit_code
    from repro.obs.profile import render_report, to_collapsed_stacks
    from repro.obs.trace import load_span_dump, merge_span_dumps

    if args.obs_command in ("report", "flame"):
        spans = merge_span_dumps(
            [load_span_dump(path) for path in args.files]
        )
        if args.obs_command == "report":
            print(render_report(spans), end="")
            return 0
        collapsed = to_collapsed_stacks(spans)
        if args.out:
            Path(args.out).write_text(collapsed, encoding="utf-8")
            print(
                f"wrote {len(collapsed.splitlines())} stacks to {args.out}"
            )
        else:
            print(collapsed, end="")
        return 0
    snapshots = [
        json.loads(Path(path).read_text(encoding="utf-8"))
        for path in args.snapshots
    ]
    snapshot = (
        snapshots[0]
        if len(snapshots) == 1
        else registry_snapshot(merge_snapshots(snapshots))
    )
    report = evaluate_health(snapshot)
    print(report.explain())
    return health_exit_code(report)


def _command_lint(args: argparse.Namespace) -> int:
    from repro.lint import cli as lint_cli

    return lint_cli.run(args)


def _command_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import cli as fleet_cli

    return fleet_cli.run(args)


def _command_cache(args: argparse.Namespace) -> int:
    from repro.cache import cli as cache_cli

    return cache_cli.run(args)


def _command_list(_: argparse.Namespace) -> int:
    print("devices:")
    for name in catalog():
        part = get_part(name)
        print(
            f"  {name}: {part.total_frames} frames x {part.words_per_frame} "
            f"words, {part.clb_count} CLB, {part.bram_count} BRAM"
        )
    print("experiments:")
    for identifier in sorted(EXPERIMENTS):
        print(f"  {identifier}")
    return 0


_HANDLERS = {
    "attest": _command_attest,
    "tables": _command_tables,
    "security": _command_security,
    "trace": _command_trace,
    "experiment": _command_experiment,
    "metrics": _command_metrics,
    "lint": _command_lint,
    "fleet": _command_fleet,
    "cache": _command_cache,
    "obs": _command_obs,
    "list": _command_list,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    from repro.errors import ReproError
    from repro.perf import configured

    overrides = {}
    if args.aes_backend is not None:
        overrides["aes_backend"] = args.aes_backend
    if args.swarm_workers is not None:
        overrides["swarm_workers"] = args.swarm_workers
    if args.arq_window is not None:
        overrides["arq_window"] = args.arq_window
    if args.arq_adaptive is not None:
        overrides["arq_adaptive"] = args.arq_adaptive
    if args.readback_batch_frames is not None:
        overrides["readback_batch_frames"] = args.readback_batch_frames
    if args.artifact_cache is not None:
        overrides["artifact_cache"] = args.artifact_cache
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    try:
        with configured(**overrides):
            scope = _setup_obs(args)
            try:
                status = _HANDLERS[args.command](args)
            finally:
                try:
                    _finish_obs(args, scope)
                except OSError as exc:
                    print(
                        f"repro: error writing observability output: {exc}",
                        file=sys.stderr,
                    )
                    return 1
    except ReproError as exc:
        print(f"repro: {exc}", file=sys.stderr)
        return 1
    return status


if __name__ == "__main__":
    sys.exit(main())
