"""The security-evaluation scenarios of Section 7.2.

Five threats, each mounted for real against a provisioned device:

1. malicious hardware module in the **DynPart**;
2. malicious hardware module in the **StatPart**;
3. **impersonation** of the prover (clone without the key);
4. an external **proxy** device computing the MAC (pin tampering);
5. **replay** of a previous attestation (incl. nonce suppression).

Plus the bounded-memory hoarding attack that underpins scenario 1.
Every scenario returns an :class:`AttackOutcome`; the security benchmark
(E5) tabulates them.
"""

from __future__ import annotations

from typing import List

from repro.attacks.base import AttackOutcome
from repro.attacks.provers import HoardingProver, SkippingProver, WrongKeyProver
from repro.core.prover import RegisterKey, SachaProver
from repro.core.protocol import SessionOptions, run_attestation
from repro.core.provisioning import ProvisionedDevice, VerifierRecord
from repro.core.verifier import SachaVerifier
from repro.design.cores import MALICIOUS_TAP
from repro.design.netlist import design_from_cores
from repro.design.placer import place
from repro.errors import PlacementError
from repro.fpga.bram import BramInventory
from repro.fpga.fabric import Fabric
from repro.utils.rng import DeterministicRng


def _fresh_verifier(record: VerifierRecord, seed: int) -> SachaVerifier:
    return SachaVerifier(record.system, record.mac_key, DeterministicRng(seed))


def dynpart_malware_attack(
    provisioned: ProvisionedDevice,
    record: VerifierRecord,
    seed: int = 1001,
    resist_overwrite: bool = False,
) -> AttackOutcome:
    """Scenario 1: a malicious module in the dynamic partition.

    The adversary writes malicious configuration into DynMem frames.  If
    it lets the protocol run (``resist_overwrite=False``), the verifier's
    configuration phase *overwrites* the malware — the attack is
    neutralized by construction and attestation passes on a now-clean
    device.  If the malware resists being overwritten (a skipping
    prover), the stale frames show up in the readback and the run is
    rejected.
    """
    system = record.system
    rng = DeterministicRng(seed)
    target_frames = system.partition.application_frame_list()[:3]
    for frame_index in target_frames:
        provisioned.board.fpga.memory.write_frame(
            frame_index, rng.randbytes(system.device.frame_bytes)
        )

    if resist_overwrite:
        prover: SachaProver = SkippingProver(
            provisioned.board,
            provisioned.key_provider,
            protected_frames=target_frames,
        )
    else:
        prover = provisioned.prover

    result = run_attestation(prover, _fresh_verifier(record, seed + 1), rng)
    if resist_overwrite:
        detected = not result.report.accepted
        notes = (
            f"malware kept {len(target_frames)} frames; verifier flagged "
            f"{len(result.report.mismatched_frames)} mismatching frame(s)"
        )
    else:
        clean = result.report.accepted
        detected = clean  # neutralized: the malware no longer exists
        notes = (
            "malware was overwritten by the configuration phase; "
            "attestation passed on the clean device"
            if clean
            else "unexpected rejection of the overwritten device"
        )
    return AttackOutcome(
        attack_name=(
            "DynPart malware (resisting overwrite)"
            if resist_overwrite
            else "DynPart malware (overwritten)"
        ),
        adversary_class="remote",
        mounted=True,
        detected=detected,
        notes=notes,
    )


def statpart_insertion_attack(
    provisioned: ProvisionedDevice, record: VerifierRecord, seed: int = 2001
) -> AttackOutcome:
    """Scenario 2a: add a malicious module to the StatPart.

    The static region is sized to exactly fit the static design; there is
    no spare capacity for additional logic, so the insertion fails at
    implementation time.
    """
    system = record.system
    malicious_design = design_from_cores(
        "static_plus_malware",
        [instance.core for instance in system.static_impl.design] + [MALICIOUS_TAP],
    )
    try:
        place(malicious_design, system.device, system.partition.static_frame_list())
    except PlacementError as error:
        return AttackOutcome(
            attack_name="StatPart malware insertion",
            adversary_class="local",
            mounted=False,
            detected=True,
            notes=f"no room in the static region: {error}",
        )
    return AttackOutcome(
        attack_name="StatPart malware insertion",
        adversary_class="local",
        mounted=True,
        detected=False,
        notes="malicious module fit into the static region (unexpected)",
    )


def statpart_substitution_attack(
    provisioned: ProvisionedDevice, record: VerifierRecord, seed: int = 2101
) -> AttackOutcome:
    """Scenario 2b: replace static-partition configuration in place.

    Even without adding logic, rewriting StatMem content (e.g. trojaning
    the MAC core) changes frames the protocol never re-writes — and the
    full-memory readback covers StatMem too, so the golden comparison
    catches it.
    """
    system = record.system
    rng = DeterministicRng(seed)
    static_frames = system.partition.static_frame_list()
    target = static_frames[len(static_frames) // 2]
    provisioned.board.fpga.memory.write_frame(
        target, rng.randbytes(system.device.frame_bytes)
    )
    result = run_attestation(provisioned.prover, _fresh_verifier(record, seed + 1), rng)
    return AttackOutcome(
        attack_name="StatPart configuration substitution",
        adversary_class="remote",
        mounted=True,
        detected=not result.report.accepted,
        notes=(
            f"tampered static frame {target}; mismatches: "
            f"{result.report.mismatched_frames[:5]}"
        ),
    )


def impersonation_attack(
    provisioned: ProvisionedDevice, record: VerifierRecord, seed: int = 3001
) -> AttackOutcome:
    """Scenario 3: a clone without the PUF-derived key.

    The clone has an identical board and configuration but a different
    silicon fingerprint, so its MAC key differs and H_Prv fails.
    """
    rng = DeterministicRng(seed)
    clone_key = rng.fork("clone-key").randbytes(16)
    clone_prover = WrongKeyProver(
        provisioned.board, RegisterKey(clone_key), device_id="clone"
    )
    result = run_attestation(clone_prover, _fresh_verifier(record, seed + 1), rng)
    return AttackOutcome(
        attack_name="Prover impersonation (clone without key)",
        adversary_class="local",
        mounted=True,
        detected=not result.report.mac_valid,
        notes="clone produced configuration-correct frames but an invalid MAC",
    )


def proxy_attack(
    provisioned: ProvisionedDevice, record: VerifierRecord, seed: int = 4001
) -> AttackOutcome:
    """Scenario 4: connect an external computing device.

    Routing internal signals to an external helper requires changing the
    pin (IOB) configuration, and "the bitstream reflects which FPGA pins
    are connected to peripherals" — the extra connection shows up in the
    IOB frames of the readback.
    """
    system = record.system
    rng = DeterministicRng(seed)
    fabric = Fabric(system.device)
    static_iob = [
        frame
        for frame in fabric.iob_frames()
        if frame in system.partition.static_frames
    ]
    if not static_iob:
        return AttackOutcome(
            attack_name="External proxy device",
            adversary_class="local",
            mounted=False,
            detected=True,
            notes="floorplan has no static IOB frames to tamper",
        )
    target = static_iob[0]
    # Wire two extra pins to the helper device: a handful of IOB bits.
    for bit in range(4):
        provisioned.board.fpga.memory.flip_bit(target, 0, bit)
    result = run_attestation(provisioned.prover, _fresh_verifier(record, seed + 1), rng)
    return AttackOutcome(
        attack_name="External proxy device",
        adversary_class="local",
        mounted=True,
        detected=not result.report.accepted,
        notes=(
            f"extra pin connections in IOB frame {target} flagged: "
            f"{result.report.mismatched_frames[:5]}"
        ),
    )


def replay_attack(
    provisioned: ProvisionedDevice, record: VerifierRecord, seed: int = 5001
) -> AttackOutcome:
    """Scenario 5: replay a recorded session against a fresh challenge.

    The adversary records all responses of an honest run, then answers a
    *new* attestation with the recording.  The fresh nonce (configured
    into the nonce frame) makes the recorded nonce-frame content — and
    hence both the golden comparison and the MAC — stale.
    """
    rng = DeterministicRng(seed)
    verifier_one = _fresh_verifier(record, seed + 1)
    recorded = run_attestation(provisioned.prover, verifier_one, rng)
    if not recorded.report.accepted:
        return AttackOutcome(
            attack_name="Replay of a recorded session",
            adversary_class="local",
            mounted=False,
            detected=True,
            notes="could not record an accepted session to replay",
        )

    verifier_two = _fresh_verifier(record, seed + 2)
    fresh_nonce = verifier_two.new_nonce()
    plan = verifier_two.readback_plan()
    # The replayer re-orders its recording to match the new plan as best
    # it can (frame-indexed lookup), the strongest replay strategy.
    by_frame = {}
    for response in recorded.responses:
        by_frame.setdefault(response.frame_index, response)
    replayed: List = [by_frame[index] for index in plan if index in by_frame]
    report = verifier_two.evaluate(fresh_nonce, plan, replayed, recorded.tag)
    return AttackOutcome(
        attack_name="Replay of a recorded session",
        adversary_class="local",
        mounted=True,
        detected=not report.accepted,
        notes=(
            "stale nonce frame and/or MAC over a different readback order "
            "rejected"
        ),
    )


def nonce_suppression_attack(
    provisioned: ProvisionedDevice, record: VerifierRecord, seed: int = 5101
) -> AttackOutcome:
    """Scenario 5b: block the nonce update, keep everything else honest.

    Even if the adversary prevents the nonce configuration from reaching
    the device (hoping to make two runs identical), the readback returns
    the *old* nonce-frame content, which no longer matches the golden
    configuration for the new nonce.
    """
    system = record.system
    rng = DeterministicRng(seed)
    nonce_frames = set(system.partition.nonce_frame_list())
    prover = SkippingProver(
        provisioned.board,
        provisioned.key_provider,
        protected_frames=nonce_frames,
        device_id="prv-nonce-suppressed",
    )
    result = run_attestation(prover, _fresh_verifier(record, seed + 1), rng)
    return AttackOutcome(
        attack_name="Nonce-update suppression",
        adversary_class="local",
        mounted=True,
        detected=not result.report.accepted,
        notes=(
            f"stale nonce frame(s) {sorted(nonce_frames)} mismatch the "
            "fresh golden configuration"
        ),
    )


def bram_hoarding_attack(
    provisioned: ProvisionedDevice, record: VerifierRecord, seed: int = 6001
) -> AttackOutcome:
    """The bounded-memory attack: answer readbacks from a BRAM hoard.

    The adversary keeps malicious logic in some frames and tries to
    answer their readbacks with hoarded expected content.  The hoard is
    capped by the fabric's BRAM capacity; on the XC6VLX240T that is ~22 %
    of the frames, so the malicious frames cannot all be covered **and**
    the hoard itself displaces the application.  Here the adversary
    hoards as much as BRAM allows and tampers one frame *outside* the
    hoard — detection follows.
    """
    system = record.system
    rng = DeterministicRng(seed)
    inventory = BramInventory(system.device)
    prover = HoardingProver(provisioned.board, provisioned.key_provider)

    golden = system.golden_memory(b"\x00" * system.nonce_bytes)
    hoardable = min(prover.hoard_capacity_frames, system.device.total_frames)
    for frame_index in range(hoardable):
        prover.stash(frame_index, golden.read_frame(frame_index))

    # Malicious content in a frame beyond the hoard's reach, in the
    # static region so the configuration phase does not overwrite it.
    static_outside = [
        frame
        for frame in system.partition.static_frame_list()
        if frame >= hoardable
    ]
    if not static_outside:
        # The whole static region is hoardable on this (toy) device —
        # tamper a hoarded frame instead: the hoard hides it from the
        # MAC, but the hoarded content is stale for the fresh nonce run.
        target = system.partition.static_frame_list()[-1]
    else:
        target = static_outside[0]
    provisioned.board.fpga.memory.write_frame(
        target, rng.randbytes(system.device.frame_bytes)
    )

    result = run_attestation(
        prover,
        _fresh_verifier(record, seed + 1),
        rng,
        SessionOptions(scramble_registers=False),
    )
    return AttackOutcome(
        attack_name="BRAM hoarding (bounded-memory violation attempt)",
        adversary_class="remote",
        mounted=True,
        detected=not result.report.accepted,
        notes=(
            f"hoard capacity {inventory.frames_storable()} of "
            f"{system.device.total_frames} frames; tampered frame {target} "
            f"answered from the fabric"
        ),
    )


def run_all_scenarios(
    make_provisioned,
    seed: int = 7000,
) -> List[AttackOutcome]:
    """Run every scenario, each against a freshly provisioned device.

    ``make_provisioned`` is a zero-argument callable returning a fresh
    ``(ProvisionedDevice, VerifierRecord)`` pair — attacks mutate device
    state, so they must not share a board.
    """
    outcomes: List[AttackOutcome] = []
    scenarios = [
        lambda d, r: dynpart_malware_attack(d, r, seed, resist_overwrite=False),
        lambda d, r: dynpart_malware_attack(d, r, seed + 10, resist_overwrite=True),
        lambda d, r: statpart_insertion_attack(d, r, seed + 20),
        lambda d, r: statpart_substitution_attack(d, r, seed + 30),
        lambda d, r: impersonation_attack(d, r, seed + 40),
        lambda d, r: proxy_attack(d, r, seed + 50),
        lambda d, r: replay_attack(d, r, seed + 60),
        lambda d, r: nonce_suppression_attack(d, r, seed + 70),
        lambda d, r: bram_hoarding_attack(d, r, seed + 80),
    ]
    for scenario in scenarios:
        provisioned, record = make_provisioned()
        outcomes.append(scenario(provisioned, record))
    return outcomes
