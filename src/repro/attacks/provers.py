"""Adversarial prover variants.

The honest :class:`~repro.core.prover.SachaProver` does exactly what the
static partition hardware does.  These subclasses model what a prover
under adversary control can deviate on — and, crucially, what it cannot:
the bounded memory model limits how much configuration data a cheating
prover can stash, and the MAC key never leaves the legitimate device.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from repro.core.prover import KeyProvider, SachaProver
from repro.errors import AttackError
from repro.fpga.board import Board
from repro.fpga.bram import BramInventory


class SkippingProver(SachaProver):
    """Refuses configuration writes to chosen frames.

    This is malware trying to survive the memory-filling update by not
    letting the verifier's frames overwrite it — the FPGA analogue of
    the Perito–Tsudik resident malware.
    """

    def __init__(
        self,
        board: Board,
        key_provider: KeyProvider,
        protected_frames: Iterable[int],
        device_id: str = "prv-skipping",
    ) -> None:
        super().__init__(board, key_provider, device_id=device_id)
        self.protected_frames: Set[int] = set(protected_frames)
        self.skipped_writes = 0

    def handle_config(self, frame_index: int, data: bytes) -> None:
        if frame_index in self.protected_frames:
            self.skipped_writes += 1
            return
        super().handle_config(frame_index, data)


class HoardingProver(SachaProver):
    """Tries to answer readbacks from a hoard of expected frame data.

    The adversary knows what the verifier expects (the golden content is
    not secret) and would like to answer readbacks with it while the
    fabric runs something else.  The hoard lives in on-chip BRAM, so its
    capacity is bounded by :meth:`BramInventory.frames_storable` — on the
    real part that is ~5,900 of 28,488 frames, nowhere near enough, and
    every frame answered from the fabric's *actual* (malicious)
    configuration gives the tamper away.
    """

    def __init__(
        self,
        board: Board,
        key_provider: KeyProvider,
        device_id: str = "prv-hoarding",
    ) -> None:
        super().__init__(board, key_provider, device_id=device_id)
        self._capacity_frames = BramInventory(board.fpga.device).frames_storable()
        self._hoard: Dict[int, bytes] = {}
        self.hoard_hits = 0
        self.hoard_misses = 0

    @property
    def hoard_capacity_frames(self) -> int:
        return self._capacity_frames

    def stash(self, frame_index: int, data: bytes) -> bool:
        """Store expected content for one frame; False when BRAM is full."""
        if len(data) != self.board.fpga.device.frame_bytes:
            raise AttackError(
                f"hoard entry must be {self.board.fpga.device.frame_bytes} bytes"
            )
        if frame_index in self._hoard:
            self._hoard[frame_index] = data
            return True
        if len(self._hoard) >= self._capacity_frames:
            return False
        self._hoard[frame_index] = data
        return True

    def handle_readback(self, frame_index: int) -> bytes:
        if frame_index in self._hoard:
            # Feed the hoarded (expected) data into the MAC instead of the
            # true readback.
            if self._mac is None:
                self._mac = self._new_checksum()
            data = self._hoard[frame_index]
            self._mac.update(data)
            self.readbacks_handled += 1
            self.hoard_hits += 1
            return data
        self.hoard_misses += 1
        return super().handle_readback(frame_index)


class WrongKeyProver(SachaProver):
    """An impersonator: right structure, wrong key.

    Models both a cloned board (different PUF ⇒ different key) and a
    foreign device trying to stand in for the prover.
    """


class EchoingProver(SachaProver):
    """Answers readbacks for frame X with data for frame Y.

    Used to check the verifier's frame-echo policy: a prover cannot remap
    which frame it claims to be returning.
    """

    def __init__(
        self,
        board: Board,
        key_provider: KeyProvider,
        remap: Optional[Dict[int, int]] = None,
        device_id: str = "prv-echoing",
    ) -> None:
        super().__init__(board, key_provider, device_id=device_id)
        self._remap = dict(remap or {})

    def handle_readback(self, frame_index: int) -> bytes:
        return super().handle_readback(self._remap.get(frame_index, frame_index))
