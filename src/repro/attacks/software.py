"""Attacks against the baseline schemes (Section 4's critique, executable).

These scenarios drive the baselines of ``repro.baselines`` with the
adversaries the related-work section discusses, producing the rows of
the comparison benchmark (E9):

* resident malware vs the Perito–Tsudik erasure proof → detected;
* redirecting malware vs SWATT with strict timing → detected, but the
  same malware vs SWATT *over a network* (timing unusable) → undetected;
* attestation-core tampering vs Chaves et al. → undetected (their
  tamper-proof-core assumption);
* direct configuration-memory tampering vs Drimer–Kuhn → undetected
  (their tamper-proof-memory assumption);
* the same configuration-memory tampering vs SACHa → detected.
"""

from __future__ import annotations

from repro.attacks.base import AttackOutcome
from repro.baselines.chaves import ChavesAttestor, ChavesVerifier
from repro.baselines.drimer_kuhn import DrimerKuhnDevice, DrimerKuhnVerifier
from repro.baselines.mcu import BoundedMemoryMcu, ResidentMalware
from repro.baselines.pose import proof_of_secure_erasure
from repro.baselines.swatt import SwattProver, SwattVerifier
from repro.crypto.sha256 import sha256
from repro.fpga.bitstream import build_partial_bitstream
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.device import DevicePart
from repro.utils.rng import DeterministicRng


def pose_resident_malware(
    ram_bytes: int = 4096, malware_bytes: int = 64, seed: int = 8101
) -> AttackOutcome:
    """Resident malware vs the proof of secure erasure."""
    rng = DeterministicRng(seed)
    key = rng.fork("key").randbytes(16)
    malware = ResidentMalware(offset=ram_bytes // 2, body=rng.randbytes(malware_bytes))
    infected = BoundedMemoryMcu(ram_bytes, key, malware=malware)
    result = proof_of_secure_erasure(infected, key, rng.fork("pose"))
    return AttackOutcome(
        attack_name="Resident malware vs Perito-Tsudik PoSE",
        adversary_class="remote",
        mounted=True,
        detected=not result.accepted,
        notes=f"{malware_bytes} malware bytes displaced verifier randomness",
    )


def swatt_redirection(
    memory_bytes: int = 4096,
    malware_bytes: int = 128,
    iterations: int = 8192,
    networked: bool = False,
    seed: int = 8201,
) -> AttackOutcome:
    """Redirecting malware vs SWATT, with and without usable timing."""
    rng = DeterministicRng(seed)
    memory = rng.randbytes(memory_bytes)
    start = memory_bytes // 3
    compromised = SwattProver(memory, malware_range=(start, start + malware_bytes))
    verifier = SwattVerifier(memory)
    challenge = rng.fork("challenge").randbytes(16)
    result = compromised.respond(challenge, iterations)
    if networked:
        detected = not verifier.verify_without_timing(challenge, iterations, result)
        notes = (
            "checksum correct via redirection; network jitter hides the "
            f"{result.cycles} vs {verifier.expected(challenge, iterations).cycles} "
            "cycle gap"
        )
        name = "Redirection malware vs SWATT over a network"
    else:
        detected = not verifier.verify(challenge, iterations, result)
        notes = "redirection check cycles exceeded the timing budget"
        name = "Redirection malware vs SWATT (strict timing)"
    return AttackOutcome(
        attack_name=name,
        adversary_class="remote",
        mounted=True,
        detected=detected,
        notes=notes,
    )


def smart_key_exfiltration(
    ram_bytes: int = 2048, seed: int = 8251
) -> AttackOutcome:
    """Malware vs SMART's execution-aware key protection.

    The malware infects the application, then tries to read the
    attestation key to answer future challenges over a pristine memory
    image.  SMART's hardware blocks the read (and mid-ROM jumps), so the
    malware can only call the honest routine — whose MAC covers the
    malware and convicts it.
    """
    from repro.baselines.smart import SmartMcu, SmartVerifier
    from repro.errors import ProtocolError

    rng = DeterministicRng(seed)
    key = rng.fork("key").randbytes(16)
    image = rng.fork("image").randbytes(512)
    device = SmartMcu(ram_bytes, key)
    device.software_write(0, image)
    verifier = SmartVerifier(key, image, ram_bytes)

    device.software_write(1024, b"MALWARE-BODY" * 4)
    key_extracted = False
    try:
        device.malware_try_key_exfiltration()
        key_extracted = True
    except ProtocolError:
        pass
    nonce = rng.fork("nonce").randbytes(16)
    convicted = not verifier.verify(nonce, device.rom_attest(nonce))
    return AttackOutcome(
        attack_name="Key exfiltration + infection vs SMART",
        adversary_class="remote",
        mounted=True,
        detected=(not key_extracted) and convicted,
        notes=(
            "key read blocked by execution-aware access control; the "
            "honest ROM MAC covered the malware"
        ),
    )


def chaves_core_tamper(device: DevicePart, seed: int = 8301) -> AttackOutcome:
    """Attestation-core tampering vs on-the-fly bitstream hashing.

    The adversary compromises the in-FPGA attestation core (possible,
    since the configuration memory is writable) and replays the expected
    hash while loading a malicious bitstream.
    """
    rng = DeterministicRng(seed)
    golden_memory = ConfigurationMemory(device)
    golden_memory.randomize(rng.fork("golden"))
    frames = list(range(min(8, device.total_frames)))
    golden_bitstream = build_partial_bitstream(golden_memory, frames, "golden")

    malicious_memory = ConfigurationMemory(device)
    malicious_memory.randomize(rng.fork("malicious"))
    malicious_bitstream = build_partial_bitstream(malicious_memory, frames, "evil")

    attestor = ChavesAttestor(restricted_frames=set(frames))
    attestor.compromise(sha256(golden_bitstream.to_bytes()))
    attestor.observe_load(malicious_bitstream, frames)

    verifier = ChavesVerifier([golden_bitstream])
    accepted = verifier.verify(attestor.report())
    return AttackOutcome(
        attack_name="Attestation-core tamper vs Chaves et al.",
        adversary_class="remote",
        mounted=True,
        detected=not accepted,
        notes=(
            "the scheme assumes a tamper-proof core; with the core's "
            "configuration writable, forged hashes pass verification"
        ),
    )


def drimer_kuhn_memory_tamper(device: DevicePart, seed: int = 8401) -> AttackOutcome:
    """Direct configuration-memory tampering vs secure remote update.

    The update protocol itself is sound, but attestation covers the
    upload status, not the memory content: bits flipped behind the
    protocol's back go unnoticed.
    """
    rng = DeterministicRng(seed)
    key = rng.fork("key").randbytes(16)
    dk_device = DrimerKuhnDevice(device, key)
    verifier = DrimerKuhnVerifier(key)
    image = rng.fork("image").randbytes(device.configuration_bytes())
    assert verifier.push_update(dk_device, version=1, payload=image)

    # The adversary flips configuration bits directly.
    dk_device.memory.flip_bit(0, 0, 0)
    nonce = rng.fork("nonce").randbytes(16)
    accepted = verifier.attest(dk_device, nonce)
    return AttackOutcome(
        attack_name="Config-memory tamper vs Drimer-Kuhn secure update",
        adversary_class="remote",
        mounted=True,
        detected=not accepted,
        notes=(
            "status attestation passed although the configuration memory "
            "was modified — the tamper-proof-memory assumption at work"
        ),
    )
