"""Attack harness interfaces.

Every scenario of the security evaluation (Section 7.2) is an executable
that mounts a concrete attack against a provisioned prover/verifier pair
and reports whether the attack could be mounted at all and whether the
defense caught it.  The security table of benchmark E5 is just these
outcomes side by side.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AttackOutcome:
    """The result of one mounted (or infeasible) attack."""

    attack_name: str
    adversary_class: str  # "remote" or "local" per the taxonomy of [3]
    mounted: bool  # False when the attack is infeasible by construction
    detected: bool  # True when the verifier rejected (or placement failed)
    notes: str = ""

    @property
    def defense_holds(self) -> bool:
        """The defense wins when the attack is infeasible or detected."""
        return (not self.mounted) or self.detected

    def explain(self) -> str:
        if not self.mounted:
            status = "INFEASIBLE"
        elif self.detected:
            status = "DETECTED"
        else:
            status = "UNDETECTED (defense failed)"
        return f"{self.attack_name} [{self.adversary_class}] -> {status}: {self.notes}"
