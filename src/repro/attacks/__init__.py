"""Executable adversaries: the security evaluation of Section 7.2 plus
the related-work critiques of Section 4, all mounted for real."""

from repro.attacks.base import AttackOutcome
from repro.attacks.provers import (
    EchoingProver,
    HoardingProver,
    SkippingProver,
    WrongKeyProver,
)
from repro.attacks.scenarios import (
    bram_hoarding_attack,
    dynpart_malware_attack,
    impersonation_attack,
    nonce_suppression_attack,
    proxy_attack,
    replay_attack,
    run_all_scenarios,
    statpart_insertion_attack,
    statpart_substitution_attack,
)
from repro.attacks.software import (
    chaves_core_tamper,
    drimer_kuhn_memory_tamper,
    pose_resident_malware,
    smart_key_exfiltration,
    swatt_redirection,
)

__all__ = [
    "AttackOutcome",
    "EchoingProver",
    "HoardingProver",
    "SkippingProver",
    "WrongKeyProver",
    "bram_hoarding_attack",
    "dynpart_malware_attack",
    "impersonation_attack",
    "nonce_suppression_attack",
    "proxy_attack",
    "replay_attack",
    "run_all_scenarios",
    "statpart_insertion_attack",
    "statpart_substitution_attack",
    "chaves_core_tamper",
    "drimer_kuhn_memory_tamper",
    "pose_resident_malware",
    "smart_key_exfiltration",
    "swatt_redirection",
]
