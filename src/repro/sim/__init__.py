"""Minimal discrete-event simulation kernel with nanosecond resolution."""

from repro.sim.events import Event, Simulator
from repro.sim.tracing import TraceEvent, TraceRecorder

__all__ = ["Event", "Simulator", "TraceEvent", "TraceRecorder"]
