"""Protocol trace recording.

Every message and internal action in an attestation run can be recorded
as a :class:`TraceEvent`; the Figure-9 reproduction (experiment E6) checks
the *shape* of this trace — command kinds, directions, counts, ordering —
against the paper's message sequence chart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union


@dataclass(frozen=True)
class TraceEvent:
    """One step in a protocol run.

    ``kind`` is a short identifier such as ``"ICAP_config"``,
    ``"ICAP_readback"``, ``"MAC_update"``; ``direction`` is one of
    ``"vrf->prv"``, ``"prv->vrf"`` or ``"prv"`` (internal).
    """

    time_ns: float
    kind: str
    direction: str
    detail: str = ""


class TraceRecorder:
    """Collects trace events and answers shape queries about them."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._events: List[TraceEvent] = []

    @property
    def enabled(self) -> bool:
        return self._enabled

    def record(
        self, time_ns: float, kind: str, direction: str, detail: str = ""
    ) -> None:
        if self._enabled:
            self._events.append(TraceEvent(time_ns, kind, direction, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def filter(
        self,
        kind: Optional[Union[str, Iterable[str]]] = None,
        direction: Optional[str] = None,
    ) -> "TraceRecorder":
        """A new recorder holding only the matching events.

        ``kind`` accepts one kind or any iterable of kinds; ``direction``
        matches exactly.  Omitted criteria match everything, so
        ``trace.filter()`` is a copy.
        """
        if kind is None:
            kinds = None
        elif isinstance(kind, str):
            kinds = {kind}
        else:
            kinds = set(kind)
        selected = TraceRecorder(enabled=True)
        for event in self._events:
            if kinds is not None and event.kind not in kinds:
                continue
            if direction is not None and event.direction != direction:
                continue
            selected._events.append(event)
        return selected

    def between(self, t0_ns: float, t1_ns: float) -> "TraceRecorder":
        """Events in the half-open window ``t0_ns <= time_ns < t1_ns``."""
        selected = TraceRecorder(enabled=True)
        selected._events = [
            event for event in self._events if t0_ns <= event.time_ns < t1_ns
        ]
        return selected

    def to_dicts(self) -> List[Dict[str, object]]:
        """Events as plain dicts (the shared JSONL export shape)."""
        records: List[Dict[str, object]] = []
        for event in self._events:
            record: Dict[str, object] = {
                "record": "trace",
                "time_ns": event.time_ns,
                "kind": event.kind,
                "direction": event.direction,
            }
            if event.detail:
                record["detail"] = event.detail
            records.append(record)
        return records

    def to_jsonl(self) -> str:
        """One compact sorted-key JSON object per event, newline-separated.

        The same line shape :func:`repro.obs.exporters.to_jsonl` emits,
        so protocol traces and span logs share one export path.
        """
        return "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in self.to_dicts()
        )

    def kinds_in_order(self, collapse_repeats: bool = True) -> List[str]:
        """Sequence of event kinds, optionally with runs collapsed.

        With ``collapse_repeats`` the Figure-9 flow reduces to
        ``["ICAP_config", "ICAP_readback", "MAC_checksum", ...]`` no matter
        how many frames the device has — the property the trace tests use.
        """
        kinds: List[str] = []
        for event in self._events:
            if not (collapse_repeats and kinds and kinds[-1] == event.kind):
                kinds.append(event.kind)
        return kinds

    def summarize(self) -> str:
        """Multi-line human-readable trace summary (collapsed runs)."""
        lines: List[str] = []
        run_kind: Optional[str] = None
        run_count = 0
        run_start = 0.0

        def flush() -> None:
            if run_kind is None:
                return
            suffix = f" x{run_count}" if run_count > 1 else ""
            lines.append(f"{run_start:>14.1f} ns  {run_kind}{suffix}")

        for event in self._events:
            if event.kind == run_kind:
                run_count += 1
            else:
                flush()
                run_kind, run_count, run_start = event.kind, 1, event.time_ns
        flush()
        return "\n".join(lines)
