"""Protocol trace recording.

Every message and internal action in an attestation run can be recorded
as a :class:`TraceEvent`; the Figure-9 reproduction (experiment E6) checks
the *shape* of this trace — command kinds, directions, counts, ordering —
against the paper's message sequence chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class TraceEvent:
    """One step in a protocol run.

    ``kind`` is a short identifier such as ``"ICAP_config"``,
    ``"ICAP_readback"``, ``"MAC_update"``; ``direction`` is one of
    ``"vrf->prv"``, ``"prv->vrf"`` or ``"prv"`` (internal).
    """

    time_ns: float
    kind: str
    direction: str
    detail: str = ""


class TraceRecorder:
    """Collects trace events and answers shape queries about them."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._events: List[TraceEvent] = []

    @property
    def enabled(self) -> bool:
        return self._enabled

    def record(
        self, time_ns: float, kind: str, direction: str, detail: str = ""
    ) -> None:
        if self._enabled:
            self._events.append(TraceEvent(time_ns, kind, direction, detail))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    @property
    def events(self) -> Tuple[TraceEvent, ...]:
        return tuple(self._events)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def first(self, kind: str) -> Optional[TraceEvent]:
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> Optional[TraceEvent]:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def kinds_in_order(self, collapse_repeats: bool = True) -> List[str]:
        """Sequence of event kinds, optionally with runs collapsed.

        With ``collapse_repeats`` the Figure-9 flow reduces to
        ``["ICAP_config", "ICAP_readback", "MAC_checksum", ...]`` no matter
        how many frames the device has — the property the trace tests use.
        """
        kinds: List[str] = []
        for event in self._events:
            if not (collapse_repeats and kinds and kinds[-1] == event.kind):
                kinds.append(event.kind)
        return kinds

    def summarize(self) -> str:
        """Multi-line human-readable trace summary (collapsed runs)."""
        lines: List[str] = []
        run_kind: Optional[str] = None
        run_count = 0
        run_start = 0.0

        def flush() -> None:
            if run_kind is None:
                return
            suffix = f" x{run_count}" if run_count > 1 else ""
            lines.append(f"{run_start:>14.1f} ns  {run_kind}{suffix}")

        for event in self._events:
            if event.kind == run_kind:
                run_count += 1
            else:
                flush()
                run_kind, run_count, run_start = event.kind, 1, event.time_ns
        flush()
        return "\n".join(lines)
