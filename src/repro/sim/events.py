"""Discrete-event scheduler.

The SACHa protocol is a long strictly-ordered sequence of actions spread
over three clock domains and a network; the scheduler advances a single
nanosecond clock through scheduled callbacks.  It is deliberately small:
a heap of (time, sequence, callback) entries, deterministic tie-breaking
by insertion order, and cancellation support for timeouts.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, sequence number)."""

    time_ns: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True


class Simulator:
    """A deterministic event-driven simulator.

    Time never flows backwards: scheduling in the past raises.  Events at
    the same timestamp run in scheduling order, which makes traces fully
    reproducible.
    """

    def __init__(self) -> None:
        self._queue: List[Event] = []
        self._now_ns: float = 0.0
        self._sequence = 0
        self._running = False

    @property
    def now_ns(self) -> float:
        return self._now_ns

    def schedule(
        self, delay_ns: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay_ns`` from the current time."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule {delay_ns} ns in the past")
        event = Event(self._now_ns + delay_ns, self._sequence, callback, label)
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time_ns: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at absolute time ``time_ns``."""
        if time_ns < self._now_ns:
            raise ValueError(
                f"cannot schedule at {time_ns} ns; clock is at {self._now_ns} ns"
            )
        return self.schedule(time_ns - self._now_ns, callback, label)

    def run(self, until_ns: Optional[float] = None) -> float:
        """Run until the queue drains (or the clock passes ``until_ns``).

        Returns the final simulation time.  Callbacks may schedule further
        events; a callback that raises stops the run and propagates.
        """
        if self._running:
            raise RuntimeError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if until_ns is not None and event.time_ns > until_ns:
                    self._now_ns = until_ns
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now_ns = event.time_ns
                event.callback()
        finally:
            self._running = False
        return self._now_ns

    def pending(self) -> int:
        """Number of not-yet-cancelled events in the queue."""
        return sum(1 for event in self._queue if not event.cancelled)

    def peek_next_time(self) -> Optional[float]:
        """Timestamp of the next live event, or None if the queue is empty."""
        for event in sorted(self._queue):
            if not event.cancelled:
                return event.time_ns
        return None
