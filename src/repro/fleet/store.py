"""Persistent device registry for the fleet attestation control plane.

One verifier session attests one board; a fleet service operates
millions.  The difference is durable state: which devices exist, the
key material they were provisioned with, what every past sweep
concluded about each of them, and the telemetry the verdicts came
from.  :class:`FleetStore` keeps all of that in a single SQLite file
(stdlib ``sqlite3`` — no new dependencies) behind a small typed API.

Design points:

* **Schema versioning with an idempotent migration runner.**  Every
  schema change is a :class:`Migration` with a monotonically increasing
  version; applied versions are recorded in ``fleet_schema_migrations``
  and re-running the runner applies nothing.  Opening an old database
  upgrades it in place, one transaction per migration.
* **Deterministic by construction.**  No wall-clock timestamps anywhere
  (sachalint's SACHA001 would reject them): freshness is measured in
  *sweep generations* — the monotonically increasing ``sweep_id`` — so
  "stale" means "not attested recently in sweep order", which is also
  what a seeded simulation can reproduce bit-for-bit.
* **Write atomicity under sharded writers.**  All writes funnel through
  one connection guarded by a lock, and every logical record (an
  attestation row plus its verdict event row) is committed in a single
  transaction, so two worker shards recording concurrently can never
  interleave a partial attestation record.
* **Verdict history as queryable rows.**  Each attestation stores the
  full three-way verdict, the MAC tag, the structured failure reason,
  and the mismatched frames; ``events`` adds an append-only audit trail
  (enrollments, sweep lifecycle, per-device verdicts) that the
  post-quantum evidence-log roadmap item will chain from.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.report import AttestationReport, Verdict
from repro.errors import FleetError
from repro.utils.secret import SecretBytes

#: Current schema version — the highest :class:`Migration` version.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class Migration:
    """One schema step: DDL statements applied atomically, once."""

    version: int
    name: str
    statements: Tuple[str, ...]


MIGRATIONS: Tuple[Migration, ...] = (
    Migration(
        version=1,
        name="device-registry",
        statements=(
            """
            CREATE TABLE devices (
                device_id TEXT PRIMARY KEY,
                part TEXT NOT NULL,
                seed INTEGER NOT NULL,
                key_mode TEXT NOT NULL,
                key_hex TEXT NOT NULL,
                tampered INTEGER NOT NULL DEFAULT 0
            )
            """,
            """
            CREATE TABLE sweeps (
                sweep_id INTEGER PRIMARY KEY AUTOINCREMENT,
                seed INTEGER NOT NULL,
                profile TEXT NOT NULL DEFAULT '',
                workers INTEGER NOT NULL DEFAULT 1,
                device_count INTEGER NOT NULL DEFAULT 0,
                completed INTEGER NOT NULL DEFAULT 0
            )
            """,
            """
            CREATE TABLE attestations (
                attestation_id INTEGER PRIMARY KEY AUTOINCREMENT,
                sweep_id INTEGER NOT NULL REFERENCES sweeps(sweep_id),
                device_id TEXT NOT NULL REFERENCES devices(device_id),
                verdict TEXT NOT NULL,
                mac_valid INTEGER NOT NULL,
                config_match INTEGER NOT NULL,
                attempts INTEGER NOT NULL DEFAULT 1,
                duration_ns REAL NOT NULL DEFAULT 0,
                tag_hex TEXT NOT NULL DEFAULT '',
                nonce_hex TEXT NOT NULL DEFAULT '',
                mismatched_frames TEXT NOT NULL DEFAULT '[]',
                failure_stage TEXT NOT NULL DEFAULT '',
                failure_kind TEXT NOT NULL DEFAULT '',
                failure_detail TEXT NOT NULL DEFAULT ''
            )
            """,
            """
            CREATE INDEX idx_attestations_device
                ON attestations(device_id, attestation_id)
            """,
        ),
    ),
    Migration(
        version=2,
        name="events-and-sweep-snapshots",
        statements=(
            """
            CREATE TABLE events (
                event_id INTEGER PRIMARY KEY AUTOINCREMENT,
                sweep_id INTEGER,
                device_id TEXT,
                kind TEXT NOT NULL,
                detail TEXT NOT NULL DEFAULT ''
            )
            """,
            """
            CREATE INDEX idx_events_device ON events(device_id, event_id)
            """,
            "ALTER TABLE sweeps ADD COLUMN snapshot_json TEXT",
        ),
    ),
)


def migrate(
    conn: sqlite3.Connection, target_version: Optional[int] = None
) -> List[int]:
    """Apply every pending migration up to ``target_version`` (or all).

    Idempotent: versions recorded in ``fleet_schema_migrations`` are
    skipped, so running the runner twice applies nothing the second
    time.  Each migration commits atomically — a failure leaves the
    database at the previous version, never half-migrated.  Returns the
    versions applied by *this* call (empty when up to date).
    """
    conn.execute(
        "CREATE TABLE IF NOT EXISTS fleet_schema_migrations ("
        "version INTEGER PRIMARY KEY, name TEXT NOT NULL)"
    )
    applied = {
        row[0]
        for row in conn.execute("SELECT version FROM fleet_schema_migrations")
    }
    newly_applied: List[int] = []
    previous = 0
    for migration in MIGRATIONS:
        if migration.version <= previous:
            raise FleetError(
                f"migrations out of order: version {migration.version} "
                f"after {previous}"
            )
        previous = migration.version
        if target_version is not None and migration.version > target_version:
            break
        if migration.version in applied:
            continue
        with conn:
            for statement in migration.statements:
                conn.execute(statement)
            conn.execute(
                "INSERT INTO fleet_schema_migrations (version, name) "
                "VALUES (?, ?)",
                (migration.version, migration.name),
            )
        newly_applied.append(migration.version)
    return newly_applied


def schema_version(conn: sqlite3.Connection) -> int:
    """The highest migration version applied to this database (0 = none)."""
    try:
        row = conn.execute(
            "SELECT MAX(version) FROM fleet_schema_migrations"
        ).fetchone()
    except sqlite3.OperationalError:
        return 0
    return int(row[0]) if row and row[0] is not None else 0


@dataclass(frozen=True)
class DeviceRecord:
    """One enrolled device: everything needed to re-materialize it.

    The enrolled key is held as an opaque :class:`SecretBytes` — the
    record's repr shows ``<secret[16]>``, and only the store's
    ``enroll`` persistence path reveals it (into the sanctioned
    ``key_hex`` column).
    """

    device_id: str
    part: str
    seed: int
    key_mode: str
    key: SecretBytes
    tampered: bool = False


@dataclass(frozen=True)
class AttestationRow:
    """One persisted attestation outcome."""

    attestation_id: int
    sweep_id: int
    device_id: str
    verdict: str
    mac_valid: bool
    config_match: bool
    attempts: int
    duration_ns: float
    tag_hex: str
    nonce_hex: str
    mismatched_frames: Tuple[int, ...]
    failure_stage: str
    failure_kind: str
    failure_detail: str


@dataclass(frozen=True)
class SweepRow:
    """One recorded sweep (a fleet-wide attestation pass)."""

    sweep_id: int
    seed: int
    profile: str
    workers: int
    device_count: int
    completed: bool


#: Re-attestation priority classes, in scheduling order: an INCONCLUSIVE
#: verdict means the verifier learned *nothing* and must try again
#: first; a never-attested device has no history at all; a rejected
#: device is re-checked before re-confirming known-healthy ones.
_PRIORITY = {
    Verdict.INCONCLUSIVE.value: 0,
    None: 1,  # never attested
    Verdict.REJECT.value: 2,
    Verdict.ACCEPT.value: 3,
}


class FleetStore:
    """SQLite-backed device registry + attestation history.

    One connection, guarded by a lock, shared by every thread: worker
    shards of the fleet controller write attestation records through
    the same store instance, each record in one transaction.
    """

    def __init__(self, path: str) -> None:
        self._path = str(path)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                self._path, check_same_thread=False, timeout=30.0
            )
        except sqlite3.Error as exc:
            raise FleetError(f"cannot open fleet store {path!r}: {exc}") from exc
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA foreign_keys = ON")
        migrate(self._conn)

    # -- lifecycle -----------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "FleetStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- devices -------------------------------------------------------------------

    def enroll(self, device: DeviceRecord) -> None:
        """Register a device; its key material never changes afterwards."""
        with self._lock:
            try:
                with self._conn:
                    self._conn.execute(
                        "INSERT INTO devices "
                        "(device_id, part, seed, key_mode, key_hex, tampered) "
                        "VALUES (?, ?, ?, ?, ?, ?)",
                        (
                            device.device_id,
                            device.part,
                            device.seed,
                            device.key_mode,
                            device.key.reveal().hex(),
                            int(device.tampered),
                        ),
                    )
                    self._conn.execute(
                        "INSERT INTO events (sweep_id, device_id, kind, detail)"
                        " VALUES (NULL, ?, 'enrolled', ?)",
                        (device.device_id, f"part={device.part}"),
                    )
            except sqlite3.IntegrityError:
                raise FleetError(
                    f"device {device.device_id!r} is already enrolled"
                ) from None

    def get_device(self, device_id: str) -> DeviceRecord:
        row = self._conn.execute(
            "SELECT * FROM devices WHERE device_id = ?", (device_id,)
        ).fetchone()
        if row is None:
            raise FleetError(f"device {device_id!r} is not enrolled")
        return self._device_from_row(row)

    def devices(self) -> List[DeviceRecord]:
        rows = self._conn.execute(
            "SELECT * FROM devices ORDER BY device_id"
        ).fetchall()
        return [self._device_from_row(row) for row in rows]

    @property
    def device_count(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM devices").fetchone()
        return int(row[0])

    @staticmethod
    def _device_from_row(row: sqlite3.Row) -> DeviceRecord:
        return DeviceRecord(
            device_id=row["device_id"],
            part=row["part"],
            seed=int(row["seed"]),
            key_mode=row["key_mode"],
            key=SecretBytes.fromhex(row["key_hex"]),
            tampered=bool(row["tampered"]),
        )

    # -- sweeps --------------------------------------------------------------------

    def begin_sweep(
        self, seed: int, profile: str, workers: int, device_count: int
    ) -> int:
        """Open a sweep row; returns its monotonically increasing id."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO sweeps (seed, profile, workers, device_count) "
                "VALUES (?, ?, ?, ?)",
                (seed, profile, workers, device_count),
            )
            sweep_id = int(cursor.lastrowid or 0)
            self._conn.execute(
                "INSERT INTO events (sweep_id, device_id, kind, detail) "
                "VALUES (?, NULL, 'sweep_started', ?)",
                (sweep_id, f"devices={device_count} workers={workers}"),
            )
        return sweep_id

    def finish_sweep(self, sweep_id: int, snapshot: Optional[dict]) -> None:
        """Mark a sweep complete and persist its merged metrics snapshot."""
        snapshot_json = (
            json.dumps(snapshot, sort_keys=True) if snapshot is not None else None
        )
        with self._lock, self._conn:
            updated = self._conn.execute(
                "UPDATE sweeps SET completed = 1, snapshot_json = ? "
                "WHERE sweep_id = ?",
                (snapshot_json, sweep_id),
            ).rowcount
            if updated != 1:
                raise FleetError(f"no sweep {sweep_id} to finish")
            self._conn.execute(
                "INSERT INTO events (sweep_id, device_id, kind) "
                "VALUES (?, NULL, 'sweep_completed')",
                (sweep_id,),
            )

    def sweeps(self) -> List[SweepRow]:
        rows = self._conn.execute(
            "SELECT sweep_id, seed, profile, workers, device_count, completed"
            " FROM sweeps ORDER BY sweep_id"
        ).fetchall()
        return [
            SweepRow(
                sweep_id=int(row["sweep_id"]),
                seed=int(row["seed"]),
                profile=row["profile"],
                workers=int(row["workers"]),
                device_count=int(row["device_count"]),
                completed=bool(row["completed"]),
            )
            for row in rows
        ]

    def latest_snapshot(self) -> Optional[dict]:
        """The merged metrics snapshot of the newest completed sweep."""
        row = self._conn.execute(
            "SELECT snapshot_json FROM sweeps "
            "WHERE completed = 1 AND snapshot_json IS NOT NULL "
            "ORDER BY sweep_id DESC LIMIT 1"
        ).fetchone()
        if row is None:
            return None
        return json.loads(row["snapshot_json"])

    # -- attestation history -------------------------------------------------------

    def record_attestation(
        self,
        sweep_id: int,
        device_id: str,
        report: AttestationReport,
        tag: Optional[bytes] = None,
        duration_ns: float = 0.0,
        attempts: int = 1,
    ) -> int:
        """Persist one attestation outcome atomically.

        The attestation row and its verdict event commit in a single
        transaction under the store lock: concurrent worker shards can
        interleave *records*, never the fields of one record.
        """
        failure = report.failure
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "INSERT INTO attestations (sweep_id, device_id, verdict, "
                "mac_valid, config_match, attempts, duration_ns, tag_hex, "
                "nonce_hex, mismatched_frames, failure_stage, failure_kind, "
                "failure_detail) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    sweep_id,
                    device_id,
                    report.verdict.value,
                    int(report.mac_valid),
                    int(report.config_match),
                    attempts,
                    duration_ns,
                    tag.hex() if tag else "",
                    report.nonce.hex(),
                    json.dumps(list(report.mismatched_frames)),
                    failure.stage if failure else "",
                    failure.kind if failure else "",
                    failure.detail if failure else "",
                ),
            )
            attestation_id = int(cursor.lastrowid or 0)
            self._conn.execute(
                "INSERT INTO events (sweep_id, device_id, kind, detail) "
                "VALUES (?, ?, ?, ?)",
                (
                    sweep_id,
                    device_id,
                    report.verdict.value,
                    failure.describe() if failure else "",
                ),
            )
        return attestation_id

    def history(
        self, device_id: Optional[str] = None, limit: Optional[int] = None
    ) -> List[AttestationRow]:
        """Attestation rows, newest first, optionally per device."""
        query = "SELECT * FROM attestations"
        params: List[object] = []
        if device_id is not None:
            query += " WHERE device_id = ?"
            params.append(device_id)
        query += " ORDER BY attestation_id DESC"
        if limit is not None:
            query += " LIMIT ?"
            params.append(int(limit))
        rows = self._conn.execute(query, params).fetchall()
        return [self._attestation_from_row(row) for row in rows]

    @staticmethod
    def _attestation_from_row(row: sqlite3.Row) -> AttestationRow:
        return AttestationRow(
            attestation_id=int(row["attestation_id"]),
            sweep_id=int(row["sweep_id"]),
            device_id=row["device_id"],
            verdict=row["verdict"],
            mac_valid=bool(row["mac_valid"]),
            config_match=bool(row["config_match"]),
            attempts=int(row["attempts"]),
            duration_ns=float(row["duration_ns"]),
            tag_hex=row["tag_hex"],
            nonce_hex=row["nonce_hex"],
            mismatched_frames=tuple(json.loads(row["mismatched_frames"])),
            failure_stage=row["failure_stage"],
            failure_kind=row["failure_kind"],
            failure_detail=row["failure_detail"],
        )

    def verdict_counts(self, sweep_id: Optional[int] = None) -> Dict[str, int]:
        """Verdict → row count, fleet-wide or for one sweep."""
        if sweep_id is None:
            rows = self._conn.execute(
                "SELECT verdict, COUNT(*) AS n FROM attestations "
                "GROUP BY verdict"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT verdict, COUNT(*) AS n FROM attestations "
                "WHERE sweep_id = ? GROUP BY verdict",
                (sweep_id,),
            ).fetchall()
        return {row["verdict"]: int(row["n"]) for row in rows}

    def last_outcomes(self) -> Dict[str, AttestationRow]:
        """Each device's most recent attestation row (devices with one)."""
        rows = self._conn.execute(
            "SELECT a.* FROM attestations a JOIN ("
            "  SELECT device_id, MAX(attestation_id) AS latest "
            "  FROM attestations GROUP BY device_id"
            ") m ON a.device_id = m.device_id AND a.attestation_id = m.latest"
        ).fetchall()
        return {
            row["device_id"]: self._attestation_from_row(row) for row in rows
        }

    def events(
        self, device_id: Optional[str] = None
    ) -> List[Tuple[int, Optional[int], Optional[str], str, str]]:
        """Audit-trail rows ``(event_id, sweep_id, device_id, kind, detail)``."""
        query = (
            "SELECT event_id, sweep_id, device_id, kind, detail FROM events"
        )
        params: List[object] = []
        if device_id is not None:
            query += " WHERE device_id = ?"
            params.append(device_id)
        query += " ORDER BY event_id"
        return [
            (
                int(row["event_id"]),
                int(row["sweep_id"]) if row["sweep_id"] is not None else None,
                row["device_id"],
                row["kind"],
                row["detail"],
            )
            for row in self._conn.execute(query, params)
        ]

    # -- re-attestation scheduling -------------------------------------------------

    def select_for_attestation(
        self, limit: Optional[int] = None
    ) -> List[DeviceRecord]:
        """Devices to attest next, highest-need first.

        Priority order (the staged-rollout roadmap item's scheduling
        seed): previously-INCONCLUSIVE devices, then never-attested
        devices, then previously-rejected, then known-healthy — and
        within each class the *stalest* first (smallest last sweep id),
        with the device id as the deterministic tiebreak.
        """
        last = self.last_outcomes()
        ranked = sorted(
            self.devices(),
            key=lambda device: (
                _PRIORITY[
                    last[device.device_id].verdict
                    if device.device_id in last
                    else None
                ],
                last[device.device_id].sweep_id
                if device.device_id in last
                else 0,
                device.device_id,
            ),
        )
        if limit is not None:
            if limit < 0:
                raise FleetError(f"selection limit must be >= 0, got {limit}")
            ranked = ranked[:limit]
        return ranked
