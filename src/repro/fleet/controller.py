"""The fleet controller: N devices, one sharded attestation sweep.

Drives one :class:`~repro.core.net_session.NetworkAttestationSession`
per selected device through the sharded worker pool extracted from the
swarm sweep (:func:`repro.core.swarm.map_sharded`), and records every
outcome — verdict, MAC tag, structured failure, duration — into the
persistent :class:`~repro.fleet.store.FleetStore` together with the
sweep's merged metrics snapshot.

Determinism is the same contract the swarm gives: every device's RNG is
forked from the sweep RNG by device id *before* dispatch, each device
gets its own simulator/channel/session, and worker-shard registries
merge back in device order — so a sweep over any worker count produces
per-device MAC tags (and merged telemetry) byte-identical to running
the same devices sequentially.

Devices are *re-materialized* from their registry facts for every
sweep (:func:`repro.core.provisioning.materialize_device`): the store,
not a process's heap, is the source of truth about the fleet.  The key
the rebuilt board derives must equal the enrolled key byte-for-byte; a
mismatch (a corrupted registry row, a device that drifted) folds into
an INCONCLUSIVE outcome rather than crashing the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.net_session import NetworkAttestationSession
from repro.core.provisioning import materialize_device
from repro.core.report import AttestationReport, FailureReason, Verdict
from repro.core.swarm import map_sharded
from repro.core.verifier import SachaVerifier
from repro.errors import FleetError, ReproError
from repro.fleet.store import DeviceRecord, FleetStore
from repro.net.channel import Channel, LatencyModel
from repro.net.faults import FaultModel, FaultProfile
from repro.obs import log as obs_log
from repro.obs.exporters import registry_snapshot
from repro.obs.metrics import MetricsRegistry, use_context_registry
from repro.obs.spans import span
from repro.sim.events import Simulator
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)


@dataclass
class FleetDeviceOutcome:
    """One device's result within a sweep."""

    device_id: str
    report: AttestationReport
    tag: Optional[bytes] = None
    duration_ns: float = 0.0
    attempts: int = 1

    @property
    def verdict(self) -> Verdict:
        return self.report.verdict


@dataclass
class FleetSweepResult:
    """Everything one sweep produced, plus where it was persisted."""

    sweep_id: int
    outcomes: List[FleetDeviceOutcome] = field(default_factory=list)
    snapshot: Dict[str, dict] = field(default_factory=dict)

    def by_verdict(self, verdict: Verdict) -> List[str]:
        return [
            outcome.device_id
            for outcome in self.outcomes
            if outcome.verdict is verdict
        ]

    @property
    def accepted(self) -> List[str]:
        return self.by_verdict(Verdict.ACCEPT)

    @property
    def rejected(self) -> List[str]:
        return self.by_verdict(Verdict.REJECT)

    @property
    def inconclusive(self) -> List[str]:
        return self.by_verdict(Verdict.INCONCLUSIVE)

    @property
    def exit_code(self) -> int:
        """The single-device CLI contract, lifted to the fleet.

        The worst per-device outcome wins: 2 when any device is
        INCONCLUSIVE (the sweep must be re-run before the fleet's state
        is known), else 1 when any device is REJECTED, else 0.
        """
        if self.inconclusive:
            return 2
        if self.rejected:
            return 1
        return 0

    def explain(self) -> str:
        lines = [
            f"sweep {self.sweep_id}: {len(self.outcomes)} device(s) — "
            f"accept={len(self.accepted)} reject={len(self.rejected)} "
            f"inconclusive={len(self.inconclusive)}"
        ]
        for outcome in self.outcomes:
            detail = f"attempts={outcome.attempts}"
            if outcome.report.failure is not None:
                detail += f", {outcome.report.failure.describe()}"
            lines.append(
                f"  {outcome.device_id}: {outcome.verdict.value} ({detail})"
            )
        return "\n".join(lines)


class FleetController:
    """Runs persistent, sharded attestation sweeps over a FleetStore."""

    def __init__(
        self,
        store: FleetStore,
        fault_profile: Optional[FaultProfile] = None,
        profile_text: str = "",
        max_attempts: int = 3,
        channel_base_latency_ns: float = 5_000.0,
    ) -> None:
        if max_attempts < 1:
            raise FleetError(
                f"fleet sweeps need at least one attempt, got {max_attempts}"
            )
        self._store = store
        self._profile = fault_profile
        self._profile_text = profile_text
        self._max_attempts = max_attempts
        self._latency_ns = channel_base_latency_ns

    # -- one device ----------------------------------------------------------------

    def _attest_device(
        self, device: DeviceRecord, rng: DeterministicRng
    ) -> FleetDeviceOutcome:
        """Re-materialize and attest one device; failures fold inward."""
        try:
            return self._attest_device_inner(device, rng)
        except ReproError as exc:
            _log.warning(
                "fleet_device_failed", device_id=device.device_id, error=str(exc)
            )
            return FleetDeviceOutcome(
                device_id=device.device_id,
                report=AttestationReport.make_inconclusive(
                    FailureReason(
                        stage="fleet", kind=type(exc).__name__, detail=str(exc)
                    )
                ),
            )

    def _attest_device_inner(
        self, device: DeviceRecord, rng: DeterministicRng
    ) -> FleetDeviceOutcome:
        provisioned, record = materialize_device(
            device.part,
            device.device_id,
            seed=device.seed,
            key_mode=device.key_mode,
        )
        if not record.mac_key.compare_digest(device.key):
            return FleetDeviceOutcome(
                device_id=device.device_id,
                report=AttestationReport.make_inconclusive(
                    FailureReason(
                        stage="fleet",
                        kind="key_mismatch",
                        detail="re-derived device key does not match the "
                        "enrolled key material",
                    )
                ),
            )
        if device.tampered:
            # The registry models a compromised device: flip one static
            # frame bit after boot, exactly like the single-device CLI.
            frame = provisioned.system.partition.static_frame_list()[0]
            provisioned.board.fpga.memory.flip_bit(frame, 0, 0)
        simulator = Simulator()
        fault_model = (
            FaultModel(self._profile, rng.fork("faults"))
            if self._profile is not None and self._profile.is_active
            else None
        )
        channel = Channel(
            simulator,
            LatencyModel(base_ns=self._latency_ns),
            fault_model=fault_model,
        )
        verifier = SachaVerifier(
            record.system, record.mac_key, rng.fork("verifier")
        )
        session = NetworkAttestationSession(
            simulator,
            channel,
            provisioned.prover,
            verifier,
            rng.fork("session"),
            reliable=True,
            max_attempts=self._max_attempts,
        )
        result = session.run()
        return FleetDeviceOutcome(
            device_id=device.device_id,
            report=result.report,
            tag=session.tag,
            duration_ns=result.duration_ns,
            attempts=result.attempts,
        )

    # -- the sweep -----------------------------------------------------------------

    def attest(
        self,
        seed: int,
        limit: Optional[int] = None,
        workers: int = 1,
        devices: Optional[List[DeviceRecord]] = None,
    ) -> FleetSweepResult:
        """One persistent sweep: select, attest, record, snapshot.

        ``devices`` overrides the store's priority selection (tests and
        targeted re-attestation); otherwise
        :meth:`FleetStore.select_for_attestation` picks up to ``limit``
        devices, previously-inconclusive and stale ones first.
        """
        selected = (
            devices
            if devices is not None
            else self._store.select_for_attestation(limit)
        )
        if not selected:
            raise FleetError("no devices selected; enroll a fleet first")
        sweep_id = self._store.begin_sweep(
            seed, self._profile_text, workers, len(selected)
        )
        sweep_registry = MetricsRegistry(enabled=True)
        rng = DeterministicRng(seed)
        # Pre-forked per-device RNGs: verdicts, nonces and tags depend
        # only on (device, sweep seed), never on scheduling.
        device_rngs = [rng.fork(device.device_id) for device in selected]
        with use_context_registry(sweep_registry):
            queue_depth = sweep_registry.gauge(
                "sacha_fleet_queue_depth",
                "Devices awaiting attestation in the current sweep",
            )
            queue_depth.set(float(len(selected)))
            with span("fleet_sweep", sweep_id=sweep_id, devices=len(selected)):
                outcomes = map_sharded(
                    lambda index: self._attest_device(
                        selected[index], device_rngs[index]
                    ),
                    len(selected),
                    workers,
                    registry=sweep_registry,
                )
            verdicts = sweep_registry.counter(
                "sacha_fleet_attestations_total",
                "Fleet sweep attestation outcomes, by verdict",
                labels=("verdict",),
            )
            result = FleetSweepResult(sweep_id=sweep_id)
            for position, outcome in enumerate(outcomes):
                self._store.record_attestation(
                    sweep_id,
                    outcome.device_id,
                    outcome.report,
                    tag=outcome.tag,
                    duration_ns=outcome.duration_ns,
                    attempts=outcome.attempts,
                )
                verdicts.inc(verdict=outcome.verdict.value)
                queue_depth.set(float(len(selected) - position - 1))
                result.outcomes.append(outcome)
            sweep_registry.counter(
                "sacha_fleet_sweeps_total", "Completed fleet sweeps"
            ).inc()
        result.snapshot = registry_snapshot(sweep_registry)
        self._store.finish_sweep(sweep_id, result.snapshot)
        _log.info(
            "fleet_sweep_completed",
            sweep_id=sweep_id,
            devices=len(selected),
            accept=len(result.accepted),
            reject=len(result.rejected),
            inconclusive=len(result.inconclusive),
        )
        return result
