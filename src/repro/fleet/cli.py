"""``repro fleet`` — the control plane's ops surface.

Subcommands (all take ``--db PATH``, the SQLite registry file):

* ``enroll``  — provision N simulated devices and persist their records
  (part, seed, key mode, key material); ``--tamper`` marks the batch as
  compromised so sweeps exercise the REJECT path;
* ``attest``  — run one sweep over the registry (priority selection:
  previously-inconclusive and stale devices first) and exit with the
  worst per-device outcome: 0 all-accept, 2 any-inconclusive, 1
  any-reject — the single-device CLI contract lifted to the fleet;
* ``status``  — device table with last verdicts, fleet-wide verdict
  totals, and a telemetry rollup of the last sweep's stored snapshot;
* ``history`` — persisted attestation rows, newest first;
* ``health``  — evaluate the SLO rules over the last sweep's snapshot
  (exit 0 OK, 1 WARN, 2 CRIT).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path
from typing import Optional

from repro.fleet.controller import FleetController
from repro.fleet.store import DeviceRecord, FleetStore
from repro.utils.units import format_time_ns


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``fleet`` subcommand tree to ``parser``."""
    commands = parser.add_subparsers(dest="fleet_command", required=True)

    def add_db(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db",
            required=True,
            metavar="PATH",
            help="SQLite fleet registry file (created on first use)",
        )

    enroll = commands.add_parser(
        "enroll", help="provision and register simulated devices"
    )
    add_db(enroll)
    from repro.fpga.device import catalog

    enroll.add_argument(
        "--device",
        default="SIM-SMALL",
        choices=list(catalog()),
        help="device part for this batch (default: SIM-SMALL)",
    )
    enroll.add_argument(
        "--count", type=int, default=1, metavar="N",
        help="devices to enroll (default: 1)",
    )
    enroll.add_argument(
        "--seed", type=int, default=2019, metavar="BASE",
        help="provisioning seed base; device i uses BASE+i (default: 2019)",
    )
    enroll.add_argument(
        "--key-mode", default="puf", choices=["puf", "register"],
        help="key provisioning mode (default: puf)",
    )
    enroll.add_argument(
        "--prefix", default="dev", metavar="NAME",
        help="device id prefix (default: dev)",
    )
    enroll.add_argument(
        "--tamper", action="store_true",
        help="mark this batch compromised: one static frame bit is "
        "flipped on every re-materialization, so sweeps REJECT them",
    )

    attest = commands.add_parser(
        "attest", help="run one attestation sweep over the registry"
    )
    add_db(attest)
    attest.add_argument(
        "--seed", type=int, default=2019,
        help="sweep seed: per-device RNGs fork from it (default: 2019)",
    )
    attest.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="attest at most N devices, highest-need first (default: all)",
    )
    attest.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker shards; byte-identical to sequential "
        "(default: REPRO_SWARM_WORKERS)",
    )
    attest.add_argument(
        "--fault-profile", default=None, metavar="SPEC",
        help="named profile or key=value spec for every device's channel",
    )
    attest.add_argument(
        "--loss", type=float, default=None, metavar="P",
        help="per-frame loss probability (shorthand fault profile)",
    )
    attest.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="per-device session retries before INCONCLUSIVE (default: 3)",
    )
    attest.add_argument(
        "--snapshot-out",
        dest="fleet_snapshot_out",
        default=None,
        metavar="FILE",
        help="also write the sweep's merged registry snapshot to FILE",
    )

    status = commands.add_parser(
        "status", help="device table, verdict totals, last-sweep telemetry"
    )
    add_db(status)

    history = commands.add_parser(
        "history", help="persisted attestation rows, newest first"
    )
    add_db(history)
    history.add_argument(
        "--device", default=None, metavar="ID", help="one device's history"
    )
    history.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="show at most N rows (default: all)",
    )

    health = commands.add_parser(
        "health",
        help="SLO rules over the last sweep snapshot (exit 0/1/2)",
    )
    add_db(health)


def run(args: argparse.Namespace) -> int:
    handler = {
        "enroll": _command_enroll,
        "attest": _command_attest,
        "status": _command_status,
        "history": _command_history,
        "health": _command_health,
    }[args.fleet_command]
    with FleetStore(args.db) as store:
        return handler(args, store)


def _command_enroll(args: argparse.Namespace, store: FleetStore) -> int:
    from repro.core.provisioning import materialize_device

    if args.count < 1:
        print("fleet: --count must be >= 1")
        return 1
    start = store.device_count
    for index in range(args.count):
        device_id = f"{args.prefix}-{start + index:04d}"
        seed = args.seed + start + index
        _, record = materialize_device(
            args.device, device_id, seed=seed, key_mode=args.key_mode
        )
        store.enroll(
            DeviceRecord(
                device_id=device_id,
                part=args.device,
                seed=seed,
                key_mode=args.key_mode,
                key=record.mac_key,
                tampered=args.tamper,
            )
        )
        flag = " (tampered)" if args.tamper else ""
        print(f"enrolled {device_id}: {args.device} seed={seed}{flag}")
    print(f"fleet: {store.device_count} device(s) in {store.path}")
    return 0


def _parse_profile(args: argparse.Namespace):
    from repro.net.faults import FaultProfile

    profile: Optional[FaultProfile] = None
    text = ""
    if args.fault_profile:
        profile = FaultProfile.parse(args.fault_profile)
        text = args.fault_profile
    if args.loss is not None:
        profile = dataclasses.replace(
            profile or FaultProfile(), loss_probability=args.loss
        )
        text = (text + "," if text else "") + f"loss={args.loss}"
    return profile, text


def _command_attest(args: argparse.Namespace, store: FleetStore) -> int:
    profile, profile_text = _parse_profile(args)
    workers = args.workers
    if workers is None:
        from repro.perf import get_config

        workers = get_config().swarm_workers
    controller = FleetController(
        store,
        fault_profile=profile,
        profile_text=profile_text,
        max_attempts=args.max_attempts,
    )
    result = controller.attest(
        seed=args.seed, limit=args.limit, workers=max(workers, 1)
    )
    print(result.explain())
    counts = store.verdict_counts(result.sweep_id)
    print(
        f"sweep verdicts: accept={counts.get('accept', 0)} "
        f"reject={counts.get('reject', 0)} "
        f"inconclusive={counts.get('inconclusive', 0)}"
    )
    if args.fleet_snapshot_out:
        Path(args.fleet_snapshot_out).write_text(
            json.dumps(result.snapshot, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"wrote sweep snapshot to {args.fleet_snapshot_out}")
    return result.exit_code


def _command_status(args: argparse.Namespace, store: FleetStore) -> int:
    devices = store.devices()
    sweeps = store.sweeps()
    completed = [sweep for sweep in sweeps if sweep.completed]
    print(
        f"fleet: {len(devices)} device(s), {len(completed)} completed "
        f"sweep(s) in {store.path}"
    )
    last = store.last_outcomes()
    for device in devices:
        outcome = last.get(device.device_id)
        if outcome is None:
            state = "never attested"
        else:
            state = f"{outcome.verdict} (sweep {outcome.sweep_id})"
        tampered = " tampered" if device.tampered else ""
        print(
            f"  {device.device_id}  {device.part} seed={device.seed} "
            f"key={device.key_mode}{tampered}  last: {state}"
        )
    counts = store.verdict_counts()
    print(
        f"verdict totals: accept={counts.get('accept', 0)} "
        f"reject={counts.get('reject', 0)} "
        f"inconclusive={counts.get('inconclusive', 0)}"
    )
    snapshot = store.latest_snapshot()
    if snapshot is not None:
        from repro.obs.aggregate import rollup_snapshot_by_label

        sessions = rollup_snapshot_by_label(
            snapshot, "sacha_session_outcomes_total", "verdict"
        )
        if sessions:
            rollup = " ".join(
                f"{verdict}={int(total)}"
                for verdict, total in sessions.items()
            )
            print(f"last sweep session outcomes: {rollup}")
    return 0


def _command_history(args: argparse.Namespace, store: FleetStore) -> int:
    rows = store.history(device_id=args.device, limit=args.limit)
    if not rows:
        print("no attestations recorded")
        return 0
    for row in rows:
        line = (
            f"#{row.attestation_id} sweep={row.sweep_id} "
            f"device={row.device_id} verdict={row.verdict} "
            f"attempts={row.attempts} "
            f"duration={format_time_ns(row.duration_ns)}"
        )
        if row.tag_hex:
            line += f" tag={row.tag_hex[:16]}"
        if row.failure_kind:
            line += f" failure={row.failure_kind}@{row.failure_stage}"
        if row.mismatched_frames:
            preview = ",".join(str(f) for f in row.mismatched_frames[:5])
            line += f" frames=[{preview}]"
        print(line)
    return 0


def _command_health(args: argparse.Namespace, store: FleetStore) -> int:
    from repro.obs.health import evaluate_health, health_exit_code

    snapshot = store.latest_snapshot()
    if snapshot is None:
        print("fleet health: no completed sweeps with a stored snapshot")
        return 1
    report = evaluate_health(snapshot)
    print(report.explain())
    return health_exit_code(report)
