"""Fleet attestation control plane: persistent registry + sharded sweeps.

The single-session layers below (``repro.core.net_session`` drives one
device; ``repro.core.swarm`` sweeps an in-memory fleet) forget
everything when the process exits.  This package is the durable half a
control plane needs:

* :mod:`repro.fleet.store` — a SQLite device registry (key material,
  per-run attestation history, verdict/failure event rows) with
  versioned, idempotent migrations;
* :mod:`repro.fleet.controller` — sharded sweeps over
  ``NetworkAttestationSession``s, byte-identical to sequential runs,
  with every verdict and the merged metrics snapshot persisted;
* :mod:`repro.fleet.cli` — the ``repro fleet`` ops surface
  (enroll/attest/status/history/health).

See ``docs/FLEET.md``.
"""

from repro.fleet.controller import (
    FleetController,
    FleetDeviceOutcome,
    FleetSweepResult,
)
from repro.fleet.store import (
    MIGRATIONS,
    SCHEMA_VERSION,
    AttestationRow,
    DeviceRecord,
    FleetStore,
    Migration,
    SweepRow,
    migrate,
    schema_version,
)

__all__ = [
    "AttestationRow",
    "DeviceRecord",
    "FleetController",
    "FleetDeviceOutcome",
    "FleetStore",
    "FleetSweepResult",
    "MIGRATIONS",
    "Migration",
    "SCHEMA_VERSION",
    "SweepRow",
    "migrate",
    "schema_version",
]
