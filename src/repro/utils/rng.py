"""Deterministic randomness for reproducible simulations.

Every stochastic element in the library (PUF noise, channel jitter, nonce
generation, attack payloads) draws from a :class:`DeterministicRng` seeded
explicitly by the caller, so every experiment in EXPERIMENTS.md can be
regenerated bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with the handful of draws the library needs.

    Wraps :class:`random.Random` (Mersenne Twister) behind a narrow
    interface so the underlying generator can be swapped without touching
    call sites.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, label: str) -> "DeterministicRng":
        """Derive an independent stream identified by ``label``.

        Forking keeps subsystems (e.g. PUF noise vs channel jitter)
        decoupled: adding draws to one does not perturb the other.

        The derivation must be stable across processes — Python's
        built-in ``hash()`` is salted per interpreter, which would make
        two CLI invocations of the same seed disagree — so the child
        seed is taken from a SHA-256 of (seed, label).
        """
        material = f"{self._seed}:{label}".encode()
        derived = int.from_bytes(hashlib.sha256(material).digest()[:8], "big")
        return DeterministicRng(derived)

    def randbytes(self, count: int) -> bytes:
        if count < 0:
            raise ValueError(f"cannot draw {count} bytes")
        return self._random.getrandbits(count * 8).to_bytes(count, "big") if count else b""

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [low, high]."""
        return self._random.randint(low, high)

    def random(self) -> float:
        return self._random.random()

    def gauss(self, mean: float, sigma: float) -> float:
        return self._random.gauss(mean, sigma)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        return self._random.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        self._random.shuffle(items)

    def permutation(self, count: int) -> List[int]:
        """A uniformly random permutation of ``range(count)``."""
        order = list(range(count))
        self._random.shuffle(order)
        return order

    def sample(self, items: Sequence[T], count: int) -> List[T]:
        return self._random.sample(items, count)
