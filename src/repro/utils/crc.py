"""CRC implementations used by the network and bitstream substrates.

Three variants are needed:

* ``Crc32`` — IEEE 802.3 CRC-32, the Ethernet frame check sequence;
* ``Crc16Ccitt`` — CRC-16/CCITT-FALSE, used by the JTAG reference port;
* ``XilinxBitstreamCrc`` — the 32-bit CRC Xilinx configuration logic keeps
  over (register address, data word) pairs during bitstream loading.  The
  real polynomial is undocumented for most families; we use the standard
  CRC-32C (Castagnoli) polynomial over the 37-bit (address ‖ word) records,
  which preserves the structure of the check: it covers both payload and
  target register of every packet write.
"""

from __future__ import annotations

import zlib
from typing import Iterable, List


def _make_table(poly: int, width: int) -> List[int]:
    """Build a byte-at-a-time lookup table for a reflected CRC."""
    mask = (1 << width) - 1
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        table.append(crc & mask)
    return table


class Crc32:
    """IEEE 802.3 CRC-32 (reflected, init ``0xFFFFFFFF``, final XOR).

    Backed by :func:`zlib.crc32`, which implements exactly this CRC
    (same polynomial, init and final XOR), so the digest is bit-identical
    to the byte-at-a-time table loop it replaced — but runs in C.  The
    ARQ layer computes two CRCs per wire frame, which made the Python
    loop the single hottest function of a networked attestation.
    """

    def __init__(self) -> None:
        self._digest = 0

    def update(self, data: bytes) -> "Crc32":
        self._digest = zlib.crc32(data, self._digest)
        return self

    def digest(self) -> int:
        return self._digest

    def digest_bytes(self) -> bytes:
        """FCS as transmitted on the wire (little-endian)."""
        return self.digest().to_bytes(4, "little")


def crc32(data: bytes) -> int:
    """One-shot IEEE CRC-32 of ``data``."""
    return Crc32().update(data).digest()


class Crc16Ccitt:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, not reflected)."""

    def __init__(self) -> None:
        self._state = 0xFFFF

    def update(self, data: bytes) -> "Crc16Ccitt":
        state = self._state
        for byte in data:
            state ^= byte << 8
            for _ in range(8):
                if state & 0x8000:
                    state = ((state << 1) ^ 0x1021) & 0xFFFF
                else:
                    state = (state << 1) & 0xFFFF
        self._state = state
        return self

    def digest(self) -> int:
        return self._state


class XilinxBitstreamCrc:
    """Configuration-logic CRC over (register, word) records.

    Every word written through a configuration packet is folded into the
    CRC together with the 5-bit address of the register it targets, the
    same coverage the silicon implements.  Writing the expected value to
    the CRC register checks and resets the accumulator.
    """

    _TABLE = _make_table(0x82F63B78, 32)  # CRC-32C (Castagnoli), reflected

    def __init__(self) -> None:
        self._state = 0

    def reset(self) -> None:
        self._state = 0

    def feed(self, register: int, word: int) -> None:
        """Fold one 32-bit ``word`` written to config ``register`` (5 bit)."""
        if not 0 <= register < 32:
            raise ValueError(f"register address {register} does not fit in 5 bits")
        record = word.to_bytes(4, "big") + bytes([register])
        state = self._state
        table = self._TABLE
        for byte in record:
            state = (state >> 8) ^ table[(state ^ byte) & 0xFF]
        self._state = state

    def feed_words(self, register: int, words: Iterable[int]) -> None:
        for word in words:
            self.feed(register, word)

    def digest(self) -> int:
        return self._state

    def check(self, expected: int) -> bool:
        """Compare against ``expected`` and reset, as the CRC register does."""
        ok = self._state == expected
        self.reset()
        return ok
