"""Time, frequency and size units.

The whole timing model works in integer-friendly nanoseconds (floats are
allowed because the paper reports fractional-cycle durations such as
1 834 ns at 100 MHz).
"""

from __future__ import annotations

MHZ = 1_000_000
NS_PER_S = 1_000_000_000
NS_PER_MS = 1_000_000
NS_PER_US = 1_000


def period_ns(frequency_hz: float) -> float:
    """Clock period in nanoseconds for a frequency in Hz."""
    if frequency_hz <= 0:
        raise ValueError(f"frequency must be positive, got {frequency_hz}")
    return NS_PER_S / frequency_hz


def format_time_ns(duration_ns: float) -> str:
    """Render a nanosecond duration with the unit the paper would use."""
    if duration_ns >= NS_PER_S:
        return f"{duration_ns / NS_PER_S:.3f} s"
    if duration_ns >= NS_PER_MS:
        return f"{duration_ns / NS_PER_MS:.3f} ms"
    if duration_ns >= NS_PER_US:
        return f"{duration_ns / NS_PER_US:.3f} us"
    return f"{duration_ns:.0f} ns"


def format_bytes(count: int) -> str:
    """Human-readable byte count (binary units)."""
    if count < 0:
        raise ValueError(f"byte count must be non-negative, got {count}")
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.2f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")
