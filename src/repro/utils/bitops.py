"""Bit- and word-level helpers used across the FPGA and crypto substrates.

Configuration frames are streams of 32-bit big-endian words; the crypto
cores work on byte strings.  These helpers convert between the two views
and provide the small bit-twiddling vocabulary the rest of the library
builds on.
"""

from __future__ import annotations

from typing import Iterable, List

WORD_BITS = 32
WORD_BYTES = 4
WORD_MASK = 0xFFFFFFFF


def get_bit(value: int, index: int) -> int:
    """Return bit ``index`` (0 = LSB) of ``value`` as 0 or 1."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    return (value >> index) & 1


def set_bit(value: int, index: int, bit: int) -> int:
    """Return ``value`` with bit ``index`` forced to ``bit`` (0 or 1)."""
    if index < 0:
        raise ValueError(f"bit index must be non-negative, got {index}")
    if bit not in (0, 1):
        raise ValueError(f"bit must be 0 or 1, got {bit}")
    if bit:
        return value | (1 << index)
    return value & ~(1 << index)


def rotl32(value: int, amount: int) -> int:
    """Rotate a 32-bit word left by ``amount`` bits."""
    amount %= WORD_BITS
    value &= WORD_MASK
    return ((value << amount) | (value >> (WORD_BITS - amount))) & WORD_MASK


def bit_count(data: bytes) -> int:
    """Number of set bits in a byte string."""
    return sum(byte.bit_count() for byte in data)


def hamming_distance(left: bytes, right: bytes) -> int:
    """Number of differing bits between two equal-length byte strings."""
    if len(left) != len(right):
        raise ValueError(
            f"hamming distance needs equal lengths, got {len(left)} and {len(right)}"
        )
    return sum((a ^ b).bit_count() for a, b in zip(left, right))


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """Byte-wise XOR of two equal-length byte strings."""
    if len(left) != len(right):
        raise ValueError(f"xor needs equal lengths, got {len(left)} and {len(right)}")
    return bytes(a ^ b for a, b in zip(left, right))


def bytes_to_words(data: bytes) -> List[int]:
    """Split a byte string into big-endian 32-bit words.

    The length must be a multiple of four: configuration frames are always
    whole numbers of words.
    """
    if len(data) % WORD_BYTES:
        raise ValueError(f"length {len(data)} is not a multiple of {WORD_BYTES}")
    return [
        int.from_bytes(data[i : i + WORD_BYTES], "big")
        for i in range(0, len(data), WORD_BYTES)
    ]


def words_to_bytes(words: Iterable[int]) -> bytes:
    """Concatenate 32-bit words into a big-endian byte string."""
    out = bytearray()
    for word in words:
        if not 0 <= word <= WORD_MASK:
            raise ValueError(f"word {word:#x} does not fit in 32 bits")
        out += word.to_bytes(WORD_BYTES, "big")
    return bytes(out)
