"""Shared low-level utilities: bit manipulation, CRCs, RNG, units."""

from repro.utils.bitops import (
    bit_count,
    bytes_to_words,
    get_bit,
    hamming_distance,
    rotl32,
    set_bit,
    words_to_bytes,
    xor_bytes,
)
from repro.utils.crc import Crc16Ccitt, Crc32, XilinxBitstreamCrc, crc32
from repro.utils.rng import DeterministicRng
from repro.utils.secret import SecretBytes, redact
from repro.utils.units import MHZ, format_bytes, format_time_ns, period_ns

__all__ = [
    "bit_count",
    "bytes_to_words",
    "get_bit",
    "hamming_distance",
    "rotl32",
    "set_bit",
    "words_to_bytes",
    "xor_bytes",
    "Crc16Ccitt",
    "Crc32",
    "XilinxBitstreamCrc",
    "crc32",
    "DeterministicRng",
    "SecretBytes",
    "redact",
    "MHZ",
    "format_bytes",
    "format_time_ns",
    "period_ns",
]
