"""Opaque container for key material.

SACHa's MAC key must exist in exactly three places: the prover's key
register, the verifier's enrollment record, and the CMAC engines keyed
from them.  Everything that *holds* a key therefore wraps it in
:class:`SecretBytes`: the repr/str is an opaque ``<secret[16]>`` (so an
accidental ``f"{record}"`` or structured-log kwarg cannot leak it), the
raw bytes come out only through an explicit, greppable ``reveal()``
call, and equality against other secrets is constant-time.

The whole-program linter (SACHA006) treats ``SecretBytes(...)`` and
``redact(...)`` as the sanctioned taint boundaries; ``reveal()`` is a
taint *source*, so a revealed key is tracked again from that point on.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Union


def redact(value: object) -> str:
    """A loggable placeholder for a sensitive value.

    Carries the length (useful for debugging truncation) but nothing
    derived from the content.
    """
    try:
        size = len(value)  # type: ignore[arg-type]
    except TypeError:
        return "<redacted>"
    return f"<redacted[{size}]>"


class SecretBytes:
    """Immutable byte string with an opaque repr and explicit reveal.

    ``bytes(secret)`` raises on purpose — the implicit path back to raw
    bytes is exactly the accident this type exists to prevent.
    """

    __slots__ = ("_value",)

    def __init__(self, value: Union[bytes, bytearray, "SecretBytes"]) -> None:
        if isinstance(value, SecretBytes):
            self._value: bytes = value._value
        elif isinstance(value, (bytes, bytearray)):
            self._value = bytes(value)
        else:
            raise TypeError(
                f"SecretBytes wraps bytes, not {type(value).__name__}"
            )

    @classmethod
    def fromhex(cls, text: str) -> "SecretBytes":
        return cls(bytes.fromhex(text))

    def reveal(self) -> bytes:
        """The raw secret.  Every call site is a greppable decision."""
        return self._value

    def compare_digest(self, other: Union[bytes, "SecretBytes"]) -> bool:
        """Constant-time equality against raw bytes or another secret."""
        if isinstance(other, SecretBytes):
            other = other._value
        return hmac.compare_digest(self._value, other)

    def __len__(self) -> int:
        return len(self._value)

    def __repr__(self) -> str:
        return f"<secret[{len(self._value)}]>"

    __str__ = __repr__

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SecretBytes):
            return hmac.compare_digest(self._value, other._value)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Not the salted builtin hash (SACHA001: process-dependent);
        # derived from the value so frozen dataclasses stay hashable.
        digest = hashlib.sha256(b"repro.SecretBytes:" + self._value).digest()
        return int.from_bytes(digest[:8], "big")

    def __bytes__(self) -> bytes:
        raise TypeError(
            "implicit bytes(SecretBytes) is forbidden; call .reveal()"
        )

    def __bool__(self) -> bool:
        return bool(self._value)
