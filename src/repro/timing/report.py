"""Table 3 and Table 4 report generation.

These builders return structured rows (and render ASCII tables via
``repro.analysis.tables``) matching the layout of the paper's tables, so
the benchmark harness can print paper-vs-reproduced side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.fpga.device import DevicePart, XC6VLX240T
from repro.timing.model import (
    ActionCounts,
    ActionTimingModel,
    ProtocolAction,
    action_totals_ns,
    sacha_action_counts,
    theoretical_duration_ns,
)
from repro.timing.network import LAB_NETWORK, NetworkModel, measured_duration_ns
from repro.utils.units import format_time_ns

#: Table 3 of the paper, verbatim (ns), for paper-vs-model comparison.
PAPER_TABLE3_NS: Dict[ProtocolAction, float] = {
    ProtocolAction.A1: 8_856.0,
    ProtocolAction.A2: 1_834.0,
    ProtocolAction.A3: 13_616.0,
    ProtocolAction.A4: 24_044.0,
    ProtocolAction.A5: 120.0,
    ProtocolAction.A6: 128.0,
    ProtocolAction.A7: 136.0,
    ProtocolAction.A8: 2_928.0,
    ProtocolAction.A9: 344.0,
    ProtocolAction.A10: 472.0,
}

#: Table 4 of the paper: counts and per-action totals (s), plus the two
#: bottom-line durations.
PAPER_TABLE4_COUNTS: Dict[ProtocolAction, int] = {
    ProtocolAction.A1: 26_400,
    ProtocolAction.A2: 26_400,
    ProtocolAction.A3: 28_488,
    ProtocolAction.A4: 28_488,
    ProtocolAction.A5: 1,
    ProtocolAction.A6: 28_488,
    ProtocolAction.A7: 1,
    ProtocolAction.A8: 28_488,
    ProtocolAction.A9: 1,
    ProtocolAction.A10: 1,
}
PAPER_THEORETICAL_S = 1.443
PAPER_MEASURED_S = 28.5


@dataclass(frozen=True)
class Table3Row:
    action: ProtocolAction
    model_ns: float
    paper_ns: Optional[float]

    @property
    def matches_paper(self) -> bool:
        if self.paper_ns is None:
            return True
        return abs(self.model_ns - self.paper_ns) < 0.5


def table3_rows(device: DevicePart = XC6VLX240T) -> List[Table3Row]:
    """Reproduced Table 3, with the paper's column when applicable."""
    model = ActionTimingModel(device)
    include_paper = device.name == XC6VLX240T.name
    return [
        Table3Row(
            action=action,
            model_ns=model.action_ns(action),
            paper_ns=PAPER_TABLE3_NS[action] if include_paper else None,
        )
        for action in ProtocolAction
    ]


@dataclass(frozen=True)
class Table4Row:
    action: ProtocolAction
    count: int
    total_ns: float


@dataclass(frozen=True)
class Table4Report:
    rows: List[Table4Row]
    theoretical_ns: float
    measured_ns: float
    network_name: str

    @property
    def theoretical_s(self) -> float:
        return self.theoretical_ns / 1e9

    @property
    def measured_s(self) -> float:
        return self.measured_ns / 1e9

    def summary(self) -> str:
        return (
            f"theoretical {format_time_ns(self.theoretical_ns)}; "
            f"measured ({self.network_name} network) "
            f"{format_time_ns(self.measured_ns)}"
        )


def table4_report(
    device: DevicePart = XC6VLX240T,
    counts: Optional[ActionCounts] = None,
    network: NetworkModel = LAB_NETWORK,
) -> Table4Report:
    """Reproduced Table 4 for a device (defaults: the paper's setup)."""
    model = ActionTimingModel(device)
    if counts is None:
        if device.name != XC6VLX240T.name:
            raise ValueError(
                f"no default action counts for {device.name}; pass counts"
            )
        counts = sacha_action_counts(dynamic_frames=26_400, total_frames=28_488)
    rows = [
        Table4Row(action=action, count=count, total_ns=total)
        for action, count, total in action_totals_ns(model, counts)
    ]
    theoretical = theoretical_duration_ns(model, counts)
    measured = measured_duration_ns(theoretical, network, counts)
    return Table4Report(
        rows=rows,
        theoretical_ns=theoretical,
        measured_ns=measured,
        network_name=network.name,
    )
