"""Network-overhead models: the gap between 1.443 s and 28.5 s.

Section 7.1: the theoretical protocol duration is 1.443 s but the lab
measurement is 28.5 s, "dominated by the delay of the network
communication" because the protocol consists of tens of thousands of
individual command steps.  With 26,400 config + 28,488 readback + 1
checksum commands, the paper's own numbers imply

    (28.5 s − 1.443 s) / 54,889 commands ≈ 493 µs per command

of host-stack/switch round-trip overhead — a perfectly ordinary LAN
request/response turnaround.  :data:`LAB_NETWORK` encodes exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.model import ActionCounts

#: Calibrated per-command overhead of the paper's lab network (ns).
LAB_PER_COMMAND_OVERHEAD_NS = 492_955.0


@dataclass(frozen=True)
class NetworkModel:
    """Per-command overhead beyond serialized bytes."""

    name: str
    per_command_overhead_ns: float

    def __post_init__(self) -> None:
        if self.per_command_overhead_ns < 0:
            raise ValueError(
                f"network overhead must be non-negative, "
                f"got {self.per_command_overhead_ns}"
            )

    def overhead_ns(self, counts: ActionCounts) -> float:
        return self.per_command_overhead_ns * counts.total_commands()


#: The idealized network of the "theoretical duration" row.
IDEAL_NETWORK = NetworkModel("ideal", 0.0)

#: The lab network of the "measured duration" row (≈493 µs per command).
LAB_NETWORK = NetworkModel("lab", LAB_PER_COMMAND_OVERHEAD_NS)

#: A WAN-ish network for ablations (10 ms RTT per command).
WAN_NETWORK = NetworkModel("wan", 10_000_000.0)


def measured_duration_ns(
    theoretical_ns: float, network: NetworkModel, counts: ActionCounts
) -> float:
    """Protocol duration including network overhead."""
    return theoretical_ns + network.overhead_ns(counts)
