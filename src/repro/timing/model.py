"""Per-action timing model (Table 3).

The paper decomposes one protocol run into ten low-level actions A1–A10
and reports their durations on the XC6VLX240T proof of concept.  The
model below expresses each action as a formula over device parameters
(frame size, clock periods, Ethernet overheads) with constants calibrated
on the paper's measurements; at the paper's parameters every formula
reproduces Table 3 to the nanosecond, and on scaled devices the formulas
scale the physically scaling parts (payload sizes) while keeping the
fixed parts fixed.

Derivations (F = frame bytes = 324 on the XC6VLX240T; GbE = 8 ns/byte;
ICAP = 10 ns/cycle; TX = 8 ns/cycle):

* **A1** Vrf sends ``ICAP_config``: (F + 45) B on the wire (7 B command
  header + 38 B Ethernet overhead), at an effective 3× the GbE byte time
  — the measured verifier-host driver/ingest factor.  (324+45)·24 = 8,856.
* **A2** Prv performs ``ICAP_config``: frame words plus 102.4 cycles of
  FSM/CDC/BRAM staging overhead on the 100 MHz ICAP clock.
  (81+102.4)·10 = 1,834.
* **A3** Vrf sends ``ICAP_readback``: fixed-size command, dominated by
  verifier-host command turnaround — constant 13,616.
* **A4** Prv performs ``ICAP_readback``: 4 ICAP cycles per word (read,
  FIFO push, CDC, FIFO pop) plus 2,080.4 cycles of per-frame readback
  command sequence.  (4·81+2080.4)·10 = 24,044.
* **A5/A7** MAC init/finalize: fixed 15/17 TX cycles → 120/136.
* **A6** MAC update: the CMAC pipeline streams concurrently with the
  readback; the non-overlapped tail is 16 TX cycles → 128.
* **A8** frame sendback: (F + 42) B at GbE → (324+42)·8 = 2,928.
* **A9** Vrf sends ``MAC_checksum``: fixed 43 B at GbE → 344.
* **A10** MAC sendback: (16-byte tag + 43 B overhead) at GbE → 472.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.fpga.device import DevicePart

GBE_NS_PER_BYTE = 8.0
ICAP_NS_PER_CYCLE = 10.0
TX_NS_PER_CYCLE = 8.0

#: Calibrated constants (see module docstring for the derivations).
VRF_SEND_FACTOR = 3.0
CONFIG_CMD_OVERHEAD_BYTES = 45
ICAP_WRITE_OVERHEAD_CYCLES = 102.4
READBACK_CMD_NS = 13_616.0
ICAP_READ_CYCLES_PER_WORD = 4
ICAP_READ_OVERHEAD_CYCLES = 2_080.4
MAC_INIT_CYCLES = 15
MAC_UPDATE_TAIL_CYCLES = 16
MAC_FINALIZE_CYCLES = 17
SENDBACK_OVERHEAD_BYTES = 42
CHECKSUM_CMD_NS = 344.0
MAC_TAG_BYTES = 16
MAC_SENDBACK_OVERHEAD_BYTES = 43


class ProtocolAction(enum.Enum):
    """The ten low-level actions of Table 3."""

    A1 = ("A1", "Vrf sends ICAP_config")
    A2 = ("A2", "Prv performs ICAP_config")
    A3 = ("A3", "Vrf sends ICAP_readback")
    A4 = ("A4", "Prv performs ICAP_readback")
    A5 = ("A5", "Prv performs MAC init")
    A6 = ("A6", "Prv performs MAC update")
    A7 = ("A7", "Prv performs MAC finalize")
    A8 = ("A8", "Prv performs frame sendback")
    A9 = ("A9", "Vrf sends MAC_checksum")
    A10 = ("A10", "Prv performs MAC sendback")

    def __init__(self, code: str, description: str) -> None:
        self.code = code
        self.description = description


@dataclass(frozen=True)
class ActionTimingModel:
    """Durations of the protocol actions for one device."""

    device: DevicePart

    def action_ns(self, action: ProtocolAction) -> float:
        frame_bytes = self.device.frame_bytes
        words = self.device.words_per_frame
        if action is ProtocolAction.A1:
            return (
                (frame_bytes + CONFIG_CMD_OVERHEAD_BYTES)
                * GBE_NS_PER_BYTE
                * VRF_SEND_FACTOR
            )
        if action is ProtocolAction.A2:
            return (words + ICAP_WRITE_OVERHEAD_CYCLES) * ICAP_NS_PER_CYCLE
        if action is ProtocolAction.A3:
            return READBACK_CMD_NS
        if action is ProtocolAction.A4:
            return (
                words * ICAP_READ_CYCLES_PER_WORD + ICAP_READ_OVERHEAD_CYCLES
            ) * ICAP_NS_PER_CYCLE
        if action is ProtocolAction.A5:
            return MAC_INIT_CYCLES * TX_NS_PER_CYCLE
        if action is ProtocolAction.A6:
            return MAC_UPDATE_TAIL_CYCLES * TX_NS_PER_CYCLE
        if action is ProtocolAction.A7:
            return MAC_FINALIZE_CYCLES * TX_NS_PER_CYCLE
        if action is ProtocolAction.A8:
            return (frame_bytes + SENDBACK_OVERHEAD_BYTES) * GBE_NS_PER_BYTE
        if action is ProtocolAction.A9:
            return CHECKSUM_CMD_NS
        if action is ProtocolAction.A10:
            return (
                MAC_TAG_BYTES + MAC_SENDBACK_OVERHEAD_BYTES
            ) * GBE_NS_PER_BYTE
        raise ValueError(f"unknown action {action!r}")

    def all_actions_ns(self) -> Dict[ProtocolAction, float]:
        return {action: self.action_ns(action) for action in ProtocolAction}

    # -- derived protocol-step costs -----------------------------------------

    def config_step_ns(self) -> float:
        """One ICAP_config command end to end (A1 + A2)."""
        return self.action_ns(ProtocolAction.A1) + self.action_ns(ProtocolAction.A2)

    def readback_step_ns(self) -> float:
        """One ICAP_readback command end to end (A3 + A4 + A6 + A8)."""
        return (
            self.action_ns(ProtocolAction.A3)
            + self.action_ns(ProtocolAction.A4)
            + self.action_ns(ProtocolAction.A6)
            + self.action_ns(ProtocolAction.A8)
        )

    def masked_readback_send_ns(self) -> float:
        """A3 variant: the command carries the frame's Msk (Section 6.1:
        "the Msk values for each frame would need to be sent from Vrf to
        Prv")."""
        return (
            READBACK_CMD_NS
            + self.device.frame_bytes * GBE_NS_PER_BYTE * VRF_SEND_FACTOR
        )

    def masked_ack_ns(self) -> float:
        """A8 variant: a 5-byte acknowledgement instead of the frame."""
        return (5 + SENDBACK_OVERHEAD_BYTES) * GBE_NS_PER_BYTE

    def masked_readback_step_ns(self) -> float:
        """One masked-readback command end to end."""
        return (
            self.masked_readback_send_ns()
            + self.action_ns(ProtocolAction.A4)
            + self.action_ns(ProtocolAction.A6)
            + self.masked_ack_ns()
        )

    def checksum_step_ns(self) -> float:
        """The final MAC_checksum exchange (A9 + A7 + A10)."""
        return (
            self.action_ns(ProtocolAction.A9)
            + self.action_ns(ProtocolAction.A7)
            + self.action_ns(ProtocolAction.A10)
        )


@dataclass(frozen=True)
class ActionCounts:
    """How many times each action runs in one protocol execution
    (Table 4's middle column)."""

    config_steps: int
    readback_steps: int

    def count(self, action: ProtocolAction) -> int:
        if action in (ProtocolAction.A1, ProtocolAction.A2):
            return self.config_steps
        if action in (
            ProtocolAction.A3,
            ProtocolAction.A4,
            ProtocolAction.A6,
            ProtocolAction.A8,
        ):
            return self.readback_steps
        return 1

    def total_commands(self) -> int:
        """Verifier → prover commands in one run (for network overhead)."""
        return self.config_steps + self.readback_steps + 1


def sacha_action_counts(
    dynamic_frames: int, total_frames: int, readback_repeats: int = 1
) -> ActionCounts:
    """The paper's counts: one config per DynMem frame, one readback per
    device frame (26,400 and 28,488 on the XC6VLX240T)."""
    if dynamic_frames < 0 or total_frames <= 0:
        raise ValueError("frame counts must be positive")
    if readback_repeats < 1:
        raise ValueError("readback must cover every frame at least once")
    return ActionCounts(
        config_steps=dynamic_frames,
        readback_steps=total_frames * readback_repeats,
    )


def theoretical_duration_ns(
    model: ActionTimingModel, counts: ActionCounts
) -> float:
    """Σ action-time × count — the paper's 1.443 s."""
    return sum(
        model.action_ns(action) * counts.count(action) for action in ProtocolAction
    )


def action_totals_ns(
    model: ActionTimingModel, counts: ActionCounts
) -> List[tuple]:
    """(action, count, total ns) rows — the body of Table 4."""
    return [
        (action, counts.count(action), model.action_ns(action) * counts.count(action))
        for action in ProtocolAction
    ]
