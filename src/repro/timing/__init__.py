"""Timing layer: per-action model (Table 3), protocol totals (Table 4),
network-overhead models (the 1.443 s → 28.5 s gap)."""

from repro.timing.model import (
    ActionCounts,
    ActionTimingModel,
    ProtocolAction,
    action_totals_ns,
    sacha_action_counts,
    theoretical_duration_ns,
)
from repro.timing.network import (
    IDEAL_NETWORK,
    LAB_NETWORK,
    LAB_PER_COMMAND_OVERHEAD_NS,
    WAN_NETWORK,
    NetworkModel,
    measured_duration_ns,
)
from repro.timing.report import (
    PAPER_MEASURED_S,
    PAPER_TABLE3_NS,
    PAPER_TABLE4_COUNTS,
    PAPER_THEORETICAL_S,
    Table3Row,
    Table4Report,
    Table4Row,
    table3_rows,
    table4_report,
)

__all__ = [
    "ActionCounts",
    "ActionTimingModel",
    "ProtocolAction",
    "action_totals_ns",
    "sacha_action_counts",
    "theoretical_duration_ns",
    "IDEAL_NETWORK",
    "LAB_NETWORK",
    "LAB_PER_COMMAND_OVERHEAD_NS",
    "WAN_NETWORK",
    "NetworkModel",
    "measured_duration_ns",
    "PAPER_MEASURED_S",
    "PAPER_TABLE3_NS",
    "PAPER_TABLE4_COUNTS",
    "PAPER_THEORETICAL_S",
    "Table3Row",
    "Table4Report",
    "Table4Row",
    "table3_rows",
    "table4_report",
]
