"""``sachalint`` — domain-aware static analysis for the SACHa reproduction.

The Python type system cannot see the invariants SACHa's security
argument rests on: attestation runs must be bit-for-bit reproducible
across processes, MAC comparisons must not leak timing, and the crypto
layer must stay free of network or observability dependencies.  Each of
those has already bitten this repo (``DeterministicRng.fork`` once used
the per-process salted ``hash()``; the verifier compared tags with
``==``), so the checks live here as AST rules rather than in reviewers'
heads.

Five per-file rule families ship by default:

* ``SACHA001`` determinism — no wall clock or unseeded randomness;
* ``SACHA002`` constant-time crypto — tags compared via ``compare_digest``;
* ``SACHA003`` mutable defaults — the ``SessionOptions`` bug class;
* ``SACHA004`` import layering — the declared layer DAG;
* ``SACHA005`` threading discipline — executors confined to the swarm.

Three whole-program rules run with ``repro lint --program``, over a
shared :class:`ProjectModel` (import graph, call graph, def-use
summaries) built from the same parse set as the per-file tier:

* ``SACHA006`` secret taint — key/nonce material never reaches logs,
  telemetry, exceptions, repr/hex, or unsanctioned SQLite columns;
* ``SACHA007`` lock discipline — guarded attributes guarded at every
  write, locks acquired in one global order;
* ``SACHA008`` wire consistency — one encoder and one decoder per
  opcode, byte layouts agreeing between the two.

Entry points: ``repro lint`` on the command line, :func:`run_lint` from
code, :func:`lint_source` for checking a snippet, and
:func:`lint_program_sources` for the multi-file fixture tests.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import (
    LintResult,
    RuleTiming,
    lint_file,
    lint_program_sources,
    lint_source,
    run_lint,
)
from repro.lint.findings import Finding
from repro.lint.program import (
    ProgramRule,
    ProjectModel,
    all_program_rules,
    register_program,
)
from repro.lint.registry import Rule, all_rules, get_rule
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProgramRule",
    "ProjectModel",
    "Rule",
    "RuleTiming",
    "all_program_rules",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_program_sources",
    "lint_source",
    "register_program",
    "render_json",
    "render_text",
    "run_lint",
]
