"""``sachalint`` — domain-aware static analysis for the SACHa reproduction.

The Python type system cannot see the invariants SACHa's security
argument rests on: attestation runs must be bit-for-bit reproducible
across processes, MAC comparisons must not leak timing, and the crypto
layer must stay free of network or observability dependencies.  Each of
those has already bitten this repo (``DeterministicRng.fork`` once used
the per-process salted ``hash()``; the verifier compared tags with
``==``), so the checks live here as AST rules rather than in reviewers'
heads.

Five rule families ship by default:

* ``SACHA001`` determinism — no wall clock or unseeded randomness;
* ``SACHA002`` constant-time crypto — tags compared via ``compare_digest``;
* ``SACHA003`` mutable defaults — the ``SessionOptions`` bug class;
* ``SACHA004`` import layering — the declared layer DAG;
* ``SACHA005`` threading discipline — executors confined to the swarm.

Entry points: ``repro lint`` on the command line, :func:`run_lint` from
code, and :func:`lint_source` for checking a snippet (used by the
fixture tests).
"""

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import LintResult, lint_file, lint_source, run_lint
from repro.lint.findings import Finding
from repro.lint.registry import Rule, all_rules, get_rule
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "DEFAULT_CONFIG",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "get_rule",
    "lint_file",
    "lint_source",
    "render_json",
    "render_text",
    "run_lint",
]
