"""Argument handling for ``repro lint``.

Kept separate from :mod:`repro.cli` so the linter can run (and be
tested) without dragging in the rest of the command surface.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

from repro.lint.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import run_lint
from repro.lint.program import all_program_rules
from repro.lint.registry import all_rules
from repro.lint.reporters import render_json, render_text


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: the installed repro tree)",
    )
    parser.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        type=Path,
        default=None,
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} in the "
        "working directory or repo root, when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--program",
        action="store_true",
        help="also run the whole-program rules (SACHA006-008) over the "
        "scanned tree",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="append per-rule timing and file counts to the report",
    )


def default_paths() -> list:
    """The installed ``repro`` package tree."""
    import repro

    return [Path(repro.__file__).parent]


def _default_baseline_path() -> Optional[Path]:
    import repro

    candidates = [
        Path.cwd() / DEFAULT_BASELINE_NAME,
        # src/repro/__init__.py -> repo root, for checkouts
        Path(repro.__file__).resolve().parents[2] / DEFAULT_BASELINE_NAME,
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None


def _list_rules(stream) -> int:
    for rule in all_rules():
        print(f"{rule.id}  {rule.title}", file=stream)
        print(f"    {rule.rationale}", file=stream)
    for program_rule in all_program_rules():
        print(
            f"{program_rule.id}  {program_rule.title}  [--program]",
            file=stream,
        )
        print(f"    {program_rule.rationale}", file=stream)
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute ``repro lint``; returns the process exit code."""
    if args.list_rules:
        return _list_rules(sys.stdout)

    config = DEFAULT_CONFIG
    if args.select:
        selected = frozenset(
            rule.strip().upper() for rule in args.select.split(",") if rule.strip()
        )
        config = LintConfig(select=selected)

    paths = args.paths or default_paths()
    missing = [path for path in paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"repro lint: no such path: {path}", file=sys.stderr)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        baseline_path = _default_baseline_path()

    if args.write_baseline:
        result = run_lint(paths, config, program=args.program)
        target = baseline_path or Path.cwd() / DEFAULT_BASELINE_NAME
        Baseline.from_findings(result.findings).save(target)
        print(
            f"sachalint: wrote {len(result.findings)} finding(s) to {target}"
        )
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        baseline = Baseline.load(baseline_path)

    result = run_lint(
        paths,
        config,
        baseline=baseline,
        program=args.program,
        collect_stats=args.stats,
    )
    report = (
        render_json(result) if args.format == "json" else render_text(result) + "\n"
    )
    if args.output:
        Path(args.output).write_text(report)
        if not result.clean:
            print(
                f"sachalint: {len(result.findings)} finding(s); "
                f"report written to {args.output}",
                file=sys.stderr,
            )
    else:
        sys.stdout.write(report)
    return result.exit_code
