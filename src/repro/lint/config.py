"""Lint configuration: the layer DAG and per-rule scoping.

Everything domain-specific the rules need is declared here rather than
hard-coded in the rule bodies, so adding a package or approving a new
threading site is a one-line, reviewable change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

#: The declared import DAG, by top-level package under ``repro``.
#: ``LAYER_DAG[layer]`` is the set of *other* repro layers that layer may
#: import (importing within your own layer is always allowed); ``None``
#: means unrestricted (the CLI and the public facade compose everything).
#: A layer absent from the map is unrestricted — new top-level packages
#: should be added here deliberately.
LAYER_DAG: Mapping[str, Optional[FrozenSet[str]]] = {
    # foundations — import nothing from repro
    "utils": frozenset(),
    "errors": frozenset(),
    "sim": frozenset(),
    # crypto is pure math plus the pluggable AES backends that repro.perf
    # provides (a deliberate, lazily-imported inversion).  It must never
    # see the network, the observability layer, or the simulator.
    "crypto": frozenset({"utils", "perf"}),
    "fpga": frozenset({"crypto", "utils", "errors"}),
    "design": frozenset({"crypto", "errors", "fpga", "utils"}),
    "obs": frozenset({"errors", "sim"}),
    "net": frozenset({"errors", "obs", "sim", "utils"}),
    "perf": frozenset({"crypto", "errors", "obs", "utils"}),
    "timing": frozenset({"fpga", "utils"}),
    "baselines": frozenset({"crypto", "errors", "fpga", "utils"}),
    "core": frozenset(
        {
            "crypto",
            "design",
            "errors",
            "fpga",
            "net",
            "obs",
            "perf",
            "sim",
            "timing",
            "utils",
        }
    ),
    "system": frozenset({"core", "crypto", "errors", "utils"}),
    # the fleet control plane composes sessions, persistence and
    # telemetry above core — it sits beside analysis, below the CLI
    "fleet": frozenset(
        {
            "core",
            "crypto",
            "design",
            "errors",
            "fpga",
            "net",
            "obs",
            "perf",
            "sim",
            "utils",
        }
    ),
    "attacks": frozenset(
        {"baselines", "core", "crypto", "design", "errors", "fpga", "utils"}
    ),
    "analysis": frozenset(
        {"attacks", "core", "design", "errors", "fpga", "sim", "timing", "utils"}
    ),
    # the linter itself stays at the bottom of the stack
    "lint": frozenset({"errors", "utils"}),
    # composition roots — unrestricted
    "cli": None,
    "__main__": None,
    "repro": None,  # the package facade (repro/__init__.py)
}

#: Standard-library modules a layer must never import, SACHA004's second
#: axis.  The simulator is single-threaded by construction — event order
#: IS the reproducibility guarantee — so threading anywhere under
#: ``repro.sim`` is a determinism bug, not a style issue.
FORBIDDEN_STDLIB: Mapping[str, FrozenSet[str]] = {
    "sim": frozenset({"threading", "concurrent", "multiprocessing"}),
    "crypto": frozenset({"threading", "concurrent", "multiprocessing"}),
}

#: Modules allowed to use ``threading`` / ``concurrent.futures``
#: (SACHA005).  The swarm executor owns parallelism; the metrics
#: registry holds the lock that makes its counters safe to update from
#: swarm workers.
THREADING_APPROVED: Tuple[str, ...] = (
    "repro/core/swarm.py",
    "repro/fleet/store.py",
    "repro/obs/metrics.py",
)

#: Paths where SACHA001 does not apply: the one sanctioned wall-clock
#: accessor (export metadata only — never span timing or protocol state).
DETERMINISM_EXEMPT: Tuple[str, ...] = ("repro/obs/wallclock.py",)

#: Path prefixes where SACHA002 applies.  MAC/tag/digest equality in
#: these trees must go through ``hmac.compare_digest``.  The baselines
#: package deliberately reproduces *other papers'* protocols and is out
#: of scope.
CONSTANT_TIME_PATHS: Tuple[str, ...] = (
    "repro/crypto/",
    "repro/core/",
    "repro/fleet/",
    "repro/net/arq.py",
    "repro/net/resequencer.py",
    "repro/system/",
)


@dataclass(frozen=True)
class LintConfig:
    """Immutable configuration for one lint run."""

    select: FrozenSet[str] = frozenset()  #: rule ids to run; empty = all
    layer_dag: Mapping[str, Optional[FrozenSet[str]]] = field(
        default_factory=lambda: LAYER_DAG
    )
    forbidden_stdlib: Mapping[str, FrozenSet[str]] = field(
        default_factory=lambda: FORBIDDEN_STDLIB
    )
    threading_approved: Tuple[str, ...] = THREADING_APPROVED
    determinism_exempt: Tuple[str, ...] = DETERMINISM_EXEMPT
    constant_time_paths: Tuple[str, ...] = CONSTANT_TIME_PATHS

    def selects(self, rule_id: str) -> bool:
        return not self.select or rule_id in self.select


DEFAULT_CONFIG = LintConfig()
