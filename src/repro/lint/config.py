"""Lint configuration: the layer DAG and per-rule scoping.

Everything domain-specific the rules need is declared here rather than
hard-coded in the rule bodies, so adding a package or approving a new
threading site is a one-line, reviewable change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Mapping, Optional, Tuple

#: The declared import DAG, by top-level package under ``repro``.
#: ``LAYER_DAG[layer]`` is the set of *other* repro layers that layer may
#: import (importing within your own layer is always allowed); ``None``
#: means unrestricted (the CLI and the public facade compose everything).
#: A layer absent from the map is unrestricted — new top-level packages
#: should be added here deliberately.
LAYER_DAG: Mapping[str, Optional[FrozenSet[str]]] = {
    # foundations — import nothing from repro
    "utils": frozenset(),
    "errors": frozenset(),
    "sim": frozenset(),
    # crypto is pure math plus the pluggable AES backends that repro.perf
    # provides (a deliberate, lazily-imported inversion).  It must never
    # see the network, the observability layer, or the simulator.
    "crypto": frozenset({"utils", "perf"}),
    "fpga": frozenset({"crypto", "utils", "errors"}),
    "design": frozenset({"crypto", "errors", "fpga", "utils"}),
    "obs": frozenset({"errors", "sim"}),
    "net": frozenset({"errors", "obs", "sim", "utils"}),
    "perf": frozenset({"crypto", "errors", "obs", "utils"}),
    # the artifact cache memoizes design builds: it may see the design
    # and fpga layers it caches plus config/metrics, never core or fleet
    # (which consume it) and never the network
    "cache": frozenset(
        {"crypto", "design", "errors", "fpga", "obs", "perf", "utils"}
    ),
    "timing": frozenset({"fpga", "utils"}),
    "baselines": frozenset({"crypto", "errors", "fpga", "utils"}),
    "core": frozenset(
        {
            "cache",
            "crypto",
            "design",
            "errors",
            "fpga",
            "net",
            "obs",
            "perf",
            "sim",
            "timing",
            "utils",
        }
    ),
    "system": frozenset({"core", "crypto", "errors", "utils"}),
    # the fleet control plane composes sessions, persistence and
    # telemetry above core — it sits beside analysis, below the CLI
    "fleet": frozenset(
        {
            "cache",
            "core",
            "crypto",
            "design",
            "errors",
            "fpga",
            "net",
            "obs",
            "perf",
            "sim",
            "utils",
        }
    ),
    "attacks": frozenset(
        {"baselines", "core", "crypto", "design", "errors", "fpga", "utils"}
    ),
    "analysis": frozenset(
        {"attacks", "core", "design", "errors", "fpga", "sim", "timing", "utils"}
    ),
    # the linter itself stays at the bottom of the stack
    "lint": frozenset({"errors", "utils"}),
    # composition roots — unrestricted
    "cli": None,
    "__main__": None,
    "repro": None,  # the package facade (repro/__init__.py)
}

#: Standard-library modules a layer must never import, SACHA004's second
#: axis.  The simulator is single-threaded by construction — event order
#: IS the reproducibility guarantee — so threading anywhere under
#: ``repro.sim`` is a determinism bug, not a style issue.
FORBIDDEN_STDLIB: Mapping[str, FrozenSet[str]] = {
    "sim": frozenset({"threading", "concurrent", "multiprocessing"}),
    "crypto": frozenset({"threading", "concurrent", "multiprocessing"}),
}

#: Modules allowed to use ``threading`` / ``concurrent.futures``
#: (SACHA005).  The swarm executor owns parallelism; the metrics
#: registry holds the lock that makes its counters safe to update from
#: swarm workers.
THREADING_APPROVED: Tuple[str, ...] = (
    "repro/cache/memo.py",
    "repro/core/swarm.py",
    "repro/fleet/store.py",
    "repro/obs/metrics.py",
)

#: Paths where SACHA001 does not apply: the one sanctioned wall-clock
#: accessor (export metadata only — never span timing or protocol state)
#: and the linter's own ``--stats`` timer (tool diagnostics, not part of
#: any reproducible artifact).
DETERMINISM_EXEMPT: Tuple[str, ...] = (
    "repro/obs/wallclock.py",
    "repro/lint/stats.py",
)

#: Path prefixes where SACHA002 applies.  MAC/tag/digest equality in
#: these trees must go through ``hmac.compare_digest``.  The baselines
#: package deliberately reproduces *other papers'* protocols and is out
#: of scope.
CONSTANT_TIME_PATHS: Tuple[str, ...] = (
    "repro/crypto/",
    "repro/core/",
    "repro/fleet/",
    "repro/net/arq.py",
    "repro/net/resequencer.py",
    "repro/system/",
)

# -- whole-program tier declarations (SACHA006-008) ---------------------------
#
# The interprocedural passes are configured here, exactly like the
# per-file rules: adding a taint source, a sanctioned SQLite column, or
# a new wire-header constant is a one-line reviewable edit, never a rule
# change.

#: SACHA006: calls whose return value *is* key material.  Matched by the
#: call's final name component, so ``provider.mac_key()``,
#: ``slot.derive_key(...)`` and ``secret.reveal()`` all seed KEY taint.
SECRET_SOURCE_CALLS: Tuple[str, ...] = (
    "enroll_device",
    "derive_key",
    "derive_mac_key",
    "mac_key",
    "reveal",
)

#: SACHA006: calls whose return value is a protocol nonce.
NONCE_SOURCE_CALLS: Tuple[str, ...] = ("new_nonce",)

#: SACHA006: attribute reads that carry KEY taint — unless every class
#: in the project that declares the attribute types it ``SecretBytes``
#: (the sanctioned opaque boundary).
SECRET_ATTR_NAMES: Tuple[str, ...] = ("mac_key", "key_hex")

#: SACHA006: attribute reads that carry NONCE taint.
NONCE_ATTR_NAMES: Tuple[str, ...] = ("nonce",)

#: SACHA006: dataclass fields with these names must not be raw
#: ``bytes``/``str`` — a default dataclass repr would print the secret.
SECRET_FIELD_NAMES: Tuple[str, ...] = ("mac_key", "key_hex")

#: SACHA006: calls that stop taint.  ``SecretBytes`` wraps (opaque
#: repr), ``redact`` replaces the value with a placeholder, and the
#: rest return values that cannot reconstruct the secret.
TAINT_SANITIZERS: Tuple[str, ...] = (
    "redact",
    "SecretBytes",
    "compare_digest",
    "len",
    "type",
    "bool",
    "id",
)

#: SACHA006: the only SQLite columns sanctioned to hold secret-derived
#: hex (the enrolled key and the per-attestation nonce/tag audit trail).
SQLITE_SECRET_COLUMNS: Tuple[str, ...] = ("key_hex", "nonce_hex", "tag_hex")

#: SACHA006: layers where ``hex()``/``repr()``/``str()`` of key material
#: is legitimate — the key's home, where MACs are computed.
TAINT_REPR_EXEMPT_LAYERS: Tuple[str, ...] = ("crypto",)

#: SACHA008: the wire-protocol module(s): OPCODE_* constants, encoders,
#: and the ``decode_*`` dispatchers all live here.
WIRE_PROTOCOL_MODULES: Tuple[str, ...] = ("repro/net/messages.py",)

#: SACHA008: modules holding derived header-size constants, and which
#: opcode's encoder each constant must agree with (constant = 1 opcode
#: byte + the encoder's fixed-width field bytes).
WIRE_HEADER_MODULES: Tuple[str, ...] = ("repro/net/batch.py",)
WIRE_HEADER_OPCODES: Mapping[str, str] = {
    "READBACK_BATCH_HEADER_BYTES": "OPCODE_ICAP_READBACK_BATCH",
    "CONFIG_BATCH_HEADER_BYTES": "OPCODE_ICAP_CONFIG_BATCH",
    "BATCH_RESPONSE_HEADER_BYTES": "OPCODE_READBACK_BATCH_RESPONSE",
}


@dataclass(frozen=True)
class LintConfig:
    """Immutable configuration for one lint run."""

    select: FrozenSet[str] = frozenset()  #: rule ids to run; empty = all
    layer_dag: Mapping[str, Optional[FrozenSet[str]]] = field(
        default_factory=lambda: LAYER_DAG
    )
    forbidden_stdlib: Mapping[str, FrozenSet[str]] = field(
        default_factory=lambda: FORBIDDEN_STDLIB
    )
    threading_approved: Tuple[str, ...] = THREADING_APPROVED
    determinism_exempt: Tuple[str, ...] = DETERMINISM_EXEMPT
    constant_time_paths: Tuple[str, ...] = CONSTANT_TIME_PATHS
    secret_source_calls: Tuple[str, ...] = SECRET_SOURCE_CALLS
    nonce_source_calls: Tuple[str, ...] = NONCE_SOURCE_CALLS
    secret_attr_names: Tuple[str, ...] = SECRET_ATTR_NAMES
    nonce_attr_names: Tuple[str, ...] = NONCE_ATTR_NAMES
    secret_field_names: Tuple[str, ...] = SECRET_FIELD_NAMES
    taint_sanitizers: Tuple[str, ...] = TAINT_SANITIZERS
    sqlite_secret_columns: Tuple[str, ...] = SQLITE_SECRET_COLUMNS
    taint_repr_exempt_layers: Tuple[str, ...] = TAINT_REPR_EXEMPT_LAYERS
    wire_protocol_modules: Tuple[str, ...] = WIRE_PROTOCOL_MODULES
    wire_header_modules: Tuple[str, ...] = WIRE_HEADER_MODULES
    wire_header_opcodes: Mapping[str, str] = field(
        default_factory=lambda: WIRE_HEADER_OPCODES
    )

    def selects(self, rule_id: str) -> bool:
        return not self.select or rule_id in self.select


DEFAULT_CONFIG = LintConfig()
