"""Rule base class, the per-file context, and the rule registry."""

from __future__ import annotations

import abc
import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.config import LintConfig
from repro.lint.findings import Finding


class FileContext:
    """Everything a rule may inspect about one source file."""

    def __init__(
        self,
        relpath: str,
        source: str,
        tree: ast.AST,
        config: LintConfig,
    ) -> None:
        self.relpath = relpath  #: posix path from the source root ("repro/...")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config

    @property
    def module(self) -> Optional[str]:
        """Dotted module name, e.g. ``repro.core.verifier``; ``None`` when
        the file does not live under a ``repro`` root."""
        parts = self.relpath.split("/")
        if parts[0] != "repro":
            return None
        if parts[-1] == "__init__.py":
            parts = parts[:-1]
        else:
            parts = parts[:-1] + [parts[-1][:-3]]
        return ".".join(parts)

    @property
    def layer(self) -> Optional[str]:
        """Top-level layer under ``repro``: ``repro/core/x.py`` → ``core``,
        ``repro/errors.py`` → ``errors``, ``repro/__init__.py`` → ``repro``."""
        module = self.module
        if module is None:
            return None
        segments = module.split(".")
        return segments[1] if len(segments) > 1 else segments[0]

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""

    def finding(
        self, node: ast.AST, rule: str, message: str, hint: str = ""
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        return Finding(
            path=self.relpath,
            line=line,
            column=column,
            rule=rule,
            message=message,
            hint=hint,
            line_text=self.line_text(line),
        )


class Rule(abc.ABC):
    """One invariant, checked file-by-file over the AST.

    Subclasses set the class attributes and implement :meth:`check`.
    ``rationale`` is surfaced by ``repro lint --list-rules`` and in the
    docs so the *why* travels with the rule.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Override to scope the rule to part of the tree."""
        return True

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""


_REGISTRY: Dict[str, Rule] = {}


def register(rule_class: type) -> type:
    """Class decorator: instantiate and index the rule by id."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"rule {rule_class.__name__} has no id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id}")
    _REGISTRY[rule.id] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered rule, ordered by id."""
    _ensure_builtin_rules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    return _REGISTRY[rule_id]


def _ensure_builtin_rules() -> None:
    """Import the built-in rule modules (registration is a side effect)."""
    import repro.lint.rules  # noqa: F401


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None
