"""Inline suppression directives.

Two forms, both comments:

* ``# sachalint: disable=SACHA001`` — suppresses the named rules (comma
  separated, or ``all``) on that physical line.  For a multi-line
  statement the directive goes on the line the finding points at (the
  statement's first line).
* ``# sachalint: disable-file=SACHA005`` — suppresses the named rules
  for the whole file, wherever the directive appears.

A suppression hides the finding but is counted, so reporters can show
how much is being waved through.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

from repro.lint.findings import Finding

_DIRECTIVE = re.compile(
    r"#\s*sachalint:\s*(?P<scope>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)

ALL = "all"


class Suppressions:
    """Parsed suppression directives for one file."""

    def __init__(self, source: str) -> None:
        self.by_line: Dict[int, FrozenSet[str]] = {}
        file_rules = set()
        for line_number, text in enumerate(source.splitlines(), start=1):
            match = _DIRECTIVE.search(text)
            if not match:
                continue
            rules = frozenset(
                rule.strip().upper() if rule.strip().lower() != ALL else ALL
                for rule in match.group("rules").split(",")
            )
            if match.group("scope") == "disable-file":
                file_rules.update(rules)
            else:
                self.by_line[line_number] = self.by_line.get(
                    line_number, frozenset()
                ) | rules
        self.file_level: FrozenSet[str] = frozenset(file_rules)

    def suppresses(self, finding: Finding) -> bool:
        for rules in (self.file_level, self.by_line.get(finding.line, frozenset())):
            if ALL in rules or finding.rule in rules:
                return True
        return False

    def apply(self, findings: Sequence[Finding]):
        """Split ``findings`` into (kept, suppressed_count)."""
        kept = [finding for finding in findings if not self.suppresses(finding)]
        return kept, len(findings) - len(kept)
