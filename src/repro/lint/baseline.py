"""The committed baseline of grandfathered findings.

A baseline lets the linter be adopted on a tree with pre-existing
findings: current violations are recorded once (``repro lint
--write-baseline``) and only *new* findings fail the build.  Entries are
keyed by :attr:`Finding.fingerprint` — rule id + path + offending line
text — so they survive renumbering but expire as soon as the flagged
line is edited, ratcheting the debt down over time.

The shipped tree is clean, so the committed ``.sachalint-baseline.json``
carries an empty finding list; the machinery exists for future
grandfathering and is exercised by the test suite.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".sachalint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding (``count`` collapses duplicates)."""

    fingerprint: str
    rule: str
    path: str
    message: str
    count: int = 1


class Baseline:
    """A multiset of grandfathered fingerprints."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries: List[BaselineEntry] = list(entries)

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        counts: Counter = Counter(finding.fingerprint for finding in findings)
        by_fingerprint: Dict[str, Finding] = {}
        for finding in findings:
            by_fingerprint.setdefault(finding.fingerprint, finding)
        entries = [
            BaselineEntry(
                fingerprint=fingerprint,
                rule=by_fingerprint[fingerprint].rule,
                path=by_fingerprint[fingerprint].path,
                message=by_fingerprint[fingerprint].message,
                count=count,
            )
            for fingerprint, count in sorted(counts.items())
        ]
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        payload = json.loads(Path(path).read_text())
        if payload.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path} (expected {BASELINE_VERSION})"
            )
        entries = [
            BaselineEntry(
                fingerprint=entry["fingerprint"],
                rule=entry["rule"],
                path=entry["path"],
                message=entry.get("message", ""),
                count=int(entry.get("count", 1)),
            )
            for entry in payload.get("findings", [])
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "fingerprint": entry.fingerprint,
                    "rule": entry.rule,
                    "path": entry.path,
                    "message": entry.message,
                    "count": entry.count,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.fingerprint)
                )
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def apply(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int, List[BaselineEntry]]:
        """Split findings into (new, baselined_count, stale_entries).

        Matching is multiset-wise per fingerprint: a baseline entry with
        ``count=2`` absorbs at most two findings with that fingerprint; a
        third is new.  Entries whose fingerprint no longer occurs at all
        are *stale* — the debt was paid and the baseline should be
        regenerated to shrink.
        """
        budget: Counter = Counter()
        for entry in self.entries:
            budget[entry.fingerprint] += entry.count
        seen: Counter = Counter()
        new: List[Finding] = []
        for finding in sorted(findings):
            seen[finding.fingerprint] += 1
            if budget[finding.fingerprint] > 0:
                budget[finding.fingerprint] -= 1
            else:
                new.append(finding)
        stale = [entry for entry in self.entries if seen[entry.fingerprint] == 0]
        baselined = len(findings) - len(new)
        return new, baselined, stale
