"""File collection, rule dispatch, suppression and baseline filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.findings import PARSE_ERROR_RULE, Finding
from repro.lint.registry import FileContext, all_rules
from repro.lint.suppressions import Suppressions


@dataclass
class LintResult:
    """Outcome of one lint run, after suppressions and baseline."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


def source_relpath(path: Path) -> str:
    """Path relative to the ``repro`` source root, as posix.

    The engine anchors on the last path component named ``repro`` so it
    works for the installed tree (``src/repro/...``), a checkout scanned
    from anywhere, and the temporary ``<tmp>/repro/...`` trees the tests
    build.  Files outside any ``repro`` root keep their filename only
    (module-scoped rules skip them).
    """
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1]


def lint_source(
    source: str,
    relpath: str,
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Finding]:
    """Lint one source string as if it lived at ``relpath``.

    Inline suppressions are honoured; the baseline is a run-level
    concern and is not applied here.
    """
    findings, _ = _lint_source_counted(source, relpath, config)
    return findings


def _lint_source_counted(source, relpath, config):
    """(kept findings, suppressed count) for one source string."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        parse_failure = Finding(
            path=relpath,
            line=exc.lineno or 1,
            column=(exc.offset or 0) + 1,
            rule=PARSE_ERROR_RULE,
            message=f"could not parse: {exc.msg}",
        )
        return [parse_failure], 0
    ctx = FileContext(relpath, source, tree, config)
    findings: List[Finding] = []
    for rule in all_rules():
        if not config.selects(rule.id):
            continue
        if not rule.applies_to(ctx):
            continue
        findings.extend(rule.check(ctx))
    kept, suppressed = Suppressions(source).apply(findings)
    return sorted(kept), suppressed


def lint_file(path: Path, config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    return lint_source(
        path.read_text(encoding="utf-8"), source_relpath(path), config
    )


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand directories into sorted ``*.py`` files."""
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    return collected


def run_lint(
    paths: Sequence[Path],
    config: LintConfig = DEFAULT_CONFIG,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``paths`` (files or directories) and filter via ``baseline``."""
    result = LintResult()
    raw: List[Finding] = []
    for path in collect_files(paths):
        source = path.read_text(encoding="utf-8")
        relpath = source_relpath(path)
        file_findings, suppressed = _lint_source_counted(source, relpath, config)
        raw.extend(file_findings)
        result.suppressed += suppressed
        result.files_scanned += 1
    if baseline is not None:
        new, baselined, stale = baseline.apply(raw)
        result.findings = new
        result.baselined = baselined
        result.stale_baseline = stale
    else:
        result.findings = sorted(raw)
    return result
