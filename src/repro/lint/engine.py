"""File collection, rule dispatch, suppression and baseline filtering.

Two tiers share one pass over the tree: every file is read and parsed
exactly once, the per-file rules run over each AST as it is parsed, and
``--program`` hands the same parsed set to :class:`ProjectModel` for
the interprocedural rules — no second read, no re-parse.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.lint.baseline import Baseline, BaselineEntry
from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.findings import PARSE_ERROR_RULE, Finding
from repro.lint.program import ProjectModel, all_program_rules
from repro.lint.registry import FileContext, all_rules
from repro.lint.suppressions import Suppressions


@dataclass
class RuleTiming:
    """Per-rule cost of one run (``repro lint --stats``)."""

    rule: str
    files: int
    findings: int
    seconds: float


@dataclass
class LintResult:
    """Outcome of one lint run, after suppressions and baseline."""

    findings: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    timings: List[RuleTiming] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1


class _Stats:
    """Accumulates per-rule timing across files; None-safe via _NO_STATS."""

    def __init__(self) -> None:
        self.enabled = True
        self._data: Dict[str, List[float]] = {}

    def clock(self) -> float:
        from repro.lint.stats import rule_clock

        return rule_clock()

    def add(self, rule: str, files: int, findings: int, seconds: float) -> None:
        row = self._data.setdefault(rule, [0, 0, 0.0])
        row[0] += files
        row[1] += findings
        row[2] += seconds

    def timings(self) -> List[RuleTiming]:
        return [
            RuleTiming(rule, int(row[0]), int(row[1]), float(row[2]))
            for rule, row in sorted(self._data.items())
        ]


class _NoStats(_Stats):
    def __init__(self) -> None:
        super().__init__()
        self.enabled = False

    def clock(self) -> float:
        return 0.0

    def add(self, rule: str, files: int, findings: int, seconds: float) -> None:
        pass


def source_relpath(path: Path) -> str:
    """Path relative to the ``repro`` source root, as posix.

    The engine anchors on the last path component named ``repro`` so it
    works for the installed tree (``src/repro/...``), a checkout scanned
    from anywhere, and the temporary ``<tmp>/repro/...`` trees the tests
    build.  Files outside any ``repro`` root keep their filename only
    (module-scoped rules skip them).
    """
    parts = path.as_posix().split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1]


def lint_source(
    source: str,
    relpath: str,
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Finding]:
    """Lint one source string as if it lived at ``relpath``.

    Inline suppressions are honoured; the baseline is a run-level
    concern and is not applied here.
    """
    findings, _ = _lint_source_counted(source, relpath, config)
    return findings


def _parse_failure(relpath: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=relpath,
        line=exc.lineno or 1,
        column=(exc.offset or 0) + 1,
        rule=PARSE_ERROR_RULE,
        message=f"could not parse: {exc.msg}",
    )


def _check_file(
    relpath: str,
    source: str,
    tree: ast.Module,
    config: LintConfig,
    stats: _Stats,
) -> List[Finding]:
    """Raw per-file findings (before suppressions)."""
    ctx = FileContext(relpath, source, tree, config)
    findings: List[Finding] = []
    for rule in all_rules():
        if not config.selects(rule.id):
            continue
        if not rule.applies_to(ctx):
            continue
        started = stats.clock()
        found = list(rule.check(ctx))
        stats.add(rule.id, 1, len(found), stats.clock() - started)
        findings.extend(found)
    return findings


def _lint_source_counted(source, relpath, config):
    """(kept findings, suppressed count) for one source string."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [_parse_failure(relpath, exc)], 0
    findings = _check_file(relpath, source, tree, config, _NoStats())
    kept, suppressed = Suppressions(source).apply(findings)
    return sorted(kept), suppressed


def lint_file(path: Path, config: LintConfig = DEFAULT_CONFIG) -> List[Finding]:
    return lint_source(
        path.read_text(encoding="utf-8"), source_relpath(path), config
    )


def collect_files(paths: Iterable[Path]) -> List[Path]:
    """Expand directories into sorted ``*.py`` files."""
    collected: List[Path] = []
    for path in paths:
        if path.is_dir():
            collected.extend(sorted(path.rglob("*.py")))
        else:
            collected.append(path)
    return collected


def _run_program_rules(
    parsed: Sequence[Tuple[str, str, ast.Module]],
    config: LintConfig,
    stats: _Stats,
) -> List[Finding]:
    """Raw whole-program findings over an already-parsed tree."""
    model = ProjectModel.from_parsed(parsed, config)
    findings: List[Finding] = []
    for rule in all_program_rules():
        if not config.selects(rule.id):
            continue
        started = stats.clock()
        found = list(rule.check(model))
        stats.add(rule.id, len(parsed), len(found), stats.clock() - started)
        findings.extend(found)
    return findings


def run_lint(
    paths: Sequence[Path],
    config: LintConfig = DEFAULT_CONFIG,
    baseline: Optional[Baseline] = None,
    program: bool = False,
    collect_stats: bool = False,
) -> LintResult:
    """Lint ``paths`` (files or directories) and filter via ``baseline``.

    ``program=True`` additionally runs the whole-program rules over the
    same parse set; ``collect_stats=True`` fills ``result.timings``.
    """
    result = LintResult()
    raw: List[Finding] = []
    stats: _Stats = _Stats() if collect_stats else _NoStats()
    parsed: List[Tuple[str, str, ast.Module]] = []
    suppressions: Dict[str, Suppressions] = {}
    for path in collect_files(paths):
        source = path.read_text(encoding="utf-8")
        relpath = source_relpath(path)
        result.files_scanned += 1
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raw.append(_parse_failure(relpath, exc))
            continue
        parsed.append((relpath, source, tree))
        file_suppressions = Suppressions(source)
        suppressions[relpath] = file_suppressions
        kept, suppressed = file_suppressions.apply(
            _check_file(relpath, source, tree, config, stats)
        )
        raw.extend(kept)
        result.suppressed += suppressed
    if program and parsed:
        for finding in _run_program_rules(parsed, config, stats):
            file_suppressions = suppressions.get(finding.path)
            if file_suppressions is not None and file_suppressions.suppresses(
                finding
            ):
                result.suppressed += 1
            else:
                raw.append(finding)
    if baseline is not None:
        new, baselined, stale = baseline.apply(raw)
        result.findings = sorted(new)
        result.baselined = baselined
        result.stale_baseline = stale
    else:
        result.findings = sorted(raw)
    if stats.enabled:
        result.timings = stats.timings()
    return result


def lint_program_sources(
    sources: Mapping[str, str],
    config: LintConfig = DEFAULT_CONFIG,
) -> List[Finding]:
    """Run only the whole-program rules over an in-memory tree.

    The fixture tests hand small multi-file virtual trees straight in;
    inline suppressions in the sources are honoured.
    """
    parsed = [
        (relpath, sources[relpath], ast.parse(sources[relpath]))
        for relpath in sorted(sources)
    ]
    raw = _run_program_rules(parsed, config, _NoStats())
    kept: List[Finding] = []
    cache: Dict[str, Suppressions] = {}
    for finding in raw:
        if finding.path in sources:
            if finding.path not in cache:
                cache[finding.path] = Suppressions(sources[finding.path])
            if cache[finding.path].suppresses(finding):
                continue
        kept.append(finding)
    return sorted(kept)
