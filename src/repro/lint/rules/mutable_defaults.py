"""SACHA003: no mutable default values, in signatures or dataclass fields.

Python evaluates a default once, at definition time; every call (and
every dataclass instance) then shares the object.  PR 2 shipped exactly
this bug: a shared ``SessionOptions`` default meant one networked run's
option mutations leaked into every later run.  The runtime only catches
the narrow ``list``/``dict``/``set``-instance case for dataclass fields,
and catches nothing for function signatures — so the linter does.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, dotted_name, register

_MUTABLE_CONSTRUCTORS = frozenset(
    {
        "list",
        "dict",
        "set",
        "bytearray",
        "defaultdict",
        "deque",
        "Counter",
        "OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "collections.Counter",
        "collections.OrderedDict",
    }
)

_HINT = (
    "default to None and build the object inside, or use "
    "dataclasses.field(default_factory=...)"
)


def _mutable_default(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    if isinstance(
        node,
        (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp),
    ):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = dotted_name(target)
        if name in ("dataclass", "dataclasses.dataclass"):
            return True
    return False


def _field_default(node: ast.AST) -> Optional[ast.AST]:
    """The ``default=`` argument of a ``field(...)`` call, if present."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted_name(node.func)
    if name not in ("field", "dataclasses.field"):
        return None
    for keyword in node.keywords:
        if keyword.arg == "default":
            return keyword.value
    return None


@register
class MutableDefaultsRule(Rule):
    id = "SACHA003"
    title = "no mutable function or dataclass-field defaults"
    rationale = (
        "defaults are evaluated once and shared by every call site; "
        "mutation then bleeds between runs (the PR 2 SessionOptions bug)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                yield from self._check_signature(ctx, node)
            elif isinstance(node, ast.ClassDef) and _is_dataclass(node):
                yield from self._check_dataclass(ctx, node)

    def _check_signature(self, ctx: FileContext, node) -> Iterator[Finding]:
        where = (
            f"in {node.name}()"
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            else "in lambda"
        )
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            if _mutable_default(default):
                yield ctx.finding(
                    default,
                    self.id,
                    f"mutable default {where} is shared by every call",
                    _HINT,
                )

    def _check_dataclass(
        self, ctx: FileContext, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign):
                value = statement.value
            elif isinstance(statement, ast.Assign):
                value = statement.value
            else:
                continue
            if value is None:
                continue
            candidate = _field_default(value) or value
            if _mutable_default(candidate):
                yield ctx.finding(
                    candidate,
                    self.id,
                    f"mutable default on dataclass {node.name} is shared "
                    "by every instance",
                    _HINT,
                )
