"""SACHA007: every lock-guarded attribute is guarded at every write.

The swarm executor fans attestation work out to threads, so the few
classes that own a ``threading.Lock`` (the metrics registry, the fleet
store) are the only shared mutable state in the system.  For each such
class this pass infers which instance attributes the lock guards — any
attribute mutated under ``with self._lock`` outside ``__init__`` — and
then reports:

* writes to a guarded attribute with no lock held (the classic
  check-then-act race),
* lock-order inversions (lock A held while acquiring B in one code
  path, B while acquiring A in another — a deadlock waiting for the
  right interleaving), including one level of call propagation, and
* mutation of another object's guarded attribute from a different
  module, when that module is reachable from a ``map_sharded`` worker
  (state that must only change through the owning class's methods).

``__init__`` is exempt: the object is not yet published to other
threads while it is being constructed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.program import (
    ClassInfo,
    FunctionInfo,
    ProgramRule,
    ProjectModel,
    dotted_tail,
    register_program,
)

#: method calls that mutate their receiver in place
_MUTATORS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "clear",
        "pop",
        "popitem",
        "update",
        "remove",
        "discard",
        "add",
        "setdefault",
        "sort",
    }
)

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})


@dataclass
class _Write:
    """One mutation of ``self.<attr>`` and the locks held at that point."""

    attr: str
    node: ast.AST
    held: Tuple[str, ...]  #: lock attr names held (innermost last)
    in_init: bool


@dataclass
class _LockClass:
    """Lock-discipline facts for one lock-owning class."""

    info: ClassInfo
    lock_attrs: Set[str] = field(default_factory=set)
    writes: List[Tuple[FunctionInfo, _Write]] = field(default_factory=list)
    #: attrs observed written under a lock outside __init__
    guarded: Dict[str, str] = field(default_factory=dict)  #: attr -> lock
    #: method name -> lock attrs the method acquires anywhere in its body
    acquires: Dict[str, Set[str]] = field(default_factory=dict)
    #: direct lock-order edges (outer, inner) -> example site
    edges: Dict[Tuple[str, str], Tuple[str, ast.AST]] = field(
        default_factory=dict
    )


def _self_attr(node: ast.AST) -> Optional[str]:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


class _MethodScan(ast.NodeVisitor):
    """Walk one method tracking the stack of ``self`` locks held."""

    def __init__(self, owner: _LockClass, fn: FunctionInfo, model: "ProjectModel") -> None:
        self.owner = owner
        self.fn = fn
        self.model = model
        self.held: List[str] = []
        self.in_init = fn.name == "__init__"

    def run(self) -> None:
        for statement in self.fn.node.body:
            self.visit(statement)

    # -- lock tracking -----------------------------------------------------

    def visit_With(self, node: ast.With) -> None:
        acquired: List[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.owner.lock_attrs:
                acquired.append(attr)
        for lock in acquired:
            self.owner.acquires.setdefault(self.fn.name, set()).add(lock)
            if self.held:
                edge = (self.held[-1], lock)
                self.owner.edges.setdefault(
                    edge, (self.fn.relpath, node)
                )
            self.held.append(lock)
        for statement in node.body:
            self.visit(statement)
        for _ in acquired:
            self.held.pop()

    # -- writes ------------------------------------------------------------

    def _record(self, attr: str, node: ast.AST) -> None:
        if attr in self.owner.lock_attrs:
            return
        self.owner.writes.append(
            (
                self.fn,
                _Write(attr, node, tuple(self.held), self.in_init),
            )
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node)
        self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_target(node.target, node)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._record_target(node.target, node)
        if node.value is not None:
            self.visit(node.value)

    def _record_target(self, target: ast.expr, node: ast.AST) -> None:
        attr = _self_attr(target)
        if attr is not None:
            self._record(attr, node)
            return
        if isinstance(target, ast.Subscript):
            attr = _self_attr(target.value)
            if attr is not None:
                self._record(attr, node)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in _MUTATORS:
            attr = _self_attr(func.value)
            if attr is not None:
                self._record(attr, node)
        # one level of call propagation for lock ordering:
        # ``with self.A: self.helper()`` where helper acquires B
        if self.held and isinstance(func, ast.Attribute):
            receiver = func.value
            if isinstance(receiver, ast.Name) and receiver.id == "self":
                for lock in self.owner.acquires.get(func.attr, set()):
                    edge = (self.held[-1], lock)
                    self.owner.edges.setdefault(
                        edge, (self.fn.relpath, node)
                    )
        self.generic_visit(node)


@register_program
class LockDisciplineRule(ProgramRule):
    id = "SACHA007"
    title = "lock-guarded state is guarded at every write, in lock order"
    rationale = (
        "swarm workers share the metrics registry and the fleet store; "
        "an attribute written under a lock in one method and without it "
        "in another is a race, and two locks taken in opposite orders "
        "deadlock under the right interleaving"
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        owners = self._collect(model)
        findings: List[Finding] = []
        for owner in owners.values():
            findings.extend(self._unguarded_writes(model, owner))
            findings.extend(self._lock_order(model, owner))
        findings.extend(self._cross_module(model, owners))
        return iter(sorted(set(findings)))

    # -- model extraction --------------------------------------------------

    def _collect(self, model: ProjectModel) -> Dict[str, _LockClass]:
        owners: Dict[str, _LockClass] = {}
        for klass in model.classes.values():
            init = klass.methods.get("__init__")
            if init is None:
                continue
            lock_attrs: Set[str] = set()
            for node in ast.walk(init.node):
                if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call
                ):
                    if dotted_tail(node.value.func) in _LOCK_FACTORIES:
                        for target in node.targets:
                            attr = _self_attr(target)
                            if attr is not None:
                                lock_attrs.add(attr)
            if not lock_attrs:
                continue
            owner = _LockClass(info=klass, lock_attrs=lock_attrs)
            # two passes so call-propagated lock edges see every
            # method's acquisition set
            for _ in range(2):
                owner.writes.clear()
                owner.edges.clear()
                for method in klass.methods.values():
                    _MethodScan(owner, method, model).run()
            for fn, write in owner.writes:
                if write.held and not write.in_init:
                    owner.guarded.setdefault(write.attr, write.held[-1])
            owners[klass.qualname] = owner
        return owners

    # -- findings ----------------------------------------------------------

    def _unguarded_writes(
        self, model: ProjectModel, owner: _LockClass
    ) -> Iterator[Finding]:
        for fn, write in owner.writes:
            if write.in_init or write.attr not in owner.guarded:
                continue
            if not write.held:
                lock = owner.guarded[write.attr]
                yield model.finding(
                    fn.relpath,
                    write.node,
                    self.id,
                    f"{owner.info.name}.{write.attr} is guarded by "
                    f"self.{lock} elsewhere but written here without it",
                    f"wrap the write in `with self.{lock}:`",
                )

    def _lock_order(
        self, model: ProjectModel, owner: _LockClass
    ) -> Iterator[Finding]:
        # transitive closure over the direct edges, then report every
        # unordered pair reachable in both directions
        closure: Dict[str, Set[str]] = {}
        for outer, inner in owner.edges:
            closure.setdefault(outer, set()).add(inner)
        changed = True
        while changed:
            changed = False
            for outer, inners in list(closure.items()):
                for inner in list(inners):
                    extra = closure.get(inner, set()) - inners
                    if extra:
                        inners |= extra
                        changed = True
        reported: Set[Tuple[str, str]] = set()
        for outer, inner in owner.edges:
            pair = tuple(sorted((outer, inner)))
            if outer == inner or pair in reported:
                continue
            if outer in closure.get(inner, set()):
                reported.add(pair)  # type: ignore[arg-type]
                relpath, node = owner.edges[(outer, inner)]
                yield model.finding(
                    relpath,
                    node,
                    self.id,
                    f"lock-order inversion on {owner.info.name}: "
                    f"self.{outer} is taken before self.{inner} here "
                    f"but after it elsewhere",
                    "pick one global acquisition order for the two "
                    "locks and use it everywhere",
                )

    def _cross_module(
        self, model: ProjectModel, owners: Dict[str, _LockClass]
    ) -> Iterator[Finding]:
        guarded_attrs: Dict[str, Set[str]] = {}  #: attr -> owning modules
        for owner in owners.values():
            for attr in owner.guarded:
                guarded_attrs.setdefault(attr, set()).add(owner.info.module)
        if not guarded_attrs:
            return
        scoped = self._sharded_modules(model)
        for fn in model.functions.values():
            if fn.module not in scoped:
                continue
            for node in ast.walk(fn.node):
                target: Optional[ast.expr] = None
                if isinstance(node, ast.Assign):
                    target = node.targets[0]
                elif isinstance(node, ast.AugAssign):
                    target = node.target
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in _MUTATORS:
                        target = node.func.value
                if not isinstance(target, ast.Attribute):
                    continue
                attr = target.attr
                receiver = target.value
                if isinstance(receiver, ast.Name) and receiver.id in (
                    "self",
                    "cls",
                ):
                    continue
                modules = guarded_attrs.get(attr)
                if modules and fn.module not in modules:
                    yield model.finding(
                        fn.relpath,
                        node,
                        self.id,
                        f"attribute {attr!r} is lock-guarded by its "
                        "owning class but mutated here from another "
                        "module, bypassing the lock",
                        "add a locked method on the owning class and "
                        "call that instead",
                    )

    @staticmethod
    def _sharded_modules(model: ProjectModel) -> Set[str]:
        """Modules reachable from any module that calls ``map_sharded``."""
        roots: Set[str] = set()
        for record in model.files.values():
            if record.module is None:
                continue
            for node in ast.walk(record.tree):
                if (
                    isinstance(node, ast.Call)
                    and dotted_tail(node.func) == "map_sharded"
                ):
                    roots.add(record.module)
                    break
        reachable: Set[str] = set()
        frontier = list(roots)
        while frontier:
            module = frontier.pop()
            if module in reachable:
                continue
            reachable.add(module)
            for imported in model.import_graph.get(module, set()):
                # an import of ``repro.x.y`` puts both the module and
                # its package prefix in scope; ``from pkg import mod``
                # records the package, so expand to the package's
                # modules too
                candidates = {imported, ".".join(imported.split(".")[:-1])}
                candidates.update(
                    module_name
                    for module_name in model.by_module
                    if module_name.startswith(imported + ".")
                )
                for candidate in candidates:
                    if candidate in model.by_module and candidate not in reachable:
                        frontier.append(candidate)
        return reachable
