"""Built-in sachalint rules.  Importing this package registers them.

SACHA001-005 are the per-file tier; SACHA006-008 are the whole-program
tier and register in their own registry (``all_program_rules``) so the
fast per-file runs never pay for them.
"""

from repro.lint.rules.constant_time import ConstantTimeRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.lock_discipline import LockDisciplineRule
from repro.lint.rules.mutable_defaults import MutableDefaultsRule
from repro.lint.rules.secret_taint import SecretTaintRule
from repro.lint.rules.threads import ThreadingRule
from repro.lint.rules.wire_consistency import WireConsistencyRule

__all__ = [
    "ConstantTimeRule",
    "DeterminismRule",
    "LayeringRule",
    "LockDisciplineRule",
    "MutableDefaultsRule",
    "SecretTaintRule",
    "ThreadingRule",
    "WireConsistencyRule",
]
