"""Built-in sachalint rules.  Importing this package registers them."""

from repro.lint.rules.constant_time import ConstantTimeRule
from repro.lint.rules.determinism import DeterminismRule
from repro.lint.rules.layering import LayeringRule
from repro.lint.rules.mutable_defaults import MutableDefaultsRule
from repro.lint.rules.threads import ThreadingRule

__all__ = [
    "ConstantTimeRule",
    "DeterminismRule",
    "LayeringRule",
    "MutableDefaultsRule",
    "ThreadingRule",
]
