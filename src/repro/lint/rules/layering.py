"""SACHA004: imports must follow the declared layer DAG.

The security argument assigns each package a role: ``crypto`` is pure
math a verifier could audit in isolation (it must never see the network,
the observability layer, or the simulator), ``fpga`` models a device
that has no network stack, and ``sim`` is the single-threaded event
queue whose determinism everything else leans on.  Those boundaries are
encoded in :data:`repro.lint.config.LAYER_DAG` (plus per-layer stdlib
bans in :data:`repro.lint.config.FORBIDDEN_STDLIB`) and enforced here
over *all* imports, including ones nested inside functions.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register


def _repro_layer(module: str) -> Optional[str]:
    """The layer a ``repro.*`` module belongs to, or None for ``repro``."""
    parts = module.split(".")
    if parts[0] != "repro" or len(parts) < 2:
        return None
    return parts[1]


def _imports(
    ctx: FileContext,
) -> Iterator[Tuple[ast.stmt, str]]:
    """Every (node, absolute module) import in the file."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if node.module:
                    yield node, node.module
                continue
            module = ctx.module
            if module is None:
                continue
            package = module.split(".")
            if not ctx.relpath.endswith("__init__.py"):
                package = package[:-1]
            anchor = package[: len(package) - (node.level - 1)]
            if not anchor:
                continue
            resolved = ".".join(anchor + ([node.module] if node.module else []))
            yield node, resolved


@register
class LayeringRule(Rule):
    id = "SACHA004"
    title = "imports follow the declared layer DAG"
    rationale = (
        "crypto must be auditable without the network or simulator in "
        "scope, and the device model must stay network-free; layering "
        "violations rot exactly these guarantees"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.layer is not None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        layer = ctx.layer
        allowed = ctx.config.layer_dag.get(layer, None)
        forbidden_stdlib = ctx.config.forbidden_stdlib.get(layer, frozenset())
        for node, module in _imports(ctx):
            top = module.split(".")[0]
            if top in forbidden_stdlib:
                yield ctx.finding(
                    node,
                    self.id,
                    f"layer {layer!r} must not import {top!r} "
                    "(declared in repro.lint.config.FORBIDDEN_STDLIB)",
                    "move the work out of this layer, or amend the "
                    "declaration with a rationale",
                )
                continue
            if allowed is None or top != "repro":
                continue
            target = _repro_layer(module)
            if target is None or target == layer:
                continue
            if target not in allowed:
                permitted = ", ".join(sorted(allowed)) or "nothing"
                yield ctx.finding(
                    node,
                    self.id,
                    f"layer {layer!r} must not import repro.{target} "
                    f"(allowed: {permitted})",
                    "invert the dependency or amend the layer DAG in "
                    "repro.lint.config with a rationale",
                )
