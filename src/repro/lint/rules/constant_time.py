"""SACHA002: MAC/tag/digest comparisons must be constant-time.

``==`` on ``bytes`` short-circuits at the first differing byte, so the
time a verifier takes to reject a forged tag reveals how long a correct
prefix the attacker has — the classic remote-timing oracle against MAC
verification (Lawson/Nelson 2009 era; still routinely rediscovered).
Inside the scoped trees (the crypto layer, the verifier, the ARQ frame
check, and the combined FPGA+processor system) every equality on a
tag-typed value must go through :func:`hmac.compare_digest`.

The rule is lexical about what "tag-typed" means: either comparand is an
identifier (or a call to one) whose snake_case words include ``tag``,
``mac``, ``digest``, ``hmac``, ``cmac``, ``sig`` or ``signature``.
ALL-CAPS names are exempt — those are protocol constants (opcodes), and
comparing an opcode is dispatch, not verification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register

_TAG_WORDS = frozenset(
    {"tag", "mac", "digest", "hmac", "cmac", "sig", "signature"}
)

_HINT = (
    "use hmac.compare_digest(a, b) — it examines every byte regardless "
    "of where the first mismatch is"
)


def _identifier(node: ast.AST) -> Optional[str]:
    """The identifier a comparand answers to, if any."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_tag_typed(node: ast.AST) -> bool:
    identifier = _identifier(node)
    if identifier is None or identifier.isupper():
        return False
    words = identifier.lower().split("_")
    return any(word in _TAG_WORDS for word in words)


@register
class ConstantTimeRule(Rule):
    id = "SACHA002"
    title = "constant-time MAC/tag/digest comparison"
    rationale = (
        "== on bytes short-circuits, turning MAC rejection latency into "
        "a byte-by-byte forgery oracle; hmac.compare_digest does not"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return any(
            ctx.relpath.startswith(prefix)
            for prefix in ctx.config.constant_time_paths
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                tagged = next(
                    (side for side in (left, right) if _is_tag_typed(side)), None
                )
                if tagged is None:
                    continue
                operator = "==" if isinstance(op, ast.Eq) else "!="
                yield ctx.finding(
                    node,
                    self.id,
                    f"{operator} on {_identifier(tagged)!r} leaks timing; "
                    "MAC-typed values must be compared in constant time",
                    _HINT,
                )
