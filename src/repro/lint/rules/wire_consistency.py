"""SACHA008: the wire-protocol table cannot drift out of sync.

JustSTART-style attacks live in the gap between what an encoder writes
and what the decoder on the other side reads.  This pass cross-checks
the protocol module(s) statically:

* every ``OPCODE_*`` constant has exactly one encoder (a class whose
  ``encode()`` emits ``bytes([OPCODE_X])``) and exactly one decoder
  branch (``if opcode == OPCODE_X:`` inside a ``decode_*`` function),
* no two opcodes share a value, and every opcode appears in the
  ``_OPCODE_NAMES`` diagnostic table,
* the byte layout agrees between the two sides: each fixed-width
  integer the decoder reads (``int.from_bytes(data[a:b], "big")``),
  each blob (``_decode_blob(data, off, ...)``) and each packed vector
  (``np.frombuffer(..., offset=o)``) must land exactly where the
  encoder's ``+``-chain put it,
* derived ``*_HEADER_BYTES`` constants equal 1 opcode byte plus the sum
  of the mapped encoder's fixed integer widths.

The encoder chain is flattened into segments — 1 opcode byte,
``value.to_bytes(n, "big")`` → n bytes, ``_encode_blob`` → a
length-prefixed blob, ``.tobytes()`` → a packed vector, anything else →
raw bytes — and offsets are tracked up to the first dynamic segment,
past which static checking stops.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.lint.findings import Finding
from repro.lint.program import (
    ProgramRule,
    ProjectModel,
    SourceFile,
    dotted_name_of,
    dotted_tail,
    register_program,
)

_OP = "op"
_INT = "int"
_BLOB = "blob"
_VECTOR = "vector"
_RAW = "raw"


@dataclass
class _Encoder:
    class_name: str
    node: ast.AST  #: the return expression, for finding anchors
    relpath: str
    segments: List[Tuple[str, int]] = field(default_factory=list)

    def fixed_int_bytes(self) -> int:
        """All fixed integer field bytes, wherever they sit in the frame."""
        return sum(size for kind, size in self.segments if kind == _INT)

    def layout(self) -> Tuple[Dict[int, Tuple[str, int]], int, bool]:
        """``{offset: (kind, size)}`` up to the first dynamic segment.

        Returns the map, the offset where static knowledge ends, and
        whether the frame is fully static (no dynamic tail at all).
        """
        offsets: Dict[int, Tuple[str, int]] = {}
        cursor = 0
        for kind, size in self.segments:
            offsets[cursor] = (kind, size)
            if kind in (_OP, _INT):
                cursor += size
            else:
                return offsets, cursor, False
        return offsets, cursor, True


@dataclass
class _Decoder:
    function: str
    node: ast.If
    relpath: str
    #: (kind, offset, size) reads with compile-time-constant offsets
    reads: List[Tuple[str, int, int]] = field(default_factory=list)


def _constant_int(node: ast.expr) -> Optional[int]:
    if isinstance(node, ast.Constant) and isinstance(node.value, int):
        return node.value
    return None


def _flatten_concat(node: ast.expr) -> List[ast.expr]:
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return _flatten_concat(node.left) + _flatten_concat(node.right)
    return [node]


def _opcode_of_bytes_literal(node: ast.expr) -> Optional[str]:
    """``bytes([OPCODE_X])`` -> ``"OPCODE_X"``."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "bytes"
        and len(node.args) == 1
        and isinstance(node.args[0], (ast.List, ast.Tuple))
        and len(node.args[0].elts) == 1
    ):
        return None
    element = node.args[0].elts[0]
    if isinstance(element, ast.Name) and element.id.startswith("OPCODE_"):
        return element.id
    return None


def _classify_segment(node: ast.expr) -> Tuple[str, int]:
    if _opcode_of_bytes_literal(node) is not None:
        return (_OP, 1)
    if isinstance(node, ast.Call):
        tail = dotted_tail(node.func)
        if tail == "to_bytes" and node.args:
            width = _constant_int(node.args[0])
            if width is not None:
                return (_INT, width)
        if tail == "_encode_blob" or tail == "encode_blob":
            return (_BLOB, 0)
        if tail == "tobytes":
            return (_VECTOR, 0)
    return (_RAW, 0)


def _kind_label(kind: str, size: int) -> str:
    if kind == _INT:
        return f"a {size}-byte integer"
    if kind == _OP:
        return "the opcode byte"
    if kind == _BLOB:
        return "a length-prefixed blob"
    if kind == _VECTOR:
        return "a packed index vector"
    return "raw bytes"


@register_program
class WireConsistencyRule(ProgramRule):
    id = "SACHA008"
    title = "every opcode has one encoder and one decoder that agree"
    rationale = (
        "an opcode with no decoder, two encoders, or a pack/unpack "
        "layout disagreement is a protocol desync — the class of bug "
        "JustSTART exploits in attestation stacks"
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        findings: List[Finding] = []
        opcodes: Dict[str, Tuple[int, SourceFile, ast.AST]] = {}
        names_table: Dict[str, List[str]] = {}  #: relpath -> listed opcodes
        encoders: Dict[str, List[_Encoder]] = {}
        decoders: Dict[str, List[_Decoder]] = {}
        for relpath in model.config.wire_protocol_modules:
            record = model.files.get(relpath)
            if record is None:
                continue
            self._collect_constants(record, opcodes, names_table, findings, model)
            self._collect_encoders(record, encoders)
            self._collect_decoders(record, decoders)
        if not opcodes:
            return iter(findings)

        findings.extend(self._value_collisions(model, opcodes))
        findings.extend(
            self._registration(model, opcodes, names_table, encoders, decoders)
        )
        for name in sorted(opcodes):
            own_encoders = encoders.get(name, [])
            own_decoders = decoders.get(name, [])
            if len(own_encoders) == 1 and len(own_decoders) == 1:
                findings.extend(
                    self._layout_agreement(
                        model, name, own_encoders[0], own_decoders[0]
                    )
                )
        findings.extend(self._header_constants(model, encoders))
        return iter(sorted(set(findings)))

    # -- collection --------------------------------------------------------

    def _collect_constants(
        self,
        record: SourceFile,
        opcodes: Dict[str, Tuple[int, SourceFile, ast.AST]],
        names_table: Dict[str, List[str]],
        findings: List[Finding],
        model: ProjectModel,
    ) -> None:
        for node in record.tree.body:
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id.startswith("OPCODE_"):
                value = _constant_int(node.value)
                if value is None:
                    findings.append(
                        model.finding(
                            record.relpath,
                            node,
                            self.id,
                            f"{target.id} is not a literal integer; the "
                            "consistency checks cannot follow it",
                            "assign opcode constants literal int values",
                        )
                    )
                    continue
                opcodes[target.id] = (value, record, node)
            elif target.id == "_OPCODE_NAMES" and isinstance(
                node.value, ast.Dict
            ):
                listed = names_table.setdefault(record.relpath, [])
                for key in node.value.keys:
                    if isinstance(key, ast.Name):
                        listed.append(key.id)

    @staticmethod
    def _collect_encoders(
        record: SourceFile, encoders: Dict[str, List[_Encoder]]
    ) -> None:
        for node in record.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for statement in node.body:
                if (
                    not isinstance(statement, ast.FunctionDef)
                    or statement.name != "encode"
                ):
                    continue
                for returned in ast.walk(statement):
                    if not isinstance(returned, ast.Return):
                        continue
                    if returned.value is None:
                        continue
                    parts = _flatten_concat(returned.value)
                    opcode = _opcode_of_bytes_literal(parts[0])
                    if opcode is None:
                        continue
                    encoder = _Encoder(
                        class_name=node.name,
                        node=returned,
                        relpath=record.relpath,
                        segments=[_classify_segment(p) for p in parts],
                    )
                    encoders.setdefault(opcode, []).append(encoder)

    @staticmethod
    def _collect_decoders(
        record: SourceFile, decoders: Dict[str, List[_Decoder]]
    ) -> None:
        for node in record.tree.body:
            if not (
                isinstance(node, ast.FunctionDef)
                and node.name.startswith("decode")
            ):
                continue
            for branch in ast.walk(node):
                if not isinstance(branch, ast.If):
                    continue
                test = branch.test
                if not (
                    isinstance(test, ast.Compare)
                    and len(test.ops) == 1
                    and isinstance(test.ops[0], ast.Eq)
                    and len(test.comparators) == 1
                ):
                    continue
                comparator = test.comparators[0]
                if not (
                    isinstance(comparator, ast.Name)
                    and comparator.id.startswith("OPCODE_")
                ):
                    continue
                decoder = _Decoder(
                    function=node.name, node=branch, relpath=record.relpath
                )
                for inner in branch.body:
                    for call in ast.walk(inner):
                        if not isinstance(call, ast.Call):
                            continue
                        read = WireConsistencyRule._classify_read(call)
                        if read is not None:
                            decoder.reads.append(read)
                decoders.setdefault(comparator.id, []).append(decoder)

    @staticmethod
    def _classify_read(call: ast.Call) -> Optional[Tuple[str, int, int]]:
        full = dotted_name_of(call.func)
        tail = dotted_tail(call.func)
        if full == "int.from_bytes" and call.args:
            subscript = call.args[0]
            if isinstance(subscript, ast.Subscript) and isinstance(
                subscript.slice, ast.Slice
            ):
                lower = (
                    _constant_int(subscript.slice.lower)
                    if subscript.slice.lower is not None
                    else None
                )
                upper = (
                    _constant_int(subscript.slice.upper)
                    if subscript.slice.upper is not None
                    else None
                )
                if lower is not None and upper is not None:
                    return (_INT, lower, upper - lower)
            return None
        if tail in ("_decode_blob", "decode_blob") and len(call.args) >= 2:
            offset = _constant_int(call.args[1])
            if offset is not None:
                return (_BLOB, offset, 0)
            return None
        if tail == "frombuffer":
            for keyword in call.keywords:
                if keyword.arg == "offset":
                    offset = _constant_int(keyword.value)
                    if offset is not None:
                        return (_VECTOR, offset, 0)
        return None

    # -- checks ------------------------------------------------------------

    def _value_collisions(
        self,
        model: ProjectModel,
        opcodes: Dict[str, Tuple[int, SourceFile, ast.AST]],
    ) -> Iterator[Finding]:
        by_value: Dict[int, List[str]] = {}
        for name, (value, _, _) in opcodes.items():
            by_value.setdefault(value, []).append(name)
        for value, names in sorted(by_value.items()):
            if len(names) < 2:
                continue
            for name in sorted(names)[1:]:
                _, record, node = opcodes[name]
                yield model.finding(
                    record.relpath,
                    node,
                    self.id,
                    f"opcode value {value:#04x} is shared by "
                    f"{' and '.join(sorted(names))}",
                    "give every opcode a unique value",
                )

    def _registration(
        self,
        model: ProjectModel,
        opcodes: Dict[str, Tuple[int, SourceFile, ast.AST]],
        names_table: Dict[str, List[str]],
        encoders: Dict[str, List[_Encoder]],
        decoders: Dict[str, List[_Decoder]],
    ) -> Iterator[Finding]:
        for name in sorted(opcodes):
            _, record, node = opcodes[name]
            own_encoders = encoders.get(name, [])
            own_decoders = decoders.get(name, [])
            if not own_encoders:
                yield model.finding(
                    record.relpath,
                    node,
                    self.id,
                    f"{name} has no encoder (no encode() emits "
                    f"bytes([{name}]))",
                    "add an encoder class or delete the orphan opcode",
                )
            elif len(own_encoders) > 1:
                classes = ", ".join(
                    sorted(e.class_name for e in own_encoders)
                )
                yield model.finding(
                    record.relpath,
                    node,
                    self.id,
                    f"{name} has {len(own_encoders)} encoders ({classes})",
                    "exactly one class may encode each opcode",
                )
            if not own_decoders:
                yield model.finding(
                    record.relpath,
                    node,
                    self.id,
                    f"{name} has no decoder branch "
                    f"(`if opcode == {name}:` in a decode_* function)",
                    "add a decoder branch or delete the orphan opcode",
                )
            elif len(own_decoders) > 1:
                yield model.finding(
                    record.relpath,
                    node,
                    self.id,
                    f"{name} has {len(own_decoders)} decoder branches",
                    "exactly one branch may decode each opcode",
                )
            table = names_table.get(record.relpath)
            if table is not None and name not in table:
                yield model.finding(
                    record.relpath,
                    node,
                    self.id,
                    f"{name} is missing from _OPCODE_NAMES",
                    "add the opcode to the diagnostic name table",
                )

    def _layout_agreement(
        self,
        model: ProjectModel,
        name: str,
        encoder: _Encoder,
        decoder: _Decoder,
    ) -> Iterator[Finding]:
        offsets, static_end, fully_static = encoder.layout()
        for kind, offset, size in decoder.reads:
            if offset not in offsets and offset >= static_end and not fully_static:
                continue  # past the first dynamic segment: not checkable
            expected = offsets.get(offset)
            if expected is None:
                yield model.finding(
                    decoder.relpath,
                    decoder.node,
                    self.id,
                    f"{name}: decoder reads {_kind_label(kind, size)} at "
                    f"offset {offset}, which is not a field boundary in "
                    f"{encoder.class_name}.encode()",
                    "align the decoder's offsets with the encoder's "
                    "field layout",
                )
                continue
            expected_kind, expected_size = expected
            if expected_kind != kind or (
                kind == _INT and expected_size != size
            ):
                yield model.finding(
                    decoder.relpath,
                    decoder.node,
                    self.id,
                    f"{name}: decoder reads {_kind_label(kind, size)} at "
                    f"offset {offset} but {encoder.class_name}.encode() "
                    f"writes {_kind_label(expected_kind, expected_size)} "
                    "there",
                    "make the unpack side mirror the pack side "
                    "field-for-field",
                )

    def _header_constants(
        self, model: ProjectModel, encoders: Dict[str, List[_Encoder]]
    ) -> Iterator[Finding]:
        for relpath in model.config.wire_header_modules:
            record = model.files.get(relpath)
            if record is None:
                continue
            for node in record.tree.body:
                if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                    continue
                target = node.targets[0]
                if not isinstance(target, ast.Name):
                    continue
                opcode = model.config.wire_header_opcodes.get(target.id)
                if opcode is None:
                    continue
                declared = _constant_int(node.value)
                own_encoders = encoders.get(opcode, [])
                if declared is None or len(own_encoders) != 1:
                    continue
                expected = 1 + own_encoders[0].fixed_int_bytes()
                if declared != expected:
                    yield model.finding(
                        record.relpath,
                        node,
                        self.id,
                        f"{target.id} is {declared} but "
                        f"{own_encoders[0].class_name}.encode() emits "
                        f"{expected} fixed header bytes "
                        "(1 opcode + integer fields)",
                        f"set {target.id} = {expected} or fix the encoder",
                    )
