"""SACHA005: threading is confined to the approved executor modules.

Parallelism in this repo is a *performance overlay*, never a semantic
one: the swarm sweep pre-forks per-member RNGs precisely so the threaded
sweep stays byte-identical to the sequential one.  Ad-hoc threads
anywhere else put nondeterministic interleavings next to state the
reproducibility argument assumes is single-threaded.  Two checks:

* importing ``threading`` / ``concurrent.futures`` / ``multiprocessing``
  outside :data:`repro.lint.config.THREADING_APPROVED`;
* inside any module that imports them (approved or not), a ``global``
  write in a function body — module-level mutable state written from
  code that may run on a worker is a data race waiting for load.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, register

_THREAD_MODULES = frozenset({"threading", "concurrent", "multiprocessing"})


@register
class ThreadingRule(Rule):
    id = "SACHA005"
    title = "threading only in the approved executor modules"
    rationale = (
        "determinism is proven for the sequential path and preserved by "
        "one carefully-reviewed executor; unreviewed threads reintroduce "
        "scheduling nondeterminism"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        approved = ctx.relpath in ctx.config.threading_approved
        uses_threads = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                if isinstance(node, ast.Import):
                    tops = {alias.name.split(".")[0] for alias in node.names}
                else:
                    tops = {(node.module or "").split(".")[0]}
                hit = tops & _THREAD_MODULES
                if not hit:
                    continue
                uses_threads = True
                if not approved:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"{'/'.join(sorted(hit))} import outside the approved "
                        "executor modules",
                        "route parallel work through the swarm executor "
                        "(repro.core.swarm) or extend THREADING_APPROVED "
                        "in repro.lint.config with a rationale",
                    )
        if not uses_threads:
            return
        # ``global`` is only meaningful inside a function body, so a plain
        # walk visits each declaration exactly once.
        for statement in ast.walk(ctx.tree):
            if isinstance(statement, ast.Global):
                names = ", ".join(statement.names)
                yield ctx.finding(
                    statement,
                    self.id,
                    f"global write to {names} in a module that uses "
                    "threading — shared module state must not be "
                    "mutated from worker callables",
                    "pass state explicitly or guard it behind the "
                    "module's lock",
                )
