"""SACHA001: no wall clock, no unseeded randomness, no builtin ``hash()``.

Attestation transcripts, span logs, and experiment tables must be
regenerable bit-for-bit: two CLI invocations with the same seed have to
agree byte-for-byte across processes and machines.  Three stdlib
conveniences silently break that:

* wall-clock reads (``time.time``, ``datetime.now``, …) differ per run;
* the module-level ``random`` functions and unseeded generators draw
  from interpreter-global, OS-seeded state;
* builtin ``hash()`` is salted per process (PYTHONHASHSEED) — the exact
  bug ``DeterministicRng.fork`` shipped with before PR 2 fixed it to
  derive child seeds via SHA-256.

Sim and protocol code must take time from the simulator clock and
randomness from an explicitly seeded :class:`repro.utils.rng.DeterministicRng`
(or a seeded ``random.Random`` / ``numpy`` generator).  The only module
exempt is the obs wall-clock shim, which exists so export *metadata* can
carry a real timestamp without the rest of the tree ever touching one.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.findings import Finding
from repro.lint.registry import FileContext, Rule, dotted_name, register

_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
    }
)

#: matched against the last two dotted components, so both
#: ``datetime.now()`` (from-import) and ``datetime.datetime.now()`` hit.
_DATETIME_TAILS = frozenset(
    {
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

_NONDETERMINISTIC = frozenset(
    {
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)

#: ``numpy.random`` module-level functions draw from the global unseeded
#: generator; seeded constructors (``Generator``, ``Philox``, seeded
#: ``default_rng``) are fine.
_NP_RANDOM_BANNED = frozenset(
    {
        "bytes",
        "choice",
        "normal",
        "permutation",
        "rand",
        "randint",
        "randn",
        "random",
        "random_sample",
        "seed",
        "shuffle",
        "standard_normal",
        "uniform",
    }
)

_HINT = (
    "draw time from the sim clock and randomness from a seeded "
    "DeterministicRng (repro.utils.rng); derive stable hashes with hashlib"
)


@register
class DeterminismRule(Rule):
    id = "SACHA001"
    title = "no wall clock, unseeded randomness, or builtin hash()"
    rationale = (
        "attestation runs must be bit-for-bit reproducible across "
        "processes; wall clocks, interpreter-global RNG state, and the "
        "per-process salted hash() all break that silently"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(
            ctx.relpath.startswith(prefix)
            for prefix in ctx.config.determinism_exempt
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            message = self._violation(name, node)
            if message:
                yield ctx.finding(node, self.id, message, _HINT)

    def _violation(self, name: str, call: ast.Call) -> str:
        parts = name.split(".")
        if name == "hash":
            return (
                "builtin hash() is salted per process — the same value "
                "hashes differently in every interpreter"
            )
        if name in _WALL_CLOCK:
            return f"wall-clock read {name}() is not reproducible"
        if name in _NONDETERMINISTIC:
            return f"{name}() is nondeterministic by design"
        if len(parts) >= 2 and (parts[-2], parts[-1]) in _DATETIME_TAILS:
            return f"wall-clock read {name}() is not reproducible"
        if parts[0] == "random" and len(parts) == 2:
            if parts[1] in ("Random", "SystemRandom"):
                if parts[1] == "SystemRandom":
                    return "random.SystemRandom draws from the OS entropy pool"
                if not call.args and not call.keywords:
                    return "random.Random() without a seed is process-global state"
                return ""
            return (
                f"module-level random.{parts[1]}() uses the interpreter-"
                "global, OS-seeded generator"
            )
        if (
            len(parts) >= 3
            and parts[0] in ("np", "numpy")
            and parts[-2] == "random"
        ):
            function = parts[-1]
            if function in _NP_RANDOM_BANNED:
                return (
                    f"numpy global-state RNG call {name}() is unseeded; "
                    "construct a seeded Generator instead"
                )
            if function == "default_rng" and not call.args and not call.keywords:
                return "default_rng() without a seed is entropy-seeded"
        return ""
