"""SACHA006: key and nonce material must not leave the crypto boundary.

SACHa's security argument assumes the MAC key exists in exactly three
places: the prover's PUF/key register, the verifier's enrollment record,
and the MAC engines keyed from them.  Everything else — structured
logs, metric labels, span attributes, exception text, ``repr``/``hex``
in operational layers, SQLite rows, JSON exports — is an exfiltration
side door.  This pass seeds taint at the declared sources
(:data:`repro.lint.config.SECRET_SOURCE_CALLS` and friends), propagates
it interprocedurally through assignments, f-strings, containers and the
call graph (per-function def-use summaries iterated to a fixed point),
and reports every flow into a sink that is not routed through a
sanctioned boundary (``SecretBytes``/``redact()``/``compare_digest``)
or an allowlisted SQLite column.

A companion declaration check flags dataclass fields with secret names
typed as raw ``bytes``/``str`` — the default dataclass repr prints
field values, so ``f"{record}"`` anywhere would leak the key.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.program import (
    FunctionInfo,
    ProgramRule,
    ProjectModel,
    dotted_name_of,
    dotted_tail,
    register_program,
)

KEY = "KEY"
NONCE = "NONCE"

_LOG_METHODS = frozenset(
    {"debug", "info", "warning", "error", "exception", "critical"}
)
_METRIC_METHODS = frozenset({"inc", "set", "observe"})
_HINT = (
    "route the value through repro.utils.secret (SecretBytes wraps it "
    "opaquely, redact() yields a loggable placeholder), or drop it"
)

_INSERT_COLUMNS = re.compile(
    r"insert\s+into\s+\S+\s*\(([^)]*)\)", re.IGNORECASE
)
_UPDATE_SET = re.compile(r"set\s+(.*?)(?:\s+where\s|$)", re.IGNORECASE | re.DOTALL)
_WHERE_COLUMNS = re.compile(r"(\w+)\s*=\s*\?")


def _sql_parameter_columns(sql: str) -> Optional[List[str]]:
    """Column name per ``?`` placeholder, or None when unparseable."""
    lowered = sql.strip()
    insert = _INSERT_COLUMNS.search(lowered)
    if insert:
        columns = [c.strip() for c in insert.group(1).split(",") if c.strip()]
        if sql.count("?") == len(columns):
            return columns
        return None
    update = _UPDATE_SET.search(lowered)
    if update:
        columns = _WHERE_COLUMNS.findall(lowered)
        if sql.count("?") == len(columns):
            return columns
        return None
    columns = _WHERE_COLUMNS.findall(lowered)
    if columns and sql.count("?") == len(columns):
        return columns
    return None


@dataclass
class _Sink:
    """A sink a function's parameter reaches (for call-site reporting)."""

    desc: str
    relpath: str
    line: int

    def key(self) -> Tuple[str, str, int]:
        return (self.desc, self.relpath, self.line)


@dataclass
class _Summary:
    """Def-use summary: what a function does with taint."""

    ret: Set[str] = field(default_factory=set)
    param_sinks: Dict[int, List[_Sink]] = field(default_factory=dict)

    def state_key(self) -> Tuple[object, ...]:
        return (
            frozenset(self.ret),
            tuple(
                (index, tuple(sorted(s.key() for s in sinks)))
                for index, sinks in sorted(self.param_sinks.items())
            ),
        )


class _Scan:
    """One pass over one function body, tracking a taint environment."""

    def __init__(
        self,
        fn: FunctionInfo,
        model: ProjectModel,
        summaries: Dict[str, _Summary],
        tainted_attrs: Dict[str, str],
        collect: Optional[Set[Finding]],
    ) -> None:
        self.fn = fn
        self.model = model
        self.config = model.config
        self.summaries = summaries
        self.tainted_attrs = tainted_attrs  #: attr name -> KEY/NONCE
        self.collect = collect
        self.record = model.files[fn.relpath]
        self.layer = self.record.layer
        self.env: Dict[str, Set[str]] = {
            name: {f"P{index}"} for index, name in enumerate(fn.params)
        }
        #: local name -> ClassInfo qualname, for receivers whose class is
        #: evident from ``x = ClassName(...)``; beats the nearly-unique
        #: method-name fallback, which can map arguments onto the wrong
        #: same-named method.
        self.var_types: Dict[str, str] = {}
        self.summary = _Summary()

    def run(self) -> _Summary:
        # Two passes so loop-carried taint converges; findings dedupe in
        # the caller's set.
        for _ in range(2):
            self.visit_block(self.fn.node.body)
        return self.summary

    # -- statements --------------------------------------------------------

    def visit_block(self, body: Sequence[ast.stmt]) -> None:
        for statement in body:
            self.visit(statement)

    def visit(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = node.value
            if value is None:
                return
            tokens = self.eval(value)
            tokens |= self._randbytes_taint(node, value)
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                self._assign(target, tokens, augment=isinstance(node, ast.AugAssign))
                self._infer_type(target, value)
        elif isinstance(node, ast.Expr):
            self.eval(node.value)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                self.summary.ret |= self.eval(node.value)
        elif isinstance(node, ast.Raise):
            if node.exc is not None:
                self.eval(node.exc)
        elif isinstance(node, ast.If):
            self.eval(node.test)
            self.visit_block(node.body)
            self.visit_block(node.orelse)
        elif isinstance(node, ast.While):
            self.eval(node.test)
            self.visit_block(node.body)
            self.visit_block(node.orelse)
        elif isinstance(node, ast.For):
            tokens = self.eval(node.iter)
            self._assign(node.target, tokens, augment=False)
            self.visit_block(node.body)
            self.visit_block(node.orelse)
        elif isinstance(node, ast.With):
            for item in node.items:
                tokens = self.eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tokens, augment=False)
            self.visit_block(node.body)
        elif isinstance(node, ast.Try):
            self.visit_block(node.body)
            for handler in node.handlers:
                self.visit_block(handler.body)
            self.visit_block(node.orelse)
            self.visit_block(node.finalbody)
        elif isinstance(node, (ast.Assert,)):
            self.eval(node.test)
        # nested defs/classes are indexed and scanned separately

    def _randbytes_taint(self, node: ast.stmt, value: ast.expr) -> Set[str]:
        """``key = rng.randbytes(...)`` seeds taint by the target's name."""
        if not (
            isinstance(value, ast.Call)
            and dotted_tail(value.func) == "randbytes"
        ):
            return set()
        names: List[str] = []
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if isinstance(target, ast.Name):
                names.append(target.id.lower())
        if any("key" in name for name in names):
            return {KEY}
        if any("nonce" in name for name in names):
            return {NONCE}
        return set()

    def _infer_type(self, target: ast.expr, value: ast.expr) -> None:
        """Track ``x = ClassName(...)`` so method calls on ``x`` resolve."""
        if not isinstance(target, ast.Name):
            return
        self.var_types.pop(target.id, None)
        if not isinstance(value, ast.Call):
            return
        tail = dotted_tail(value.func)
        if tail is None:
            return
        candidates = self.model.classes_by_name.get(tail, [])
        if len(candidates) == 1:
            self.var_types[target.id] = candidates[0].qualname

    def _typed_callees(self, func: ast.expr) -> List[FunctionInfo]:
        """Exact method resolution when the receiver's class is tracked."""
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
        ):
            return []
        qualname = self.var_types.get(func.value.id)
        if qualname is None:
            return []
        info = self.model.classes.get(qualname)
        if info is None:
            return []
        method = info.methods.get(func.attr)
        return [method] if method is not None else []

    def _assign(
        self, target: ast.expr, tokens: Set[str], augment: bool
    ) -> None:
        if isinstance(target, ast.Name):
            if augment:
                tokens = tokens | self.env.get(target.id, set())
            self.env[target.id] = set(tokens)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, tokens, augment)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tokens, augment)
        # attribute/subscript stores are out of scope for the local env

    # -- expressions -------------------------------------------------------

    def eval(self, node: ast.expr, hex_ok: bool = False) -> Set[str]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, set()))
        if isinstance(node, ast.Constant):
            return set()
        if isinstance(node, ast.Attribute):
            # Field-sensitive: a report built *from* a nonce is not
            # itself a nonce, so reading a benign field off a tainted
            # object yields no taint.  Only attribute names declared
            # (or inferred) secret-bearing carry tokens; the receiver
            # is still evaluated so sinks nested inside it fire.
            self.eval(node.value, hex_ok)
            kind = self.tainted_attrs.get(node.attr)
            if kind is not None:
                return {kind}
            return set()
        if isinstance(node, ast.Call):
            return self._call(node, hex_ok)
        if isinstance(node, ast.BinOp):
            return self.eval(node.left, hex_ok) | self.eval(node.right, hex_ok)
        if isinstance(node, ast.BoolOp):
            tokens: Set[str] = set()
            for value in node.values:
                tokens |= self.eval(value, hex_ok)
            return tokens
        if isinstance(node, ast.Compare):
            self.eval(node.left, hex_ok)
            for comparator in node.comparators:
                self.eval(comparator, hex_ok)
            return set()
        if isinstance(node, ast.JoinedStr):
            tokens = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    tokens |= self.eval(value.value, hex_ok)
            return tokens
        if isinstance(node, ast.FormattedValue):
            return self.eval(node.value, hex_ok)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            tokens = set()
            for element in node.elts:
                tokens |= self.eval(element, hex_ok)
            return tokens
        if isinstance(node, ast.Dict):
            tokens = set()
            for key in node.keys:
                if key is not None:
                    tokens |= self.eval(key, hex_ok)
            for value in node.values:
                tokens |= self.eval(value, hex_ok)
            return tokens
        if isinstance(node, ast.Subscript):
            self.eval(node.slice, hex_ok)
            return self.eval(node.value, hex_ok)
        if isinstance(node, ast.IfExp):
            self.eval(node.test, hex_ok)
            return self.eval(node.body, hex_ok) | self.eval(
                node.orelse, hex_ok
            )
        if isinstance(node, ast.UnaryOp):
            return self.eval(node.operand, hex_ok)
        if isinstance(node, ast.Starred):
            return self.eval(node.value, hex_ok)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self._assign(
                    generator.target, self.eval(generator.iter, hex_ok), False
                )
            return self.eval(node.elt, hex_ok)
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                self._assign(
                    generator.target, self.eval(generator.iter, hex_ok), False
                )
            return self.eval(node.key, hex_ok) | self.eval(
                node.value, hex_ok
            )
        if isinstance(node, ast.Await):
            return self.eval(node.value, hex_ok)
        return set()

    # -- calls: sources, sinks, sanitizers, summaries ----------------------

    def _call(self, call: ast.Call, hex_ok: bool) -> Set[str]:
        func = call.func
        tail = dotted_tail(func)
        full = dotted_name_of(func)

        # SQLite: parameters map to columns; the allowlisted secret
        # columns are the sanctioned persistence path (and hex() inside
        # them is fine — that is how the key is stored).
        if isinstance(func, ast.Attribute) and func.attr in (
            "execute",
            "executemany",
        ):
            return self._sqlite_call(call)

        if tail in self.config.taint_sanitizers:
            for arg in call.args:
                self.eval(arg, hex_ok)
            for keyword in call.keywords:
                self.eval(keyword.value, hex_ok)
            return set()

        arg_tokens = [self.eval(arg, hex_ok) for arg in call.args]
        kw_tokens = {
            keyword.arg: self.eval(keyword.value, hex_ok)
            for keyword in call.keywords
        }

        # sinks -----------------------------------------------------------
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LOG_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in self.record.logger_names
        ):
            self._sink_all(call, arg_tokens, kw_tokens, "a structured log call")
        elif isinstance(func, ast.Attribute) and func.attr in _METRIC_METHODS:
            for name, tokens in kw_tokens.items():
                self._sink(call, tokens, f"the metric label {name!r}")
        elif tail == "span":
            for name, tokens in kw_tokens.items():
                self._sink(call, tokens, f"the span attribute {name!r}")
        elif tail is not None and (
            tail.endswith("Error") or tail.endswith("Exception")
        ):
            self._sink_all(call, arg_tokens, kw_tokens, "an exception message")
        elif full in ("json.dumps", "json.dump"):
            self._sink_all(call, arg_tokens, kw_tokens, "a JSON export")
        elif (
            tail in ("repr", "str", "format", "hex")
            and not hex_ok
            and self.layer not in self.config.taint_repr_exempt_layers
        ):
            receiver: Set[str] = set()
            if isinstance(func, ast.Attribute):
                receiver = self.eval(func.value, hex_ok)
            self._sink(
                call,
                receiver.union(*arg_tokens) if arg_tokens else receiver,
                f"{tail}() outside the crypto layer",
            )

        # sources ---------------------------------------------------------
        result: Set[str] = set()
        if tail in self.config.secret_source_calls:
            result.add(KEY)
        if tail in self.config.nonce_source_calls:
            result.add(NONCE)

        # interprocedural propagation --------------------------------------
        callees = self._typed_callees(func) or self.model.resolve_call(
            self.fn, call
        )
        if callees:
            for callee in callees:
                summary = self.summaries.get(callee.qualname)
                if summary is None:
                    continue
                mapped = self._map_arguments(callee, call, arg_tokens, kw_tokens)
                for token in summary.ret:
                    if token in (KEY, NONCE):
                        result.add(token)
                    elif token.startswith("P"):
                        index = int(token[1:])
                        result |= mapped.get(index, set())
                for index, sinks in summary.param_sinks.items():
                    tokens = mapped.get(index, set())
                    for sink in sinks:
                        for kind in tokens & {KEY, NONCE}:
                            self._report(
                                call,
                                f"{kind}-tainted argument to "
                                f"{callee.name}() reaches {sink.desc} at "
                                f"{sink.relpath}:{sink.line}",
                            )
                        for token in tokens:
                            if token.startswith("P"):
                                self._param_sink(int(token[1:]), sink)
        else:
            # Unresolved call: propagate receiver and argument taint
            # through conservatively (``key.hex()``, ``bytes(key)``, …).
            if isinstance(func, ast.Attribute):
                result |= self.eval(func.value, hex_ok)
            for tokens in arg_tokens:
                result |= tokens
            for tokens in kw_tokens.values():
                result |= tokens
        return result

    def _map_arguments(
        self,
        callee: FunctionInfo,
        call: ast.Call,
        arg_tokens: List[Set[str]],
        kw_tokens: Dict[Optional[str], Set[str]],
    ) -> Dict[int, Set[str]]:
        mapped: Dict[int, Set[str]] = {}
        for index, tokens in enumerate(arg_tokens):
            mapped[index] = tokens
        for name, tokens in kw_tokens.items():
            if name is not None and name in callee.params:
                mapped[callee.params.index(name)] = tokens
        return mapped

    def _sqlite_call(self, call: ast.Call) -> Set[str]:
        columns: Optional[List[str]] = None
        if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
            call.args[0].value, str
        ):
            columns = _sql_parameter_columns(call.args[0].value)
        else:
            for arg in call.args[:1]:
                self._sink(
                    call,
                    self.eval(arg),
                    "a dynamically built SQL statement",
                )
        params: List[ast.expr] = []
        if len(call.args) > 1:
            second = call.args[1]
            if isinstance(second, (ast.Tuple, ast.List)):
                params = list(second.elts)
            else:
                params = [second]
        for index, expression in enumerate(params):
            column = (
                columns[index]
                if columns is not None and index < len(columns)
                else None
            )
            allowed = column in self.config.sqlite_secret_columns
            tokens = self.eval(expression, hex_ok=allowed)
            if tokens and not allowed:
                where = (
                    f"SQLite column {column!r}"
                    if column is not None
                    else f"SQLite parameter {index}"
                )
                self._sink(
                    call,
                    tokens,
                    f"{where} outside the sanctioned column set",
                )
        return set()

    def _sink_all(
        self,
        call: ast.Call,
        arg_tokens: List[Set[str]],
        kw_tokens: Dict[Optional[str], Set[str]],
        desc: str,
    ) -> None:
        combined: Set[str] = set()
        for tokens in arg_tokens:
            combined |= tokens
        for tokens in kw_tokens.values():
            combined |= tokens
        self._sink(call, combined, desc)

    def _sink(self, call: ast.Call, tokens: Set[str], desc: str) -> None:
        for kind in sorted(tokens & {KEY, NONCE}):
            self._report(call, f"{kind}-tainted value reaches {desc}")
        for token in tokens:
            if token.startswith("P"):
                self._param_sink(
                    int(token[1:]),
                    _Sink(desc, self.fn.relpath, getattr(call, "lineno", 1)),
                )

    def _param_sink(self, index: int, sink: _Sink) -> None:
        sinks = self.summary.param_sinks.setdefault(index, [])
        if all(existing.key() != sink.key() for existing in sinks):
            sinks.append(sink)

    def _report(self, node: ast.AST, message: str) -> None:
        if self.collect is None:
            return
        self.collect.add(
            self.model.finding(
                self.fn.relpath, node, SecretTaintRule.id, message, _HINT
            )
        )


@register_program
class SecretTaintRule(ProgramRule):
    id = "SACHA006"
    title = "key/nonce material never reaches logs, telemetry, or storage"
    rationale = (
        "the MAC key must exist only at the prover, the verifier record, "
        "and the MAC engines; any flow into logs, metrics, spans, "
        "exceptions, repr/hex, or unsanctioned SQLite columns is an "
        "exfiltration side door the protocol's security argument forbids"
    )

    def check(self, model: ProjectModel) -> Iterator[Finding]:
        config = model.config
        findings: Set[Finding] = set()

        # declaration check: raw secret-named dataclass fields
        for klass in model.classes.values():
            for name in config.secret_field_names:
                annotation = klass.fields.get(name)
                if annotation is not None and "Secret" not in annotation:
                    findings.add(
                        model.finding(
                            klass.relpath,
                            klass.field_nodes[name],
                            self.id,
                            f"field {name!r} on {klass.name} holds raw "
                            "secret material — the default repr/str "
                            "prints it",
                            "type the field repro.utils.secret.SecretBytes "
                            "(opaque repr, explicit .reveal())",
                        )
                    )

        tainted_attrs = self._tainted_attrs(model)
        summaries: Dict[str, _Summary] = {}
        for _ in range(8):
            changed = False
            for fn in model.functions.values():
                scan = _Scan(fn, model, summaries, tainted_attrs, collect=None)
                summary = scan.run()
                previous = summaries.get(fn.qualname)
                if previous is None or previous.state_key() != summary.state_key():
                    summaries[fn.qualname] = summary
                    changed = True
            if not changed:
                break
        for fn in model.functions.values():
            _Scan(fn, model, summaries, tainted_attrs, collect=findings).run()
        yield from sorted(findings)

    @staticmethod
    def _tainted_attrs(model: ProjectModel) -> Dict[str, str]:
        """Attr name -> taint kind; SecretBytes-typed fields are clean."""
        config = model.config
        tainted: Dict[str, str] = {}
        for attr in config.secret_attr_names:
            annotations = model.field_annotations(attr)
            if not annotations or any(
                "Secret" not in annotation for annotation in annotations
            ):
                tainted[attr] = KEY
        for attr in config.nonce_attr_names:
            annotations = model.field_annotations(attr)
            if not annotations or any(
                "Secret" not in annotation for annotation in annotations
            ):
                tainted[attr] = NONCE
        return tainted
