"""The whole-program tier: project model and interprocedural rules.

The per-file rules see one AST at a time; the properties SACHa's
security argument actually rests on are *global*: a key minted in
``core/provisioning.py`` must not reach a log call in ``fleet/``, a
lock acquired in one module must guard every write to the state it
protects, and every wire opcode needs exactly one encoder and one
decoder that agree on the byte layout.  This module builds the shared
:class:`ProjectModel` — parsed files, the module/import graph, def-use
function summaries, and a name-resolved call graph — and defines the
:class:`ProgramRule` base the SACHA006-008 passes register against.

Program rules live in their own registry (``all_program_rules``) so the
fast per-file tier (``repro lint``) stays exactly as cheap as before;
``repro lint --program`` runs both tiers over one set of parsed ASTs.
"""

from __future__ import annotations

import abc
import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.findings import Finding


def module_for_relpath(relpath: str) -> Optional[str]:
    """Dotted module for a ``repro/...`` relpath; None outside the tree."""
    parts = relpath.split("/")
    if parts[0] != "repro" or not parts[-1].endswith(".py"):
        return None
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [parts[-1][:-3]]
    return ".".join(parts)


@dataclass
class SourceFile:
    """One parsed file plus everything the program rules derive from it."""

    relpath: str
    source: str
    tree: ast.Module
    module: Optional[str]
    layer: Optional[str]
    lines: List[str] = field(default_factory=list)
    #: module-level names bound to a structured logger
    #: (``_log = obs_log.get_logger(__name__)``).
    logger_names: Set[str] = field(default_factory=set)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1]
        return ""


@dataclass
class FunctionInfo:
    """One function or method, addressable by qualified name."""

    qualname: str  #: ``repro.fleet.store.FleetStore.enroll``
    name: str
    module: str
    relpath: str
    node: ast.FunctionDef
    class_name: Optional[str] = None  #: owning class, for methods
    params: List[str] = field(default_factory=list)  #: excludes ``self``

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    """One class: annotated fields and methods."""

    qualname: str
    name: str
    module: str
    relpath: str
    node: ast.ClassDef
    #: annotated class-level field name -> annotation source text
    fields: Dict[str, str] = field(default_factory=dict)
    field_nodes: Dict[str, ast.AnnAssign] = field(default_factory=dict)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    base_names: List[str] = field(default_factory=list)
    is_dataclass: bool = False


def _annotation_text(node: Optional[ast.AST]) -> str:
    if node is None:
        return ""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on parsed trees
        return ""


class ProjectModel:
    """Everything the interprocedural rules may inspect about the tree."""

    def __init__(self, config: LintConfig = DEFAULT_CONFIG) -> None:
        self.config = config
        self.files: Dict[str, SourceFile] = {}  #: by relpath
        self.by_module: Dict[str, SourceFile] = {}
        #: module -> local binding name -> absolute dotted target
        self.imports: Dict[str, Dict[str, str]] = {}
        #: module -> repro modules it imports (the import graph)
        self.import_graph: Dict[str, Set[str]] = {}
        self.functions: Dict[str, FunctionInfo] = {}  #: by qualname
        self.classes: Dict[str, ClassInfo] = {}  #: by qualname
        self.functions_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes_by_name: Dict[str, List[ClassInfo]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        sources: Mapping[str, str],
        config: LintConfig = DEFAULT_CONFIG,
    ) -> "ProjectModel":
        """Build a model from an in-memory ``{relpath: source}`` tree."""
        parsed: List[Tuple[str, str, ast.Module]] = []
        for relpath in sorted(sources):
            parsed.append(
                (relpath, sources[relpath], ast.parse(sources[relpath]))
            )
        return cls.from_parsed(parsed, config)

    @classmethod
    def from_parsed(
        cls,
        parsed: Sequence[Tuple[str, str, ast.Module]],
        config: LintConfig = DEFAULT_CONFIG,
    ) -> "ProjectModel":
        """Build a model from already-parsed ``(relpath, source, tree)``.

        The engine hands the per-file tier's parse cache straight in, so
        ``--program`` never re-reads or re-parses the tree.
        """
        model = cls(config)
        for relpath, source, tree in parsed:
            model._add_file(relpath, source, tree)
        for record in model.files.values():
            model._index_file(record)
        return model

    def _add_file(self, relpath: str, source: str, tree: ast.Module) -> None:
        module = module_for_relpath(relpath)
        layer = None
        if module is not None:
            segments = module.split(".")
            layer = segments[1] if len(segments) > 1 else segments[0]
        record = SourceFile(
            relpath=relpath,
            source=source,
            tree=tree,
            module=module,
            layer=layer,
            lines=source.splitlines(),
        )
        self.files[relpath] = record
        if module is not None:
            self.by_module[module] = record

    def _index_file(self, record: SourceFile) -> None:
        module = record.module
        if module is None:
            return
        bindings: Dict[str, str] = {}
        graph: Set[str] = set()
        for node in ast.walk(record.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bindings[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
                    if alias.name.split(".")[0] == "repro":
                        graph.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_import_from(record, node)
                if base is None:
                    continue
                if base.split(".")[0] == "repro":
                    graph.add(base)
                for alias in node.names:
                    bindings[alias.asname or alias.name] = (
                        f"{base}.{alias.name}"
                    )
        self.imports[module] = bindings
        self.import_graph[module] = graph
        # module-level logger bindings and top-level defs
        for node in record.tree.body:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                callee = dotted_tail(node.value.func)
                if callee == "get_logger":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            record.logger_names.add(target.id)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(record, node, class_name=None)
            elif isinstance(node, ast.ClassDef):
                self._index_class(record, node)

    @staticmethod
    def _resolve_import_from(
        record: SourceFile, node: ast.ImportFrom
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        module = record.module
        if module is None:
            return None
        package = module.split(".")
        if not record.relpath.endswith("__init__.py"):
            package = package[:-1]
        anchor = package[: len(package) - (node.level - 1)]
        if not anchor:
            return None
        return ".".join(anchor + ([node.module] if node.module else []))

    def _index_function(
        self,
        record: SourceFile,
        node: ast.FunctionDef,
        class_name: Optional[str],
    ) -> FunctionInfo:
        assert record.module is not None
        owner = f"{record.module}.{class_name}." if class_name else (
            f"{record.module}."
        )
        params = [arg.arg for arg in node.args.args]
        if class_name and params and params[0] in ("self", "cls"):
            params = params[1:]
        info = FunctionInfo(
            qualname=f"{owner}{node.name}",
            name=node.name,
            module=record.module,
            relpath=record.relpath,
            node=node,
            class_name=class_name,
            params=params,
        )
        self.functions[info.qualname] = info
        self.functions_by_name.setdefault(node.name, []).append(info)
        return info

    def _index_class(self, record: SourceFile, node: ast.ClassDef) -> None:
        assert record.module is not None
        info = ClassInfo(
            qualname=f"{record.module}.{node.name}",
            name=node.name,
            module=record.module,
            relpath=record.relpath,
            node=node,
            base_names=[
                dotted_tail(base) or "" for base in node.bases
            ],
            is_dataclass=any(
                (dotted_tail(deco) or "").startswith("dataclass")
                for deco in node.decorator_list
            ),
        )
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                info.fields[statement.target.id] = _annotation_text(
                    statement.annotation
                )
                info.field_nodes[statement.target.id] = statement
            elif isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                info.methods[statement.name] = self._index_function(
                    record, statement, class_name=node.name
                )
        self.classes[info.qualname] = info
        self.classes_by_name.setdefault(node.name, []).append(info)

    # -- queries -----------------------------------------------------------

    def field_annotations(self, attr: str) -> List[str]:
        """Every annotation the project gives a field named ``attr``."""
        return [
            info.fields[attr]
            for info in self.classes.values()
            if attr in info.fields
        ]

    def resolve_call(
        self, caller: FunctionInfo, call: ast.Call
    ) -> List[FunctionInfo]:
        """Candidate callees for ``call`` inside ``caller`` (may be [])."""
        func = call.func
        if isinstance(func, ast.Name):
            return self._resolve_plain(caller.module, func.id)
        if isinstance(func, ast.Attribute):
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in ("self", "cls")
                and caller.class_name is not None
            ):
                return self._resolve_self_method(caller, func.attr)
            base = dotted_name_of(func.value)
            if base is not None:
                target = self._binding_target(caller.module, base)
                if target is not None:
                    resolved = self._resolve_dotted(f"{target}.{func.attr}")
                    if resolved:
                        return resolved
            # fallback: the method name is project-unique (or nearly so)
            candidates = [
                info
                for info in self.functions_by_name.get(func.attr, [])
                if info.is_method
            ]
            if 1 <= len(candidates) <= 3:
                return candidates
        return []

    def _resolve_plain(self, module: str, name: str) -> List[FunctionInfo]:
        local = self.functions.get(f"{module}.{name}")
        if local is not None and not local.is_method:
            return [local]
        local_class = self.classes.get(f"{module}.{name}")
        if local_class is not None:
            init = local_class.methods.get("__init__")
            return [init] if init else []
        target = self.imports.get(module, {}).get(name)
        if target is not None:
            return self._resolve_dotted(target)
        return []

    def _resolve_dotted(self, dotted: str) -> List[FunctionInfo]:
        info = self.functions.get(dotted)
        if info is not None:
            return [info]
        klass = self.classes.get(dotted)
        if klass is not None:
            init = klass.methods.get("__init__")
            return [init] if init else []
        return []

    def _binding_target(self, module: str, base: str) -> Optional[str]:
        """Resolve a dotted base like ``obs_log`` or ``repro.obs.log``."""
        head = base.split(".")[0]
        bound = self.imports.get(module, {}).get(head)
        if bound is not None:
            rest = base.split(".")[1:]
            return ".".join([bound] + rest)
        if base in self.by_module:
            return base
        return None

    def _resolve_self_method(
        self, caller: FunctionInfo, method: str
    ) -> List[FunctionInfo]:
        assert caller.class_name is not None
        klass = self.classes.get(f"{caller.module}.{caller.class_name}")
        seen: Set[str] = set()
        while klass is not None and klass.qualname not in seen:
            seen.add(klass.qualname)
            if method in klass.methods:
                return [klass.methods[method]]
            klass = self._first_base(klass)
        return []

    def _first_base(self, klass: ClassInfo) -> Optional[ClassInfo]:
        for base in klass.base_names:
            name = base.split(".")[-1]
            candidates = self.classes_by_name.get(name, [])
            if len(candidates) == 1:
                return candidates[0]
        return None

    def finding(
        self,
        relpath: str,
        node: ast.AST,
        rule: str,
        message: str,
        hint: str = "",
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1
        record = self.files.get(relpath)
        return Finding(
            path=relpath,
            line=line,
            column=column,
            rule=rule,
            message=message,
            hint=hint,
            line_text=record.line_text(line) if record else "",
        )


def dotted_name_of(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def dotted_tail(node: ast.AST) -> Optional[str]:
    """The final component of a Name/Attribute/Call chain."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ProgramRule(abc.ABC):
    """One whole-program invariant, checked over the project model."""

    id: str = ""
    title: str = ""
    rationale: str = ""

    @abc.abstractmethod
    def check(self, model: ProjectModel) -> Iterator[Finding]:
        """Yield findings over the whole project."""


_PROGRAM_REGISTRY: Dict[str, ProgramRule] = {}


def register_program(rule_class: type) -> type:
    """Class decorator: instantiate and index the program rule by id."""
    rule = rule_class()
    if not rule.id:
        raise ValueError(f"program rule {rule_class.__name__} has no id")
    if rule.id in _PROGRAM_REGISTRY:
        raise ValueError(f"duplicate program rule id {rule.id}")
    _PROGRAM_REGISTRY[rule.id] = rule
    return rule_class


def all_program_rules() -> List[ProgramRule]:
    """Every registered program rule, ordered by id."""
    import repro.lint.rules  # noqa: F401  (registration side effect)

    return [_PROGRAM_REGISTRY[rule_id] for rule_id in sorted(_PROGRAM_REGISTRY)]
