"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    ``fingerprint`` identifies the finding for baseline matching.  It
    hashes the rule id, the file path, and the *text* of the offending
    line (not its number), so a baselined finding survives unrelated
    edits that renumber the file but is invalidated the moment the
    flagged line itself changes.
    """

    path: str  #: posix path relative to the source root, e.g. ``repro/core/verifier.py``
    line: int
    column: int
    rule: str  #: rule id, e.g. ``SACHA002``
    message: str
    hint: str = ""  #: fix-it hint; empty when the rule has no mechanical fix
    line_text: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        material = f"{self.rule}::{self.path}::{self.line_text.strip()}"
        return hashlib.sha256(material.encode()).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "rule": self.rule,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }
        if self.hint:
            record["hint"] = self.hint
        return record

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"


#: Pseudo-rule id for files the engine could not parse.
PARSE_ERROR_RULE = "SACHA000"
