"""Text and JSON renderings of a lint run."""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from repro.lint.engine import LintResult


def render_text(result: LintResult, show_hints: bool = True) -> str:
    """Human-readable report: one line per finding, a summary footer."""
    lines = []
    for finding in result.findings:
        lines.append(finding.render())
        if show_hints and finding.hint:
            lines.append(f"    hint: {finding.hint}")
    for entry in result.stale_baseline:
        lines.append(
            f"stale baseline entry: {entry.rule} {entry.path} "
            f"({entry.fingerprint}) — fixed; regenerate with --write-baseline"
        )
    tallies = [f"{result.files_scanned} file(s) scanned"]
    if result.suppressed:
        tallies.append(f"{result.suppressed} suppressed inline")
    if result.baselined:
        tallies.append(f"{result.baselined} baselined")
    if result.findings:
        by_rule = Counter(finding.rule for finding in result.findings)
        breakdown = ", ".join(
            f"{rule}×{count}" for rule, count in sorted(by_rule.items())
        )
        tallies.append(f"{len(result.findings)} finding(s): {breakdown}")
    else:
        tallies.append("clean")
    lines.append("sachalint: " + "; ".join(tallies))
    for timing in result.timings:
        lines.append(
            f"  {timing.rule}: {timing.files} file(s), "
            f"{timing.findings} finding(s), {timing.seconds * 1000:.1f} ms"
        )
    return "\n".join(lines)


def to_dict(result: LintResult) -> Dict[str, object]:
    by_rule = Counter(finding.rule for finding in result.findings)
    return {
        "version": 1,
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed,
        "baselined": result.baselined,
        "stale_baseline": [
            {
                "fingerprint": entry.fingerprint,
                "rule": entry.rule,
                "path": entry.path,
            }
            for entry in result.stale_baseline
        ],
        "summary": dict(sorted(by_rule.items())),
        "findings": [finding.to_dict() for finding in result.findings],
        "timings": [
            {
                "rule": timing.rule,
                "files": timing.files,
                "findings": timing.findings,
                "seconds": timing.seconds,
            }
            for timing in result.timings
        ],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(to_dict(result), indent=2) + "\n"
