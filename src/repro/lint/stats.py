"""The ``repro lint --stats`` timer (SACHA001-exempt, like the wallclock).

Per-rule timings are tool diagnostics for the person running the
linter; they are never part of a reproducible artifact, so this is the
one place under ``repro.lint`` allowed to read a real clock.  The lint
layer sits below ``repro.obs`` in the layer DAG, so it cannot borrow
``repro.obs.wallclock`` — hence its own one-function module, listed in
:data:`repro.lint.config.DETERMINISM_EXEMPT` with the same rationale.
"""

from __future__ import annotations

import time


def rule_clock() -> float:
    """Monotonic seconds for timing rule execution (diagnostics only)."""
    return time.perf_counter()
