"""Structured logging for the library (``repro.obs.log``).

Library modules log *events with fields*, not formatted strings::

    from repro.obs import log

    logger = log.get_logger(__name__)
    logger.info("attestation_rejected", device="prv-3", frames=2)

Everything hangs off the stdlib ``repro`` logger, which carries a
``NullHandler`` by default — importing the library never prints.  The
CLI (or an embedding application) calls :func:`configure` to attach a
handler: key-value lines for humans, JSON lines (``--log-json``) for
machines.  No formatter emits wall-clock timestamps, so log output is
reproducible run to run; simulation times travel as ordinary fields
(``time_ns=...``).
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional

ROOT_LOGGER_NAME = "repro"

_FIELDS_ATTR = "repro_fields"
_EVENT_ATTR = "repro_event"

logging.getLogger(ROOT_LOGGER_NAME).addHandler(logging.NullHandler())


class StructuredLogger:
    """Thin event+fields facade over one stdlib logger."""

    def __init__(self, logger: logging.Logger) -> None:
        self._logger = logger

    @property
    def stdlib_logger(self) -> logging.Logger:
        return self._logger

    def _log(self, level: int, event: str, fields: dict) -> None:
        if self._logger.isEnabledFor(level):
            extra = {_FIELDS_ATTR: fields, _EVENT_ATTR: event}
            self._logger.log(level, event, extra=extra)

    def debug(self, event: str, **fields: object) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields: object) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields: object) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields: object) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(name: str = ROOT_LOGGER_NAME) -> StructuredLogger:
    """A structured logger below the ``repro`` hierarchy.

    Dotted module names (``repro.core.protocol``) are used as-is; any
    other name is nested under ``repro.``.
    """
    if name != ROOT_LOGGER_NAME and not name.startswith(ROOT_LOGGER_NAME + "."):
        name = f"{ROOT_LOGGER_NAME}.{name}"
    return StructuredLogger(logging.getLogger(name))


class KeyValueFormatter(logging.Formatter):
    """``level logger event key=value ...`` — grep-friendly."""

    def format(self, record: logging.LogRecord) -> str:
        event = getattr(record, _EVENT_ATTR, record.getMessage())
        fields = getattr(record, _FIELDS_ATTR, {})
        parts = [record.levelname.lower(), record.name, event]
        parts.extend(f"{key}={value}" for key, value in fields.items())
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line: level, logger, event, then the fields."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, _EVENT_ATTR, record.getMessage()),
        }
        payload.update(getattr(record, _FIELDS_ATTR, {}))
        return json.dumps(payload, sort_keys=True, default=str)


def configure(
    level: int = logging.INFO,
    json_output: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Handler:
    """Attach one stream handler to the ``repro`` logger.

    Replaces any handler a previous :func:`configure` attached, so the
    CLI can be invoked repeatedly in one process (tests do).
    """
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_output else KeyValueFormatter())
    handler._repro_obs_handler = True
    root.addHandler(handler)
    root.setLevel(level)
    return handler


def reset() -> None:
    """Detach configured handlers (restores the silent default)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs_handler", False):
            root.removeHandler(handler)
