"""Observability: metrics, spans, traces, aggregation, health.

``repro.obs`` is the measurement substrate for every attestation run:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauges and fixed-bucket histograms;
* :mod:`repro.obs.spans` — ``span("readback", frame=idx)`` context
  managers that nest via ``contextvars`` and timestamp from the
  simulation clock;
* :mod:`repro.obs.trace` — nonce-derived trace ids propagated across
  the networked session, and multi-party span-dump stitching;
* :mod:`repro.obs.aggregate` — exact merging of per-worker registry
  shards and snapshot restore for offline fleet roll-ups;
* :mod:`repro.obs.profile` — critical-path extraction, self-time
  breakdowns, and collapsed-stack flamegraph export;
* :mod:`repro.obs.health` — declarative SLO rules over snapshots
  producing an OK/WARN/CRIT :class:`HealthReport`;
* :mod:`repro.obs.exporters` — Prometheus text exposition and JSON-lines
  logs, deterministic for golden tests;
* :mod:`repro.obs.log` — structured event logging for library modules.

The active registry starts *disabled*: all instruments are shared
no-ops and spans vanish, so un-instrumented callers pay (almost)
nothing.  Enable collection for a scope with::

    from repro import obs

    with obs.use_registry(obs.MetricsRegistry()) as registry:
        report = quick_attestation()
        print(obs.to_prometheus(registry))
        print(obs.render_span_tree(registry.spans))
"""

from repro.obs import log
from repro.obs.aggregate import (
    merge_registries,
    merge_snapshots,
    registry_from_snapshot,
    rollup_by_label,
    shard_registry,
)
from repro.obs.exporters import (
    registry_snapshot,
    spans_to_jsonl,
    to_jsonl,
    to_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.health import (
    DEFAULT_RULES,
    HealthReport,
    HealthStatus,
    MetricSelector,
    QuantileRule,
    RatioRule,
    RuleResult,
    evaluate_health,
    health_exit_code,
)
from repro.obs.metrics import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_context_registry,
    use_registry,
)
from repro.obs.profile import (
    arq_timeline,
    critical_path,
    phase_breakdown,
    render_report,
    to_collapsed_stacks,
)
from repro.obs.spans import (
    SpanRecord,
    current_span,
    render_span_tree,
    span,
    span_tree,
    spans_to_trace,
)
from repro.obs.trace import (
    TraceContext,
    current_trace,
    load_span_dump,
    merge_span_dumps,
    span_records_from_jsonl,
    trace_context,
    trace_id_from_nonce,
    trace_ids,
)

__all__ = [
    "log",
    "DEFAULT_DURATION_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "use_context_registry",
    "SpanRecord",
    "current_span",
    "span",
    "span_tree",
    "spans_to_trace",
    "render_span_tree",
    "registry_snapshot",
    "spans_to_jsonl",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_prometheus",
    "TraceContext",
    "current_trace",
    "trace_context",
    "trace_id_from_nonce",
    "trace_ids",
    "span_records_from_jsonl",
    "load_span_dump",
    "merge_span_dumps",
    "merge_registries",
    "merge_snapshots",
    "registry_from_snapshot",
    "rollup_by_label",
    "shard_registry",
    "arq_timeline",
    "critical_path",
    "phase_breakdown",
    "render_report",
    "to_collapsed_stacks",
    "DEFAULT_RULES",
    "HealthReport",
    "HealthStatus",
    "MetricSelector",
    "QuantileRule",
    "RatioRule",
    "RuleResult",
    "evaluate_health",
    "health_exit_code",
]
