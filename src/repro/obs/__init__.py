"""Observability: metrics, structured spans, exporters, logging.

``repro.obs`` is the measurement substrate for every attestation run:

* :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of labeled
  counters, gauges and fixed-bucket histograms;
* :mod:`repro.obs.spans` — ``span("readback", frame=idx)`` context
  managers that nest via ``contextvars`` and timestamp from the
  simulation clock;
* :mod:`repro.obs.exporters` — Prometheus text exposition and JSON-lines
  logs, deterministic for golden tests;
* :mod:`repro.obs.log` — structured event logging for library modules.

The active registry starts *disabled*: all instruments are shared
no-ops and spans vanish, so un-instrumented callers pay (almost)
nothing.  Enable collection for a scope with::

    from repro import obs

    with obs.use_registry(obs.MetricsRegistry()) as registry:
        report = quick_attestation()
        print(obs.to_prometheus(registry))
        print(obs.render_span_tree(registry.spans))
"""

from repro.obs import log
from repro.obs.exporters import (
    registry_snapshot,
    spans_to_jsonl,
    to_jsonl,
    to_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    DEFAULT_DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.spans import (
    SpanRecord,
    current_span,
    render_span_tree,
    span,
    span_tree,
    spans_to_trace,
)

__all__ = [
    "log",
    "DEFAULT_DURATION_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "SpanRecord",
    "current_span",
    "span",
    "span_tree",
    "spans_to_trace",
    "render_span_tree",
    "registry_snapshot",
    "spans_to_jsonl",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
    "write_prometheus",
]
