"""Cross-session trace propagation and multi-party span-dump merging.

A *trace* ties the spans of every party that worked on one attestation
attempt together.  The trace id is not random: it is derived via
SHA-256 from the attempt's session nonce, so the verifier and the
prover compute the *same* id independently of transport timing, and two
runs with the same seed produce byte-identical trace ids.  The
networked session carries the id to the prover in a ``TraceHello``
handshake frame (``repro.net.messages``), and every span opened while a
:func:`trace_context` is active records ``trace_id`` and ``session``
fields (see :mod:`repro.obs.spans`).

The second half of this module is offline: :func:`merge_span_dumps`
takes the span dumps of several parties (the verifier's JSONL file, the
prover's JSONL file) and stitches them into one consistent record list
— span ids are re-based so they cannot collide, and parentless spans of
a trace are re-parented under the trace's anchor span (the earliest
span carrying the id, which is the verifier's ``session_attempt``), so
``span_tree`` sees a single tree per attestation attempt.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.errors import ObservabilityError

#: Raw trace-id width on the wire; the textual form is its hex digest.
TRACE_ID_BYTES = 16

#: Domain-separation prefix for the nonce -> trace-id derivation.
_TRACE_DOMAIN = b"sacha-trace-v1:"


def trace_id_from_nonce(nonce: bytes) -> str:
    """The deterministic trace id of the attempt that drew ``nonce``.

    SHA-256 with a fixed domain prefix, truncated to
    :data:`TRACE_ID_BYTES`; returned as lowercase hex.  Deriving (not
    inventing) the id is what lets both protocol ends agree on it with
    nothing but the handshake frame.
    """
    digest = hashlib.sha256(_TRACE_DOMAIN + bytes(nonce)).digest()
    return digest[:TRACE_ID_BYTES].hex()


@dataclasses.dataclass(frozen=True)
class TraceContext:
    """The ambient trace of the current execution context.

    ``session`` names the party recording spans — ``"verifier"``, a
    prover's device id — and lands on every span record opened while
    the context is active.
    """

    trace_id: str
    session: str


_CURRENT_TRACE: contextvars.ContextVar[Optional[TraceContext]] = (
    contextvars.ContextVar("repro_obs_current_trace", default=None)
)


def current_trace() -> Optional[TraceContext]:
    """The active :class:`TraceContext`, if any."""
    return _CURRENT_TRACE.get()


@contextlib.contextmanager
def trace_context(trace_id: str, session: str) -> Iterator[TraceContext]:
    """Install a trace context for the duration of the ``with`` block."""
    context = TraceContext(trace_id=trace_id, session=session)
    token = _CURRENT_TRACE.set(context)
    try:
        yield context
    finally:
        _CURRENT_TRACE.reset(token)


# -- multi-party dump merging --------------------------------------------------


def span_records_from_jsonl(text: str):
    """Parse a span JSONL dump back into :class:`SpanRecord` objects.

    Non-span lines (the exporters interleave trace records in the same
    file format) are skipped.
    """
    from repro.obs.spans import SpanRecord

    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            fields = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"span dump line {line_number} is not valid JSON: {exc}"
            ) from exc
        if fields.get("record") != "span":
            continue
        records.append(
            SpanRecord(
                span_id=int(fields["span_id"]),
                parent_id=(
                    int(fields["parent_id"])
                    if fields.get("parent_id") is not None
                    else None
                ),
                name=str(fields["name"]),
                start_ns=float(fields["start_ns"]),
                end_ns=float(fields["end_ns"]),
                attributes=dict(fields.get("attributes", {})),
                status=str(fields.get("status", "ok")),
                error=str(fields.get("error", "")),
                trace_id=str(fields.get("trace_id", "")),
                session=str(fields.get("session", "")),
                events=tuple(fields.get("events", ())),
            )
        )
    return records


def load_span_dump(path: Union[str, Path]):
    """Read one party's span dump (JSON lines) from ``path``."""
    return span_records_from_jsonl(Path(path).read_text(encoding="utf-8"))


def merge_span_dumps(dumps: Sequence[Sequence["object"]]) -> List["object"]:
    """Merge several parties' span dumps into one consistent record list.

    Three deterministic steps:

    1. **Re-base ids** — each dump's span ids are shifted by a running
       offset so ids from different dumps cannot collide (parent links
       are intra-dump, so they shift with their spans).
    2. **Stitch traces** — for every trace id, the *anchor* is the
       earliest span carrying it (ties broken by re-based id); every
       other parentless span of the trace is re-parented under the
       anchor.  With the networked session's dumps this hangs the
       prover's command spans under the verifier's ``session_attempt``.
    3. **Sort** by ``(start_ns, span_id)`` so the output is independent
       of the order records appeared within each dump.

    The result is byte-stable: same dumps in, same list out.
    """
    rebased = []
    offset = 0
    for dump in dumps:
        highest = 0
        for record in dump:
            highest = max(highest, record.span_id)
            rebased.append(
                dataclasses.replace(
                    record,
                    span_id=record.span_id + offset,
                    parent_id=(
                        record.parent_id + offset
                        if record.parent_id is not None
                        else None
                    ),
                )
            )
        offset += highest

    anchors: Dict[str, "object"] = {}
    for record in rebased:
        if not record.trace_id:
            continue
        anchor = anchors.get(record.trace_id)
        if anchor is None or (record.start_ns, record.span_id) < (
            anchor.start_ns,
            anchor.span_id,
        ):
            anchors[record.trace_id] = record

    stitched = []
    for record in rebased:
        anchor = anchors.get(record.trace_id) if record.trace_id else None
        if (
            anchor is not None
            and record.parent_id is None
            and record.span_id != anchor.span_id
        ):
            record = dataclasses.replace(record, parent_id=anchor.span_id)
        stitched.append(record)
    stitched.sort(key=lambda record: (record.start_ns, record.span_id))
    return stitched


def trace_ids(spans: Sequence["object"]) -> List[str]:
    """The distinct non-empty trace ids present in ``spans``, sorted."""
    return sorted({record.trace_id for record in spans if record.trace_id})
