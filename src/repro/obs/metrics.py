"""Metric instruments and the registry that owns them.

Three instrument kinds, modelled on the Prometheus data model:

* :class:`Counter` — a monotonically increasing total, optionally split
  by labels (``sacha_attestations_total{result="accept"}``);
* :class:`Gauge` — a value that can go up and down (detection latency,
  fleet size);
* :class:`Histogram` — fixed-bucket value distributions (phase
  durations).  Buckets are fixed at creation; there is no wall-clock
  dependence anywhere — every duration observed comes from the
  simulation clock.

A :class:`MetricsRegistry` owns the instruments plus the finished span
records (see :mod:`repro.obs.spans`).  A *disabled* registry hands out
shared no-op instruments and drops spans, so instrumented library code
pays one attribute check per run when observability is off.

The process-wide active registry is reached through
:func:`get_registry` / :func:`set_registry`; it starts disabled, so
importing :mod:`repro` never starts collecting anything.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError


#: Default duration buckets in *seconds*: from microseconds (single
#: protocol actions at simulation scale) to minutes (a full XC6VLX240T
#: sweep on the lab network takes 28.5 s).
DEFAULT_DURATION_BUCKETS: Tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
    120.0,
)


def _label_key(
    label_names: Tuple[str, ...], labels: Mapping[str, str]
) -> Tuple[str, ...]:
    # Hot path: build the key directly and let a length/name mismatch
    # fall through to the error, instead of allocating comparison sets
    # on every single increment.
    if len(labels) == len(label_names):
        try:
            return tuple(str(labels[name]) for name in label_names)
        except KeyError:
            pass
    raise ObservabilityError(
        f"expected labels {sorted(label_names)}, got {sorted(labels)}"
    )


class Counter:
    """A labeled monotonic counter."""

    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name} cannot decrease (inc by {amount})"
            )
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def series(self, **labels: str) -> "CounterSeries":
        """A pre-resolved handle for one label set's hot-path increments.

        Resolving the label key once and reusing the handle turns each
        increment into a single dict update — the difference between a
        negligible and a measurable cost on per-frame paths.  The handle
        skips the monotonicity check, so callers own non-negativity.
        """
        return CounterSeries(self._values, _label_key(self.label_names, labels))

    def samples(self) -> Iterator[Tuple[Dict[str, str], float]]:
        """(labels, value) pairs in deterministic (sorted) order."""
        for key in sorted(self._values):
            yield dict(zip(self.label_names, key)), self._values[key]

    def merge_from(self, other: "Counter") -> None:
        """Add ``other``'s totals into this counter, series by series."""
        _check_mergeable(self, other)
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class CounterSeries:
    """One counter series bound to its resolved label key."""

    __slots__ = ("_values", "_key")

    def __init__(self, values: Dict[Tuple[str, ...], float], key: Tuple[str, ...]) -> None:
        self._values = values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        values = self._values
        key = self._key
        values[key] = values.get(key, 0.0) + amount


class Gauge:
    """A labeled value that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: Sequence[str] = ()) -> None:
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels: str) -> None:
        self._values[_label_key(self.label_names, labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        return self._values.get(_label_key(self.label_names, labels), 0.0)

    def samples(self) -> Iterator[Tuple[Dict[str, str], float]]:
        for key in sorted(self._values):
            yield dict(zip(self.label_names, key)), self._values[key]

    def merge_from(self, other: "Gauge") -> None:
        """Sum ``other``'s series into this gauge.

        Shard gauges are additive contributions (per-shard tallies); for
        last-writer-wins semantics, set the gauge on the merged registry
        after merging instead.
        """
        _check_mergeable(self, other)
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value


class _HistogramSeries:
    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, bucket_count: int) -> None:
        self.bucket_counts = [0] * bucket_count
        self.sum = 0.0
        self.count = 0


class Histogram:
    """A labeled fixed-bucket histogram.

    ``buckets`` are ascending upper bounds; an implicit ``+Inf`` bucket
    catches the rest.  Exposition follows the Prometheus cumulative
    ``_bucket``/``_sum``/``_count`` convention.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ) -> None:
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds:
            raise ObservabilityError(f"histogram {name} needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ObservabilityError(
                f"histogram {name} buckets must be strictly ascending: {bounds}"
            )
        self.name = name
        self.help = help
        self.label_names: Tuple[str, ...] = tuple(labels)
        self.buckets = bounds
        self._series: Dict[Tuple[str, ...], _HistogramSeries] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = _label_key(self.label_names, labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                series.bucket_counts[index] += 1
                break
        series.sum += value
        series.count += 1

    def count(self, **labels: str) -> int:
        series = self._series.get(_label_key(self.label_names, labels))
        return series.count if series else 0

    def sum(self, **labels: str) -> float:
        series = self._series.get(_label_key(self.label_names, labels))
        return series.sum if series else 0.0

    def cumulative_buckets(
        self, **labels: str
    ) -> List[Tuple[float, int]]:
        """(upper_bound, cumulative_count) pairs, +Inf last."""
        series = self._series.get(_label_key(self.label_names, labels))
        counts = series.bucket_counts if series else [0] * len(self.buckets)
        total = series.count if series else 0
        cumulative: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, counts):
            running += count
            cumulative.append((bound, running))
        cumulative.append((float("inf"), total))
        return cumulative

    def samples(self) -> Iterator[Tuple[Dict[str, str], _HistogramSeries]]:
        for key in sorted(self._series):
            yield dict(zip(self.label_names, key)), self._series[key]

    def merge_from(self, other: "Histogram") -> None:
        """Bucket-wise merge: per-bucket counts, sums, and totals add."""
        _check_mergeable(self, other)
        if other.buckets != self.buckets:
            raise ObservabilityError(
                f"histogram {self.name} bucket mismatch: "
                f"{self.buckets} vs {other.buckets}"
            )
        for key, series in other._series.items():
            self._merge_series(key, series.bucket_counts, series.sum, series.count)

    def _merge_series(
        self,
        key: Tuple[str, ...],
        bucket_counts: Sequence[int],
        sum_value: float,
        count: int,
    ) -> None:
        if len(bucket_counts) != len(self.buckets):
            raise ObservabilityError(
                f"histogram {self.name} expects {len(self.buckets)} "
                f"bucket counts, got {len(bucket_counts)}"
            )
        target = self._series.get(key)
        if target is None:
            target = self._series[key] = _HistogramSeries(len(self.buckets))
        for index, bucket_count in enumerate(bucket_counts):
            target.bucket_counts[index] += bucket_count
        target.sum += sum_value
        target.count += count


def _check_mergeable(target, source) -> None:
    if source.kind != target.kind:
        raise ObservabilityError(
            f"cannot merge {source.kind} {source.name} into "
            f"{target.kind} {target.name}"
        )
    if source.name != target.name:
        raise ObservabilityError(
            f"cannot merge metric {source.name} into {target.name}"
        )
    if source.label_names != target.label_names:
        raise ObservabilityError(
            f"metric {target.name} label mismatch: "
            f"{target.label_names} vs {source.label_names}"
        )


class _NoOpInstrument:
    """Shared sink handed out by a disabled registry."""

    kind = "noop"
    name = ""
    label_names: Tuple[str, ...] = ()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0


_NOOP = _NoOpInstrument()


class MetricsRegistry:
    """Owns instruments and span records for one collection scope."""

    def __init__(self, enabled: bool = True, span_id_base: int = 0) -> None:
        self._enabled = enabled
        self._instruments: Dict[str, object] = {}
        self._spans: List[object] = []
        # Worker-shard registries get disjoint bases (see repro.obs.aggregate)
        # so merged span dumps need no id remapping.
        self._span_id_base = span_id_base
        self._span_id = span_id_base
        self._lock = threading.Lock()
        # Bumped by clear() so callers holding cached instrument handles
        # (hot-path fast paths) know to re-fetch them.
        self.generation = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    def clear(self) -> None:
        """Drop every instrument and span (tests, per-bench snapshots)."""
        with self._lock:
            self._instruments.clear()
            self._spans.clear()
            self._span_id = self._span_id_base
            self.generation += 1

    # -- instrument factories ----------------------------------------------

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        if not self._enabled:
            return _NOOP
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ObservabilityError(
                        f"metric {name} already registered as "
                        f"{existing.kind}, requested {cls.kind}"
                    )
                if tuple(labels) != existing.label_names:
                    raise ObservabilityError(
                        f"metric {name} already registered with labels "
                        f"{existing.label_names}, requested {tuple(labels)}"
                    )
                return existing
            instrument = cls(name, help, labels, **kwargs)
            self._instruments[name] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_DURATION_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    # -- introspection -----------------------------------------------------

    def instruments(self) -> List[object]:
        """Registered instruments sorted by name."""
        with self._lock:
            return [self._instruments[name] for name in sorted(self._instruments)]

    def get(self, name: str) -> Optional[object]:
        return self._instruments.get(name)

    # -- span storage (written by repro.obs.spans) -------------------------

    def next_span_id(self) -> int:
        with self._lock:
            self._span_id += 1
            return self._span_id

    def record_span(self, record: object) -> None:
        if self._enabled:
            # Same lock as clear()/instruments(): swarm workers flush
            # span records through their shard registry concurrently.
            with self._lock:
                self._spans.append(record)

    @property
    def spans(self) -> Tuple[object, ...]:
        with self._lock:
            return tuple(self._spans)


#: The process-wide registry.  Starts disabled: importing repro collects
#: nothing until a CLI flag, a test fixture, or an embedding application
#: swaps in an enabled registry.
_ACTIVE = MetricsRegistry(enabled=False)

#: Context-local override of the active registry.  Swarm workers run
#: each member inside a copied context with their shard registry set
#: here, so instrumented code deep in the protocol lands metrics in the
#: worker's shard without any plumbing — and without the workers racing
#: on the process-wide ``_ACTIVE``.
_CONTEXT: contextvars.ContextVar[Optional[MetricsRegistry]] = (
    contextvars.ContextVar("repro_obs_context_registry", default=None)
)


def get_registry() -> MetricsRegistry:
    """The active registry (instrumented code fetches it per run).

    A context-local registry (see :func:`use_context_registry`) takes
    precedence over the process-wide one.
    """
    contextual = _CONTEXT.get()
    return contextual if contextual is not None else _ACTIVE


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    # Registry installation happens on the main thread before a sweep
    # starts; workers only read _ACTIVE and update instruments under
    # the per-registry lock.
    global _ACTIVE  # sachalint: disable=SACHA005
    previous = _ACTIVE
    _ACTIVE = registry
    return previous


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry):
    """Temporarily install ``registry`` (tests, scoped collection)."""
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@contextlib.contextmanager
def use_context_registry(registry: MetricsRegistry):
    """Install ``registry`` for the current execution context only.

    Unlike :func:`use_registry` this does not touch the process-wide
    registry, so concurrent contexts (swarm worker threads) can each
    collect into their own shard.
    """
    token = _CONTEXT.set(registry)
    try:
        yield registry
    finally:
        _CONTEXT.reset(token)
