"""Exporters: Prometheus text exposition and JSON-lines event logs.

Both formats are deterministic — metric families sorted by name, label
sets sorted by value tuple, JSON keys sorted — so golden-output tests
and diffing two runs both work.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, List, Mapping, Union

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.spans import SpanRecord


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in labels.items()
    )
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _bound_text(bound: float) -> str:
    return "+Inf" if math.isinf(bound) else _format_value(bound)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every instrument in Prometheus text exposition format."""
    lines: List[str] = []
    for instrument in registry.instruments():
        if instrument.help:
            lines.append(f"# HELP {instrument.name} {instrument.help}")
        lines.append(f"# TYPE {instrument.name} {instrument.kind}")
        if isinstance(instrument, (Counter, Gauge)):
            samples = list(instrument.samples())
            if not samples and not instrument.label_names:
                samples = [({}, 0.0)]
            for labels, value in samples:
                lines.append(
                    f"{instrument.name}{_format_labels(labels)} "
                    f"{_format_value(value)}"
                )
        elif isinstance(instrument, Histogram):
            for labels, series in instrument.samples():
                for bound, cumulative in instrument.cumulative_buckets(**labels):
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _bound_text(bound)
                    lines.append(
                        f"{instrument.name}_bucket"
                        f"{_format_labels(bucket_labels)} {cumulative}"
                    )
                lines.append(
                    f"{instrument.name}_sum{_format_labels(labels)} "
                    f"{_format_value(series.sum)}"
                )
                lines.append(
                    f"{instrument.name}_count{_format_labels(labels)} "
                    f"{series.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: Union[str, Path]) -> Path:
    path = Path(path)
    path.write_text(to_prometheus(registry), encoding="utf-8")
    return path


def to_jsonl(records: Iterable[Mapping[str, object]]) -> str:
    """One compact sorted-key JSON object per line."""
    return "".join(
        json.dumps(dict(record), sort_keys=True, default=str) + "\n"
        for record in records
    )


def spans_to_jsonl(spans: Iterable[SpanRecord]) -> str:
    return to_jsonl(record.to_dict() for record in spans)


def write_jsonl(
    records: Iterable[Mapping[str, object]], path: Union[str, Path]
) -> Path:
    path = Path(path)
    path.write_text(to_jsonl(records), encoding="utf-8")
    return path


def registry_snapshot(registry: MetricsRegistry) -> dict:
    """A plain-dict snapshot of every instrument (for JSON dumps/tests).

    Lossless: histograms carry their bucket bounds and per-bucket
    (non-cumulative) counts, and every family records its help text and
    label names, so a snapshot restores into an equivalent registry via
    :func:`repro.obs.aggregate.registry_from_snapshot` and participates
    in merges.
    """
    snapshot: dict = {}
    for instrument in registry.instruments():
        if isinstance(instrument, (Counter, Gauge)):
            snapshot[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "label_names": list(instrument.label_names),
                "samples": [
                    {"labels": labels, "value": value}
                    for labels, value in instrument.samples()
                ],
            }
        elif isinstance(instrument, Histogram):
            snapshot[instrument.name] = {
                "kind": instrument.kind,
                "help": instrument.help,
                "label_names": list(instrument.label_names),
                "buckets": list(instrument.buckets),
                "samples": [
                    {
                        "labels": labels,
                        "count": series.count,
                        "sum": series.sum,
                        "bucket_counts": list(series.bucket_counts),
                    }
                    for labels, series in instrument.samples()
                ],
            }
    return snapshot
