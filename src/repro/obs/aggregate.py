"""Registry aggregation: merging worker shards and restoring snapshots.

Thread-pool swarm sweeps give every worker its own ``MetricsRegistry``
shard (see ``repro.core.swarm``) so instrument updates never contend on
one registry, then merge the shards back into the sweep's registry with
:func:`merge_registries`.  The merge is *exact*, not approximate:

* counters and gauges sum per label set;
* histograms merge bucket-wise (per-bucket counts, sums, totals add);
* span records concatenate — shards are constructed with disjoint
  ``span_id_base`` values, so ids never collide and no remapping is
  needed.

Merging is performed in a caller-chosen deterministic order (member
order, not completion order), which together with the exact arithmetic
makes the merged output byte-identical to a sequential run regardless
of worker count.

:func:`registry_from_snapshot` is the inverse of
``repro.obs.exporters.registry_snapshot``: it rebuilds a live registry
from the plain-dict form, so snapshots written by different runs can be
merged offline (fleet roll-ups) and fed to the health engine.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

#: Span-id stride between worker shards.  A single attestation records a
#: handful of spans, so one million ids per shard is unreachable while
#: keeping merged ids readable.
SPAN_ID_STRIDE = 1_000_000


def shard_registry(index: int, enabled: bool = True) -> MetricsRegistry:
    """A worker shard with a disjoint span-id range (1-based ``index``)."""
    if index < 0:
        raise ObservabilityError(f"shard index must be >= 0, got {index}")
    return MetricsRegistry(
        enabled=enabled, span_id_base=SPAN_ID_STRIDE * (index + 1)
    )


def merge_registries(
    sources: Sequence[MetricsRegistry],
    into: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Merge ``sources`` into ``into`` (or a fresh enabled registry).

    Instruments are created on the target on first sight with the
    source's metadata; subsequent sources must agree on kind, labels,
    and (for histograms) bucket bounds.  Merge order is the order of
    ``sources`` — pass shards in member order for byte-stable output.
    """
    target = into if into is not None else MetricsRegistry(enabled=True)
    if not target.enabled:
        raise ObservabilityError("cannot merge into a disabled registry")
    for source in sources:
        for instrument in source.instruments():
            if isinstance(instrument, Counter):
                mine = target.counter(
                    instrument.name, instrument.help, instrument.label_names
                )
            elif isinstance(instrument, Gauge):
                mine = target.gauge(
                    instrument.name, instrument.help, instrument.label_names
                )
            elif isinstance(instrument, Histogram):
                mine = target.histogram(
                    instrument.name,
                    instrument.help,
                    instrument.label_names,
                    buckets=instrument.buckets,
                )
            else:  # pragma: no cover - registries only hold the three kinds
                raise ObservabilityError(
                    f"cannot merge instrument kind {instrument.kind!r}"
                )
            mine.merge_from(instrument)
        for record in source.spans:
            target.record_span(record)
    return target


def registry_from_snapshot(snapshot: Mapping[str, Mapping]) -> MetricsRegistry:
    """Rebuild a live registry from a ``registry_snapshot`` dict."""
    registry = MetricsRegistry(enabled=True)
    for name in sorted(snapshot):
        family = snapshot[name]
        kind = family.get("kind")
        label_names = tuple(family.get("label_names", ()))
        help_text = str(family.get("help", ""))
        samples = family.get("samples", ())
        if kind == "counter":
            counter = registry.counter(name, help_text, label_names)
            for sample in samples:
                counter.inc(float(sample["value"]), **sample["labels"])
        elif kind == "gauge":
            gauge = registry.gauge(name, help_text, label_names)
            for sample in samples:
                gauge.set(float(sample["value"]), **sample["labels"])
        elif kind == "histogram":
            if "buckets" not in family:
                raise ObservabilityError(
                    f"snapshot of histogram {name} has no bucket bounds; "
                    "re-export it with a current registry_snapshot"
                )
            histogram = registry.histogram(
                name, help_text, label_names, buckets=family["buckets"]
            )
            for sample in samples:
                if "bucket_counts" not in sample:
                    raise ObservabilityError(
                        f"snapshot of histogram {name} has no bucket_counts; "
                        "re-export it with a current registry_snapshot"
                    )
                key = tuple(
                    str(sample["labels"][label]) for label in label_names
                )
                histogram._merge_series(
                    key,
                    [int(count) for count in sample["bucket_counts"]],
                    float(sample["sum"]),
                    int(sample["count"]),
                )
        else:
            raise ObservabilityError(
                f"snapshot family {name} has unknown kind {kind!r}"
            )
    return registry


def merge_snapshots(
    snapshots: Iterable[Mapping[str, Mapping]],
) -> MetricsRegistry:
    """Restore and merge several snapshot dicts (offline fleet roll-up)."""
    return merge_registries(
        [registry_from_snapshot(snapshot) for snapshot in snapshots]
    )


def rollup_by_label(
    registry: MetricsRegistry, name: str, label: str
) -> Dict[str, float]:
    """Per-``label``-value totals of counter/gauge ``name``.

    Other labels are summed away — e.g. roll
    ``sacha_swarm_member_verdicts_total{device_id,verdict}`` up by
    ``verdict`` for a fleet-wide verdict distribution, or by
    ``device_id`` to rank members.
    """
    instrument = registry.get(name)
    if instrument is None:
        return {}
    if not isinstance(instrument, (Counter, Gauge)):
        raise ObservabilityError(
            f"rollup_by_label expects a counter or gauge, "
            f"{name} is a {instrument.kind}"
        )
    if label not in instrument.label_names:
        raise ObservabilityError(
            f"metric {name} has labels {instrument.label_names}, "
            f"not {label!r}"
        )
    totals: Dict[str, float] = {}
    for labels, value in instrument.samples():
        key = labels[label]
        totals[key] = totals.get(key, 0.0) + value
    return dict(sorted(totals.items()))


def rollup_snapshot_by_label(
    snapshot: Mapping[str, Mapping], name: str, label: str
) -> Dict[str, float]:
    """Per-``label``-value totals of family ``name`` in a plain snapshot.

    The offline twin of :func:`rollup_by_label`: it works directly on
    the dict form (``registry_snapshot`` output, or a sweep snapshot the
    fleet store persisted) without rebuilding a live registry, so ops
    surfaces like ``repro fleet status`` can summarize stored telemetry
    cheaply.  Histogram families total observation counts.  An absent
    family rolls up to ``{}``; a family without ``label`` raises.
    """
    family = snapshot.get(name)
    if family is None:
        return {}
    label_names = tuple(family.get("label_names", ()))
    if label not in label_names:
        raise ObservabilityError(
            f"snapshot family {name} has labels {label_names}, not {label!r}"
        )
    totals: Dict[str, float] = {}
    for sample in family.get("samples", ()):
        key = str(sample.get("labels", {}).get(label))
        if "value" in sample:
            value = float(sample["value"])
        else:  # histogram family: total the observation counts
            value = float(sample.get("count", 0))
        totals[key] = totals.get(key, 0.0) + value
    return dict(sorted(totals.items()))


def span_roots(spans: Sequence[object]) -> List[str]:
    """Names of parentless spans in record order (shape assertions)."""
    return [record.name for record in spans if record.parent_id is None]
