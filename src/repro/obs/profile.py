"""Span profiling: critical paths, self-time breakdowns, flamegraphs.

Everything here is a pure function over :class:`SpanRecord` sequences,
so it works identically on a live registry's spans and on merged
multi-party dumps (see :mod:`repro.obs.trace`).  All orderings are
deterministic — ties break on ``(start_ns, span_id)`` — so reports and
flamegraph exports are byte-stable for a given span set.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.spans import SpanRecord, span_tree


def phase_breakdown(spans: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Per-span-name totals: count, total time, self time, child time.

    *Self time* is a span's duration minus the time covered by its
    direct children (clamped at zero — children recorded by another
    party may overhang their stitched parent).  Rows are sorted by
    descending self time, then name, so the hottest phase leads.
    """
    children_ns: Dict[int, float] = {}
    for record in spans:
        if record.parent_id is not None:
            children_ns[record.parent_id] = (
                children_ns.get(record.parent_id, 0.0) + record.duration_ns
            )
    rows: Dict[str, Dict[str, object]] = {}
    for record in spans:
        row = rows.setdefault(
            record.name,
            {"name": record.name, "count": 0, "total_ns": 0.0, "self_ns": 0.0},
        )
        row["count"] += 1
        row["total_ns"] += record.duration_ns
        row["self_ns"] += max(
            0.0, record.duration_ns - children_ns.get(record.span_id, 0.0)
        )
    for row in rows.values():
        row["child_ns"] = row["total_ns"] - row["self_ns"]
    return sorted(
        rows.values(), key=lambda row: (-row["self_ns"], row["name"])
    )


def critical_path(spans: Sequence[SpanRecord]) -> List[SpanRecord]:
    """The chain of spans that bounds the trace's wall time.

    From the longest root downwards, repeatedly descend into the
    longest child (ties broken by ``(start_ns, span_id)``).  This is the
    sequence an optimisation pass must shorten to shorten the run.
    """

    def longest(nodes: List[Dict[str, object]]) -> Optional[Dict[str, object]]:
        best = None
        for node in nodes:
            record: SpanRecord = node["span"]
            rank = (-record.duration_ns, record.start_ns, record.span_id)
            if best is None or rank < best[0]:
                best = (rank, node)
        return best[1] if best else None

    path: List[SpanRecord] = []
    node = longest(span_tree(list(spans)))
    while node is not None:
        path.append(node["span"])
        node = longest(node["children"])
    return path


def to_collapsed_stacks(spans: Sequence[SpanRecord]) -> str:
    """Collapsed-stack flamegraph lines: ``root;child;leaf <self_ns>``.

    The format consumed by ``flamegraph.pl`` and importable by
    speedscope.  One line per distinct stack, weighted by integer self
    time in nanoseconds; zero-weight stacks are dropped.  Lines are
    sorted, so the export is byte-stable.
    """
    weights: Dict[str, int] = {}

    def walk(node: Dict[str, object], prefix: str) -> None:
        record: SpanRecord = node["span"]
        stack = f"{prefix};{record.name}" if prefix else record.name
        child_ns = 0.0
        for child in sorted(
            node["children"],
            key=lambda item: (item["span"].start_ns, item["span"].span_id),
        ):
            child_ns += child["span"].duration_ns
            walk(child, stack)
        self_ns = int(max(0.0, record.duration_ns - child_ns))
        if self_ns > 0:
            weights[stack] = weights.get(stack, 0) + self_ns

    for root in span_tree(list(spans)):
        walk(root, "")
    return "".join(
        f"{stack} {weight}\n" for stack, weight in sorted(weights.items())
    )


def arq_timeline(spans: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Every ARQ span event, flattened and time-ordered.

    The ARQ layer attaches ``arq.send`` / ``arq.ack`` /
    ``arq.retransmit`` / ``arq.give_up`` events — plus the AIMD window
    moves ``arq.cwnd_halve`` / ``arq.cwnd_grow`` — to the enclosing
    span (see ``repro.net.arq``); this collects them across a whole
    trace with the owning span named, so a faulty exchange can be
    replayed exchange by exchange.
    """
    timeline: List[Dict[str, object]] = []
    for record in sorted(spans, key=lambda item: (item.start_ns, item.span_id)):
        for event in record.events:
            if not str(event.get("name", "")).startswith("arq."):
                continue
            entry = dict(event)
            entry["span"] = record.name
            entry["session"] = record.session
            timeline.append(entry)
    timeline.sort(key=lambda entry: (float(entry.get("t_ns", 0.0))))
    return timeline


def _format_ns(value: float) -> str:
    return f"{value:,.0f} ns"


def render_report(spans: Sequence[SpanRecord]) -> str:
    """A human-readable profile: tree, breakdown, critical path, ARQ."""
    from repro.obs.spans import render_span_tree
    from repro.obs.trace import trace_ids

    spans = sorted(spans, key=lambda record: (record.start_ns, record.span_id))
    sections: List[str] = []
    ids = trace_ids(spans)
    if ids:
        sections.append("Traces: " + ", ".join(ids))
    sections.append("Span tree:\n" + render_span_tree(spans))

    rows = phase_breakdown(spans)
    if rows:
        lines = [
            f"{'phase':<24} {'count':>5} {'total':>16} "
            f"{'self':>16} {'child':>16}"
        ]
        for row in rows:
            lines.append(
                f"{row['name']:<24} {row['count']:>5} "
                f"{_format_ns(row['total_ns']):>16} "
                f"{_format_ns(row['self_ns']):>16} "
                f"{_format_ns(row['child_ns']):>16}"
            )
        sections.append("Phase breakdown (by self time):\n" + "\n".join(lines))

    path = critical_path(spans)
    if path:
        sections.append(
            "Critical path: "
            + " -> ".join(
                f"{record.name} ({_format_ns(record.duration_ns)})"
                for record in path
            )
        )

    events = arq_timeline(spans)
    if events:
        lines = []
        for event in events:
            extras = " ".join(
                f"{key}={value}"
                for key, value in sorted(event.items())
                if key not in {"name", "t_ns", "span", "session"}
            )
            origin = (
                f"{event['session']}/{event['span']}"
                if event.get("session")
                else str(event["span"])
            )
            lines.append(
                f"{float(event['t_ns']):>14,.0f}  {event['name']:<16} "
                f"{origin}" + (f"  {extras}" if extras else "")
            )
        sections.append(f"ARQ timeline ({len(events)} events):\n" + "\n".join(lines))

    return "\n\n".join(sections) + "\n"


def speedscope_stacks(spans: Sequence[SpanRecord]) -> List[Tuple[str, int]]:
    """Parsed ``(stack, weight_ns)`` pairs of the collapsed export."""
    pairs: List[Tuple[str, int]] = []
    for line in to_collapsed_stacks(spans).splitlines():
        stack, _, weight = line.rpartition(" ")
        pairs.append((stack, int(weight)))
    return pairs
