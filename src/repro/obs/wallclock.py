"""The one sanctioned wall-clock accessor (SACHA001's only exemption).

Everything that participates in an attestation run — span timing,
protocol state, RNG seeding, exporter *content* — takes time from the
simulation clock so transcripts stay bit-for-bit reproducible.  The
single legitimate use of real time is side-channel-free *metadata* an
operator may want on an exported artifact (e.g. "when was this report
generated"), which by definition is not part of the reproducible
payload.

Such callers import :func:`wall_clock_ns` from here and nowhere else;
``repro lint`` (rule SACHA001) flags any other wall-clock read in the
tree.  Keeping the accessor in one module makes every nondeterministic
timestamp greppable and keeps the exemption list in
:data:`repro.lint.config.DETERMINISM_EXEMPT` one line long.
"""

from __future__ import annotations

import time


def wall_clock_ns() -> int:
    """Nanoseconds since the Unix epoch, from the real clock.

    Never mix this into span timing, protocol traces, or anything else
    covered by the reproducibility guarantee.
    """
    return time.time_ns()


def perf_counter_s() -> float:
    """Monotonic seconds, for measuring *this machine's* speed.

    The benchmark gate's calibration yardstick: it times real CPU work,
    which is inherently machine-dependent and never part of a
    reproducible transcript.  Same exemption, same single-module rule
    as :func:`wall_clock_ns`.
    """
    return time.perf_counter()
