"""Declarative SLO rules evaluated over registry snapshots.

The wave-rollout orchestrator (ROADMAP) needs a machine-readable answer
to "is this fleet healthy enough to widen the campaign?".  This module
gives it one: a list of declarative rules — ratio thresholds over
counters, quantile thresholds over histograms — evaluated against a
plain snapshot dict (``repro.obs.exporters.registry_snapshot``) into a
:class:`HealthReport` whose overall status is the worst rule status.

Rules consume snapshots rather than live registries so they work on
serialized telemetry from remote sessions, merged fleet roll-ups
(:func:`repro.obs.aggregate.merge_snapshots`), and historical dumps
alike.  A rule whose denominator has no samples is ``SKIPPED`` — no
traffic is not an outage.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError


class HealthStatus(enum.Enum):
    """Rule and report statuses, ordered by severity."""

    OK = "ok"
    SKIPPED = "skipped"
    WARN = "warn"
    CRIT = "crit"

    @property
    def severity(self) -> int:
        return _SEVERITY[self]


_SEVERITY = {
    HealthStatus.OK: 0,
    HealthStatus.SKIPPED: 0,
    HealthStatus.WARN: 1,
    HealthStatus.CRIT: 2,
}


@dataclasses.dataclass(frozen=True)
class MetricSelector:
    """Sum of a snapshot family's sample values matching a label filter.

    ``labels`` is a subset match: ``{"result": "reject"}`` selects every
    sample whose ``result`` label equals ``reject``, whatever its other
    labels; ``{}`` selects all samples.
    """

    metric: str
    labels: Mapping[str, str] = dataclasses.field(default_factory=dict)

    def matches(self, sample_labels: Mapping[str, str]) -> bool:
        return all(
            str(sample_labels.get(name)) == str(value)
            for name, value in self.labels.items()
        )

    def total(self, snapshot: Mapping[str, Mapping]) -> Optional[float]:
        """Summed value, or None when the family is absent."""
        family = snapshot.get(self.metric)
        if family is None:
            return None
        total = 0.0
        for sample in family.get("samples", ()):
            if not self.matches(sample.get("labels", {})):
                continue
            if "value" in sample:
                total += float(sample["value"])
            else:  # histogram family: selector totals observations
                total += float(sample.get("count", 0))
        return total

    def describe(self) -> str:
        if not self.labels:
            return self.metric
        body = ",".join(
            f"{name}={value}" for name, value in sorted(self.labels.items())
        )
        return f"{self.metric}{{{body}}}"


@dataclasses.dataclass(frozen=True)
class RatioRule:
    """WARN/CRIT when ``numerator / denominator`` exceeds a threshold."""

    name: str
    numerator: MetricSelector
    denominator: MetricSelector
    warn: float
    crit: float
    description: str = ""

    def evaluate(self, snapshot: Mapping[str, Mapping]) -> "RuleResult":
        denominator = self.denominator.total(snapshot)
        if denominator is None or denominator == 0.0:
            return RuleResult(
                rule=self.name,
                status=HealthStatus.SKIPPED,
                value=None,
                warn=self.warn,
                crit=self.crit,
                reason=(
                    f"no samples for {self.denominator.describe()}; "
                    "rule not evaluated"
                ),
            )
        numerator = self.numerator.total(snapshot) or 0.0
        ratio = numerator / denominator
        status = _grade(ratio, self.warn, self.crit)
        return RuleResult(
            rule=self.name,
            status=status,
            value=ratio,
            warn=self.warn,
            crit=self.crit,
            reason=(
                f"{self.numerator.describe()} / "
                f"{self.denominator.describe()} = "
                f"{numerator:g}/{denominator:g} = {ratio:.4f} "
                f"(warn>{self.warn:g}, crit>{self.crit:g})"
            ),
        )


@dataclasses.dataclass(frozen=True)
class QuantileRule:
    """WARN/CRIT when a histogram quantile exceeds a threshold.

    The quantile is estimated from the snapshot's cumulative buckets by
    linear interpolation within the target bucket; observations landing
    in the implicit ``+Inf`` bucket report the last finite bound (a
    lower bound on the true quantile — still enough to trip the rule).
    """

    name: str
    selector: MetricSelector
    quantile: float
    warn: float
    crit: float
    description: str = ""

    def evaluate(self, snapshot: Mapping[str, Mapping]) -> "RuleResult":
        family = snapshot.get(self.selector.metric)
        skipped = RuleResult(
            rule=self.name,
            status=HealthStatus.SKIPPED,
            value=None,
            warn=self.warn,
            crit=self.crit,
            reason=(
                f"no samples for {self.selector.describe()}; "
                "rule not evaluated"
            ),
        )
        if family is None or family.get("kind") != "histogram":
            return skipped
        bounds = [float(bound) for bound in family.get("buckets", ())]
        if not bounds:
            return skipped
        merged = [0] * len(bounds)
        total = 0
        for sample in family.get("samples", ()):
            if not self.selector.matches(sample.get("labels", {})):
                continue
            counts = sample.get("bucket_counts")
            if counts is None:
                raise ObservabilityError(
                    f"snapshot of {self.selector.metric} has no "
                    "bucket_counts; re-export with a current "
                    "registry_snapshot"
                )
            for index, count in enumerate(counts):
                merged[index] += int(count)
            total += int(sample.get("count", 0))
        if total == 0:
            return skipped
        estimate = _quantile_from_buckets(bounds, merged, total, self.quantile)
        status = _grade(estimate, self.warn, self.crit)
        return RuleResult(
            rule=self.name,
            status=status,
            value=estimate,
            warn=self.warn,
            crit=self.crit,
            reason=(
                f"p{self.quantile * 100:g}({self.selector.describe()}) "
                f"~= {estimate:.6g}s over {total} observations "
                f"(warn>{self.warn:g}, crit>{self.crit:g})"
            ),
        )


def _grade(value: float, warn: float, crit: float) -> HealthStatus:
    if value > crit:
        return HealthStatus.CRIT
    if value > warn:
        return HealthStatus.WARN
    return HealthStatus.OK


def _quantile_from_buckets(
    bounds: Sequence[float],
    counts: Sequence[int],
    total: int,
    quantile: float,
) -> float:
    """Linear-interpolation quantile over non-cumulative bucket counts."""
    target = quantile * total
    cumulative = 0
    previous_bound = 0.0
    for bound, count in zip(bounds, counts):
        next_cumulative = cumulative + count
        if next_cumulative >= target and count > 0:
            fraction = (target - cumulative) / count
            return previous_bound + fraction * (bound - previous_bound)
        cumulative = next_cumulative
        previous_bound = bound
    # Target sits in the implicit +Inf bucket: report the last finite
    # bound as a lower-bound estimate.
    return float(bounds[-1])


@dataclasses.dataclass(frozen=True)
class RuleResult:
    """One rule's verdict with a human-readable reason."""

    rule: str
    status: HealthStatus
    value: Optional[float]
    warn: float
    crit: float
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "status": self.status.value,
            "value": self.value,
            "warn": self.warn,
            "crit": self.crit,
            "reason": self.reason,
        }


@dataclasses.dataclass(frozen=True)
class HealthReport:
    """Worst-of rule statuses plus every individual result."""

    status: HealthStatus
    results: Tuple[RuleResult, ...]

    @property
    def ok(self) -> bool:
        return self.status in (HealthStatus.OK, HealthStatus.SKIPPED)

    def explain(self) -> str:
        lines = [f"health: {self.status.value.upper()}"]
        for result in self.results:
            lines.append(
                f"  [{result.status.value.upper():<7}] "
                f"{result.rule}: {result.reason}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "status": self.status.value,
            "results": [result.to_dict() for result in self.results],
        }


#: Default SLO thresholds (documented in docs/OBSERVABILITY.md).  Ratios
#: are fractions of runs; durations are simulated seconds.
DEFAULT_RULES: Tuple[object, ...] = (
    RatioRule(
        name="reject_rate",
        numerator=MetricSelector(
            "sacha_attestations_total", {"result": "reject"}
        ),
        denominator=MetricSelector("sacha_attestations_total"),
        warn=0.05,
        crit=0.20,
        description="Fraction of attestation runs ending in REJECT",
    ),
    RatioRule(
        name="swarm_inconclusive_rate",
        numerator=MetricSelector(
            "sacha_swarm_members_total", {"verdict": "inconclusive"}
        ),
        denominator=MetricSelector("sacha_swarm_members_total"),
        warn=0.05,
        crit=0.20,
        description="Fraction of sweep members with no usable verdict",
    ),
    RatioRule(
        name="session_inconclusive_rate",
        numerator=MetricSelector(
            "sacha_session_outcomes_total", {"verdict": "inconclusive"}
        ),
        denominator=MetricSelector("sacha_session_outcomes_total"),
        warn=0.05,
        crit=0.25,
        description="Fraction of networked sessions exhausting retries",
    ),
    RatioRule(
        name="arq_retransmission_ratio",
        numerator=MetricSelector("sacha_arq_retransmissions_total"),
        denominator=MetricSelector("sacha_arq_payloads_total"),
        warn=0.05,
        crit=0.25,
        description="ARQ retransmissions per payload sent",
    ),
    RatioRule(
        name="arq_cwnd_collapse",
        numerator=MetricSelector("sacha_arq_cwnd_halvings_total"),
        denominator=MetricSelector("sacha_arq_payloads_total"),
        warn=0.02,
        crit=0.10,
        description="AIMD window halvings per payload sent",
    ),
    RatioRule(
        name="fleet_reject_rate",
        numerator=MetricSelector(
            "sacha_fleet_attestations_total", {"verdict": "reject"}
        ),
        denominator=MetricSelector("sacha_fleet_attestations_total"),
        warn=0.05,
        crit=0.20,
        description="Fraction of fleet sweep attestations ending in REJECT",
    ),
    RatioRule(
        name="fleet_inconclusive_rate",
        numerator=MetricSelector(
            "sacha_fleet_attestations_total", {"verdict": "inconclusive"}
        ),
        denominator=MetricSelector("sacha_fleet_attestations_total"),
        warn=0.05,
        crit=0.25,
        description="Fraction of fleet sweep attestations with no verdict",
    ),
    QuantileRule(
        name="readback_p99",
        selector=MetricSelector(
            "sacha_phase_duration_seconds", {"phase": "readback"}
        ),
        quantile=0.99,
        warn=5.0,
        crit=30.0,
        description="99th-percentile simulated readback phase duration",
    ),
)


def evaluate_health(
    snapshot: Mapping[str, Mapping],
    rules: Sequence[object] = DEFAULT_RULES,
) -> HealthReport:
    """Evaluate ``rules`` over a snapshot; overall status is the worst."""
    results = tuple(rule.evaluate(snapshot) for rule in rules)
    worst = HealthStatus.OK
    for result in results:
        if result.status.severity > worst.severity:
            worst = result.status
    if worst is HealthStatus.OK and all(
        result.status is HealthStatus.SKIPPED for result in results
    ) and results:
        worst = HealthStatus.SKIPPED
    return HealthReport(status=worst, results=results)


def health_exit_code(report: HealthReport) -> int:
    """CLI exit code: 0 OK/SKIPPED, 1 WARN, 2 CRIT."""
    if report.status is HealthStatus.CRIT:
        return 2
    if report.status is HealthStatus.WARN:
        return 1
    return 0
