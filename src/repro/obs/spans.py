"""Structured spans over the simulation clock.

A span brackets one phase of work — ``span("readback", frame=idx)`` —
and nests through ``contextvars``: spans opened inside an open span
become its children, so one attestation run yields a
``attestation → config / readback / checksum`` tree without any caller
threading parent handles around.

Timestamps come from whatever clock the caller supplies (the protocol
passes its simulation-time accumulator); there is deliberately no
``time.time()`` fallback, so span logs are bit-for-bit reproducible.

Completed spans land in the active :class:`~repro.obs.metrics.MetricsRegistry`
as frozen :class:`SpanRecord` objects.  When the registry is disabled,
``span(...)`` is a no-op context manager.
"""

from __future__ import annotations

import contextlib
import contextvars
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.trace import current_trace

Clock = Callable[[], float]


@dataclass(frozen=True)
class SpanRecord:
    """One finished span."""

    span_id: int
    parent_id: Optional[int]
    name: str
    start_ns: float
    end_ns: float
    attributes: Dict[str, object] = field(default_factory=dict)
    status: str = "ok"  # "ok" | "error"
    error: str = ""
    trace_id: str = ""
    session: str = ""
    events: Tuple[Dict[str, object], ...] = ()

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "record": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "status": self.status,
        }
        if self.error:
            record["error"] = self.error
        if self.attributes:
            record["attributes"] = dict(self.attributes)
        if self.trace_id:
            record["trace_id"] = self.trace_id
        if self.session:
            record["session"] = self.session
        if self.events:
            record["events"] = [dict(event) for event in self.events]
        return record


class _ActiveSpan:
    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "start_ns",
        "attributes",
        "trace_id",
        "session",
        "events",
        "clock",
    )

    def __init__(
        self,
        span_id,
        parent_id,
        name,
        start_ns,
        attributes,
        trace_id="",
        session="",
        clock=None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_ns = start_ns
        self.attributes = attributes
        self.trace_id = trace_id
        self.session = session
        self.events: List[Dict[str, object]] = []
        self.clock = clock

    def set_attribute(self, key: str, value: object) -> None:
        self.attributes[key] = value

    def add_event(self, name: str, **attributes: object) -> None:
        """Append a timestamped point event (ARQ send/ack/retransmit)."""
        event: Dict[str, object] = {"name": name, "t_ns": self.clock()}
        event.update(attributes)
        self.events.append(event)


_CURRENT: contextvars.ContextVar[Optional[_ActiveSpan]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)


def current_span() -> Optional[_ActiveSpan]:
    """The innermost open span of this context, if any."""
    return _CURRENT.get()


@contextlib.contextmanager
def span(
    name: str,
    clock: Optional[Clock] = None,
    registry: Optional[MetricsRegistry] = None,
    root: bool = False,
    **attributes: object,
) -> Iterator[Optional[_ActiveSpan]]:
    """Open a span named ``name`` until the ``with`` block exits.

    ``clock`` is a zero-argument callable returning the current
    simulation time in nanoseconds; without one the span records 0.0
    (pure-structure tracing).  An exception inside the block marks the
    span ``status="error"`` (with the exception repr) and re-raises.
    ``root=True`` detaches the span from any open parent — used when one
    process records on behalf of another party (the in-process prover
    inside a networked session).

    If a :func:`~repro.obs.trace.trace_context` is active, the finished
    record carries its ``trace_id``/``session``.
    """
    registry = registry or get_registry()
    if not registry.enabled:
        yield None
        return
    now: Clock = clock or (lambda: 0.0)
    parent = None if root else _CURRENT.get()
    trace = current_trace()
    active = _ActiveSpan(
        span_id=registry.next_span_id(),
        parent_id=parent.span_id if parent else None,
        name=name,
        start_ns=now(),
        attributes=dict(attributes),
        trace_id=trace.trace_id if trace else "",
        session=trace.session if trace else "",
        clock=now,
    )
    token = _CURRENT.set(active)
    status, error = "ok", ""
    try:
        yield active
    except BaseException as exc:
        status, error = "error", repr(exc)
        raise
    finally:
        _CURRENT.reset(token)
        registry.record_span(
            SpanRecord(
                span_id=active.span_id,
                parent_id=active.parent_id,
                name=active.name,
                start_ns=active.start_ns,
                end_ns=now(),
                attributes=active.attributes,
                status=status,
                error=error,
                trace_id=active.trace_id,
                session=active.session,
                events=tuple(active.events),
            )
        )


def span_tree(spans: Sequence[SpanRecord]) -> List[Dict[str, object]]:
    """Nest flat records into a forest of ``{record, children}`` dicts."""
    nodes: Dict[int, Dict[str, object]] = {
        record.span_id: {"span": record, "children": []} for record in spans
    }
    roots: List[Dict[str, object]] = []
    for record in spans:
        node = nodes[record.span_id]
        parent = nodes.get(record.parent_id) if record.parent_id else None
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    return roots


def render_span_tree(spans: Sequence[SpanRecord]) -> str:
    """Indented one-line-per-span rendering of the forest."""
    lines: List[str] = []

    def walk(node: Dict[str, object], depth: int) -> None:
        record: SpanRecord = node["span"]
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(record.attributes.items())
        )
        flag = "" if record.status == "ok" else f" [{record.status}]"
        lines.append(
            f"{'  ' * depth}{record.name}"
            f" ({record.duration_ns:,.0f} ns){flag}"
            + (f" {attrs}" if attrs else "")
        )
        for child in node["children"]:
            walk(child, depth + 1)

    for root in span_tree(spans):
        walk(root, 0)
    return "\n".join(lines)


def spans_to_trace(spans: Sequence[SpanRecord]):
    """Bridge spans into a :class:`~repro.sim.tracing.TraceRecorder`.

    Each span becomes one ``span:<name>`` trace event at its start time,
    so the shape-query helpers (``counts_by_kind``, ``kinds_in_order``,
    ``between``) work identically on span logs and protocol traces.
    """
    from repro.sim.tracing import TraceRecorder

    trace = TraceRecorder(enabled=True)
    for record in sorted(spans, key=lambda item: (item.start_ns, item.span_id)):
        detail = " ".join(
            f"{key}={value}" for key, value in sorted(record.attributes.items())
        )
        trace.record(record.start_ns, f"span:{record.name}", "span", detail)
    return trace
