"""Pre-deployment provisioning.

Everything that happens *before* the prover board is placed in the field
(Sections 3 and 5.2.1): program the BootMem with the static bitstream,
enroll the PUF (or install a key register), hand the key and the golden
design to the verifier, deploy.  After ``deploy`` the BootMem is
read-only and the only remote interface is the SACHa protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.cache import get_artifact_cache
from repro.design.sacha_design import SachaSystemDesign
from repro.errors import ProvisioningError
from repro.fpga.board import Board, Fpga
from repro.fpga.flash import BootMem
from repro.fpga.puf import PufKeySlot, SramPuf, enroll_device
from repro.core.prover import KeyProvider, PufDerivedKey, RegisterKey, SachaProver
from repro.obs import log as obs_log
from repro.utils.rng import DeterministicRng
from repro.utils.secret import SecretBytes

_log = obs_log.get_logger(__name__)

KEY_MODE_PUF = "puf"
KEY_MODE_REGISTER = "register"


@dataclass
class ProvisionedDevice:
    """A deployed prover board plus its provisioning artifacts."""

    device_id: str
    board: Board
    prover: SachaProver
    system: SachaSystemDesign
    key_provider: KeyProvider
    puf: Optional[SramPuf] = None
    key_slot: Optional[PufKeySlot] = None


@dataclass
class VerifierRecord:
    """What the verifier's database stores per enrolled device.

    ``mac_key`` is wrapped: the record reprs as ``<secret[16]>``, and
    consumers that need raw bytes say so via ``mac_key.reveal()`` (the
    verifier unwraps internally).
    """

    device_id: str
    mac_key: SecretBytes
    system: SachaSystemDesign


class VerifierDatabase:
    """The verifier-side (device → key, golden design) database."""

    def __init__(self) -> None:
        self._records: Dict[str, VerifierRecord] = {}

    def register(self, record: VerifierRecord) -> None:
        if record.device_id in self._records:
            raise ProvisioningError(
                f"device {record.device_id!r} is already enrolled"
            )
        self._records[record.device_id] = record

    def lookup(self, device_id: str) -> VerifierRecord:
        try:
            return self._records[device_id]
        except KeyError:
            raise ProvisioningError(
                f"device {device_id!r} is not enrolled"
            ) from None

    def __len__(self) -> int:
        return len(self._records)


def provision_device(
    system: SachaSystemDesign,
    device_id: str,
    seed: int,
    key_mode: str = KEY_MODE_PUF,
    puf_noise_rate: float = 0.05,
) -> tuple:
    """Provision one board and produce its verifier record.

    Returns ``(ProvisionedDevice, VerifierRecord)``.  The flow:

    1. build the static bitstream and program it into a BootMem sized per
       the bounded-memory rule (fits the static image, not the DynPart
       payload);
    2. enroll the PUF (``key_mode='puf'``) or draw a register key
       (``key_mode='register'``) — either way the verifier learns the key
       in this step and never over the network;
    3. deploy (flash becomes read-only), power on, declare the static
       design's storage elements.
    """
    rng = DeterministicRng(seed)
    boot_image = system.boot_image()
    flash = BootMem(system.recommended_bootmem_bytes())
    flash.program(boot_image)
    flash.deploy()

    puf: Optional[SramPuf] = None
    key_slot: Optional[PufKeySlot] = None
    if key_mode == KEY_MODE_PUF:
        puf = SramPuf(identity_seed=seed, noise_rate=puf_noise_rate)
        key, key_slot = enroll_device(puf, rng.fork("enrollment"))
        fpga = Fpga(system.device, puf=puf)
        key_provider: KeyProvider = PufDerivedKey(
            puf, key_slot, rng.fork("key-derivation")
        )
    elif key_mode == KEY_MODE_REGISTER:
        key = rng.fork("register-key").randbytes(16)
        fpga = Fpga(system.device)
        key_provider = RegisterKey(key)
    else:
        raise ProvisioningError(
            f"unknown key mode {key_mode!r}; use "
            f"{KEY_MODE_PUF!r} or {KEY_MODE_REGISTER!r}"
        )

    board = Board(fpga, flash)
    board.power_on()
    system.static_impl.declare_registers(fpga.registers)

    prover = SachaProver(board, key_provider, device_id=device_id)
    provisioned = ProvisionedDevice(
        device_id=device_id,
        board=board,
        prover=prover,
        system=system,
        key_provider=key_provider,
        puf=puf,
        key_slot=key_slot,
    )
    record = VerifierRecord(
        device_id=device_id, mac_key=SecretBytes(key), system=system
    )
    _log.info(
        "device_provisioned",
        device_id=device_id,
        device=system.device.name,
        key_mode=key_mode,
    )
    return provisioned, record


def materialize_device(
    part: str,
    device_id: str,
    seed: int,
    key_mode: str = KEY_MODE_PUF,
    puf_noise_rate: float = 0.05,
) -> tuple:
    """Rebuild a provisioned board from its registry facts.

    The simulated board is a pure function of ``(part, seed, key_mode)``,
    so a persistent device registry (``repro.fleet``) stores only those
    facts and re-materializes the device for every sweep instead of
    keeping boards alive between attestations — the key the rebuilt
    record derives is byte-identical to the one enrolled.  Returns
    ``(ProvisionedDevice, VerifierRecord)`` like :func:`provision_device`.

    The system build routes through the artifact cache: every device of
    the same part shares one frozen golden template / mask / boot image
    bundle (and, with a cache dir configured, warm-starts from disk),
    while the board, PUF, registers and keys built here stay strictly
    per-device.
    """
    system = get_artifact_cache().get_system(part)
    return provision_device(
        system,
        device_id,
        seed=seed,
        key_mode=key_mode,
        puf_noise_rate=puf_noise_rate,
    )
