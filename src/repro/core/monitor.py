"""Continuous attestation: periodic runs on the simulation clock.

A deployed verifier does not attest once — it sweeps the device on a
period.  The monitor schedules attestation runs on the discrete-event
clock, charges each run its full protocol duration (a run occupies the
device: the DynPart is being reconfigured), records the history, and
reports *detection latency*: the time between a tamper landing in the
configuration memory and the first rejecting run.

The paper's numbers put a floor under the period: one run takes 28.5 s
on the lab network, so sub-minute monitoring of an XC6VLX240T keeps the
link saturated — the trade-off experiment E17 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import ProtocolError, ReproError
from repro.core.protocol import SessionOptions, run_attestation
from repro.core.prover import SachaProver
from repro.core.report import AttestationReport
from repro.core.verifier import SachaVerifier
from repro.obs import log as obs_log
from repro.obs.metrics import get_registry
from repro.sim.events import Simulator
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)


@dataclass(frozen=True)
class MonitorSample:
    """One periodic attestation run."""

    started_ns: float
    finished_ns: float
    accepted: bool
    mismatched_frames: tuple
    #: "accept" | "reject" | "inconclusive" — an inconclusive run (the
    #: attestation machinery itself failed) is not a detection.
    verdict: str = ""
    failure_detail: str = ""

    def __post_init__(self) -> None:
        if not self.verdict:
            object.__setattr__(
                self, "verdict", "accept" if self.accepted else "reject"
            )

    @property
    def duration_ns(self) -> float:
        return self.finished_ns - self.started_ns


@dataclass
class MonitorHistory:
    """The monitor's run log plus detection bookkeeping."""

    samples: List[MonitorSample] = field(default_factory=list)
    tamper_time_ns: Optional[float] = None
    detection_time_ns: Optional[float] = None

    @property
    def runs(self) -> int:
        return len(self.samples)

    @property
    def rejections(self) -> int:
        return sum(1 for sample in self.samples if sample.verdict == "reject")

    @property
    def inconclusive_runs(self) -> int:
        return sum(
            1 for sample in self.samples if sample.verdict == "inconclusive"
        )

    @property
    def detection_latency_ns(self) -> Optional[float]:
        """Tamper-to-rejection latency, if both happened."""
        if self.tamper_time_ns is None or self.detection_time_ns is None:
            return None
        return self.detection_time_ns - self.tamper_time_ns


class AttestationMonitor:
    """Periodic attestation of one prover on a simulator clock.

    ``period_ns`` is start-to-start; a period shorter than the protocol
    duration is rejected (the link cannot run two attestations of one
    device concurrently — the DynPart is being rewritten).
    """

    def __init__(
        self,
        simulator: Simulator,
        prover: SachaProver,
        verifier: SachaVerifier,
        period_ns: float,
        rng: DeterministicRng,
        options: Optional[SessionOptions] = None,
        stop_on_detection: bool = True,
        on_rejection: Optional[Callable[[MonitorSample], None]] = None,
    ) -> None:
        if period_ns <= 0:
            raise ProtocolError(f"monitor period must be positive, got {period_ns}")
        self._simulator = simulator
        self._prover = prover
        self._verifier = verifier
        self._period_ns = period_ns
        self._rng = rng
        self._options = options if options is not None else SessionOptions()
        self._stop_on_detection = stop_on_detection
        self._on_rejection = on_rejection
        self.history = MonitorHistory()
        self._remaining_runs = 0
        self._run_counter = 0

    def record_tamper(self) -> None:
        """Note the time of an (externally mounted) tamper for latency
        accounting."""
        self.history.tamper_time_ns = self._simulator.now_ns
        _log.info("tamper_recorded", time_ns=self.history.tamper_time_ns)

    def start(self, runs: int) -> None:
        """Schedule ``runs`` periodic attestations from now."""
        if runs <= 0:
            raise ProtocolError(f"monitor needs at least one run, got {runs}")
        self._remaining_runs = runs
        self._simulator.schedule(0.0, self._run_once, label="monitor-run")

    def _run_once(self) -> None:
        if self._remaining_runs <= 0:
            return
        self._remaining_runs -= 1
        self._run_counter += 1
        started = self._simulator.now_ns
        report: Optional[AttestationReport] = None
        failure_detail = ""
        try:
            result = run_attestation(
                self._prover,
                self._verifier,
                self._rng.fork(f"run-{self._run_counter}"),
                self._options,
            )
            report = result.report
        except ReproError as exc:
            # One failing run must not kill the monitor: record an
            # inconclusive sample and keep the periodic schedule alive.
            # Reset the prover's incremental MAC so the aborted run
            # cannot corrupt the next period's checksum.
            self._prover.abort_run()
            failure_detail = f"{type(exc).__name__}: {exc}"
            _log.warning(
                "monitor_run_failed", run=self._run_counter, error=str(exc)
            )
        registry = get_registry()
        if report is None:
            sample = MonitorSample(
                started_ns=started,
                finished_ns=started,
                accepted=False,
                mismatched_frames=(),
                verdict="inconclusive",
                failure_detail=failure_detail,
            )
            self.history.samples.append(sample)
            if registry.enabled:
                registry.counter(
                    "sacha_monitor_runs_total",
                    "Periodic attestation runs executed",
                ).inc()
                registry.counter(
                    "sacha_monitor_inconclusive_total",
                    "Periodic attestation runs that failed to reach a verdict",
                ).inc()
            if self._remaining_runs > 0:
                self._simulator.schedule_at(
                    started + self._period_ns, self._run_once, label="monitor-run"
                )
            return
        duration = report.timing.total_ns if report.timing else 0.0
        if duration >= self._period_ns:
            raise ProtocolError(
                f"monitor period {self._period_ns:.0f} ns is shorter than "
                f"one attestation ({duration:.0f} ns); the device cannot "
                "be attested back to back"
            )
        finished = started + duration
        sample = MonitorSample(
            started_ns=started,
            finished_ns=finished,
            accepted=report.accepted,
            mismatched_frames=tuple(report.mismatched_frames),
            verdict=report.verdict.value,
        )
        self.history.samples.append(sample)
        if registry.enabled:
            registry.counter(
                "sacha_monitor_runs_total", "Periodic attestation runs executed"
            ).inc()
            if sample.verdict == "reject":
                registry.counter(
                    "sacha_monitor_rejections_total",
                    "Periodic attestation runs that rejected the prover",
                ).inc()
        if sample.verdict == "reject":
            if self.history.detection_time_ns is None:
                self.history.detection_time_ns = finished
                latency = self.history.detection_latency_ns
                _log.warning(
                    "monitor_detection",
                    run=self._run_counter,
                    time_ns=finished,
                    detection_latency_ns=latency,
                )
                if registry.enabled and latency is not None:
                    registry.gauge(
                        "sacha_monitor_detection_latency_seconds",
                        "Tamper-to-first-rejection latency of the last detection",
                    ).set(latency / 1e9)
            if self._on_rejection is not None:
                self._on_rejection(sample)
            if self._stop_on_detection:
                self._remaining_runs = 0
                return
        if self._remaining_runs > 0:
            next_start = started + self._period_ns
            self._simulator.schedule_at(
                next_start, self._run_once, label="monitor-run"
            )
