"""The SACHa prover: the protocol engine of the static partition.

This is the software model of what the StatPart hardware does (Figure
10): receive commands from the ETH core, drive the ICAP, stream readback
frames through the AES-CMAC core, and send responses.  It holds *no*
protocol intelligence beyond that — all sequencing decisions belong to
the verifier, exactly as in the paper.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.crypto.cmac import AesCmac
from repro.errors import ProtocolError
from repro.fpga.board import Board
from repro.fpga.puf import PufKeySlot, SramPuf
from repro.net.batch import contiguous_runs, fragment_readback_data
from repro.net.ethernet import MAX_PAYLOAD
from repro.net.messages import (
    Command,
    IcapConfigBatchCommand,
    IcapConfigCommand,
    IcapReadbackBatchCommand,
    IcapReadbackCommand,
    IcapReadbackMaskedCommand,
    IcapReadbackRangeCommand,
    MacChecksumCommand,
    MacChecksumResponse,
    MaskedReadbackAck,
    ReadbackRangeResponse,
    ReadbackResponse,
    Response,
    TraceHelloCommand,
)
from repro.obs.metrics import get_registry
from repro.utils.rng import DeterministicRng


class KeyProvider(abc.ABC):
    """Where the prover's MAC key comes from (Section 5.2.1)."""

    @abc.abstractmethod
    def mac_key(self) -> bytes:
        """The 128-bit AES-CMAC key."""


class RegisterKey(KeyProvider):
    """Proof-of-concept option: a key register in the StatPart."""

    def __init__(self, key: bytes) -> None:
        if len(key) != 16:
            raise ProtocolError(f"MAC key must be 16 bytes, got {len(key)}")
        self._key = bytes(key)

    def mac_key(self) -> bytes:
        return self._key


class PufDerivedKey(KeyProvider):
    """Foolproof option: re-derive the key from the on-chip PUF.

    The key never exists outside the device; each derivation re-runs the
    fuzzy extractor on a fresh noisy PUF read.
    """

    def __init__(self, puf: SramPuf, slot: PufKeySlot, rng: DeterministicRng) -> None:
        self._puf = puf
        self._slot = slot
        self._rng = rng

    def mac_key(self) -> bytes:
        return self._slot.derive_key(self._puf, self._rng)


class ChecksumEngine(abc.ABC):
    """One attestation run's incremental checksum (MAC or signature)."""

    @abc.abstractmethod
    def update(self, data: bytes) -> None:
        """Fold one readback frame into the checksum (action A6)."""

    @abc.abstractmethod
    def finalize(self) -> bytes:
        """Produce the transcript authenticator (action A7/A10)."""


class CmacEngine(ChecksumEngine):
    """The paper's checksum: AES-CMAC under the shared key."""

    def __init__(self, key: bytes) -> None:
        self._mac = AesCmac(key)

    def update(self, data: bytes) -> None:
        self._mac.update(data)

    def finalize(self) -> bytes:
        return self._mac.finalize()


class SachaProver:
    """Command handler bound to one board.

    The prover is *stateless between commands* except for the incremental
    MAC: ``ICAP_readback`` lazily initializes it (Init MAC_K, action A5)
    and ``MAC_checksum`` finalizes and clears it, so each attestation run
    starts fresh.
    """

    def __init__(
        self,
        board: Board,
        key_provider: KeyProvider,
        device_id: str = "prv-0",
    ) -> None:
        self.board = board
        self.device_id = device_id
        self._key_provider = key_provider
        self._mac: Optional[ChecksumEngine] = None
        self.configs_handled = 0
        self.readbacks_handled = 0
        self.checksums_handled = 0
        # Trace id announced by the verifier's TraceHello (hex), if any.
        self.last_trace_id = ""
        # Per-kind command counts since the last flush.  Accumulated as
        # plain ints on the per-command hot path and folded into the
        # active registry at run boundaries (checksum / abort) — one
        # metric update per run instead of one per command.
        self._pending_commands: dict = {}

    def _new_checksum(self) -> ChecksumEngine:
        """Init MAC_K (A5).  Subclasses may substitute another engine
        (e.g. the Section-8 signature extension)."""
        return CmacEngine(self._key_provider.mac_key())

    @property
    def mac_in_progress(self) -> bool:
        return self._mac is not None

    def handle_command(
        self, command: Command
    ) -> Union[Response, List[Response], None]:
        """Dispatch one verifier command.

        Returns the response, a list of responses (batched readback
        answers fragment to the MTU), or ``None`` for fire-and-forget
        commands.
        """
        if not self.board.powered_on:
            raise ProtocolError("prover board is not powered on")
        counts = self._pending_commands
        kind = type(command).__name__
        counts[kind] = counts.get(kind, 0) + 1
        if isinstance(command, IcapConfigCommand):
            self.handle_config(command.frame_index, command.data)
            return None
        if isinstance(command, IcapConfigBatchCommand):
            self.handle_config_batch(command.frame_indices, command.data)
            return None
        if isinstance(command, IcapReadbackCommand):
            data = self.handle_readback(command.frame_index)
            return ReadbackResponse(frame_index=command.frame_index, data=data)
        if isinstance(command, IcapReadbackBatchCommand):
            return self.handle_readback_batch(
                command.base_slot, command.frame_indices
            )
        if isinstance(command, IcapReadbackMaskedCommand):
            self.handle_readback_masked(command.frame_index, command.mask)
            return MaskedReadbackAck(frame_index=command.frame_index)
        if isinstance(command, IcapReadbackRangeCommand):
            data = self.handle_readback_range(command.start_index, command.count)
            return ReadbackRangeResponse(start_index=command.start_index, data=data)
        if isinstance(command, MacChecksumCommand):
            return MacChecksumResponse(tag=self.handle_checksum())
        if isinstance(command, TraceHelloCommand):
            self.last_trace_id = command.trace_id.hex()
            return None
        raise ProtocolError(f"prover cannot handle {type(command).__name__}")

    def handle_config(self, frame_index: int, data: bytes) -> None:
        """ICAP_config: write one frame into the configuration memory."""
        self.board.fpga.icap.write_frame(frame_index, data)
        self.configs_handled += 1

    def handle_readback(self, frame_index: int) -> bytes:
        """ICAP_readback: read one frame, fold it into the MAC, return it.

        The first readback of a run initializes the MAC (A5); every
        readback performs one MAC update step (A6) and sends the frame
        content back (A8) so the verifier can apply the Msk.
        """
        if self._mac is None:
            self._mac = self._new_checksum()
        data = self.board.fpga.icap.readback_frame(frame_index)
        self._mac.update(data)
        self.readbacks_handled += 1
        return data

    def handle_readback_range(self, start_index: int, count: int) -> bytes:
        """Batched readback: ``count`` consecutive frames, one response.

        The ICAP performs one bulk sweep over the range and the MAC folds
        the whole buffer in one update — byte-identical to ``count``
        per-frame readback/update steps, without materializing ``count``
        separate frame copies.
        """
        if count < 1:
            raise ProtocolError(f"batch count must be positive, got {count}")
        if self._mac is None:
            self._mac = self._new_checksum()
        data = self.board.fpga.icap.readback_range(start_index, count)
        self._mac.update(data)
        self.readbacks_handled += count
        return data

    def handle_config_batch(
        self, frame_indices: Sequence[int], data: bytes
    ) -> None:
        """Batched ICAP_config: several frames in one vectorized write."""
        if not frame_indices or len(data) % len(frame_indices):
            raise ProtocolError(
                f"config batch of {len(data)} bytes does not split over "
                f"{len(frame_indices)} frames"
            )
        self.board.fpga.icap.write_frames(frame_indices, data)
        self.configs_handled += len(frame_indices)

    def handle_readback_batch(
        self,
        base_slot: int,
        frame_indices: Sequence[int],
        max_payload: int = MAX_PAYLOAD,
    ) -> List[Response]:
        """Batched readback: bulk ICAP sweeps, one MAC fold, MTU fragments.

        The index vector is split into maximal contiguous runs, each
        served by one bulk :meth:`~repro.fpga.icap.Icap.readback_range`;
        the concatenated buffer folds into the MAC in a single update —
        byte-identical to per-frame readback/update steps because CMAC is
        invariant to chunk boundaries — and is sliced into MTU-sized
        :class:`ReadbackBatchResponse` fragments.
        """
        if not frame_indices:
            raise ProtocolError("readback batch must name at least one frame")
        if self._mac is None:
            self._mac = self._new_checksum()
        icap = self.board.fpga.icap
        buffers = [
            icap.readback_range(run.start, len(run))
            for run in contiguous_runs(frame_indices)
        ]
        data = buffers[0] if len(buffers) == 1 else b"".join(buffers)
        self._mac.update(data)
        self.readbacks_handled += len(frame_indices)
        frame_bytes = self.board.fpga.device.frame_bytes
        return list(
            fragment_readback_data(base_slot, data, frame_bytes, max_payload)
        )

    def handle_readback_masked(self, frame_index: int, mask: bytes) -> None:
        """The Section-6.1 alternative: mask before the MAC step.

        The verifier supplies the ``Msk`` for the frame; the prover
        clears the masked (register) bits and folds the *masked* frame
        into the MAC.  No frame content is sent back.
        """
        if self._mac is None:
            self._mac = self._new_checksum()
        data = self.board.fpga.icap.readback_frame(frame_index)
        if len(mask) != len(data):
            raise ProtocolError(
                f"mask of {len(mask)} bytes does not match the "
                f"{len(data)}-byte frame"
            )
        words = np.frombuffer(data, dtype=">u4")
        keep = np.bitwise_not(np.frombuffer(mask, dtype=">u4"))
        self._mac.update((words & keep).astype(">u4").tobytes())
        self.readbacks_handled += 1

    def handle_checksum(self) -> bytes:
        """MAC_checksum: finalize (A7) and return the tag (A10)."""
        if self._mac is None:
            raise ProtocolError(
                "MAC_checksum before any ICAP_readback: nothing to finalize"
            )
        tag = self._mac.finalize()
        self._mac = None
        self.checksums_handled += 1
        self._flush_command_counts()
        return tag

    def _flush_command_counts(self) -> None:
        """Fold the run's per-kind command counts into the registry.

        When the active registry is disabled the counts are discarded,
        so a later enabled run never inherits stale totals.
        """
        counts = self._pending_commands
        if not counts:
            return
        self._pending_commands = {}
        registry = get_registry()
        if not registry.enabled:
            return
        counter = registry.counter(
            "sacha_prover_commands_total",
            "Commands handled by provers, by command kind",
            labels=("kind",),
        )
        for kind in sorted(counts):
            counter.inc(counts[kind], kind=kind)

    def abort_run(self) -> None:
        """Drop any in-progress MAC (e.g. the verifier timed out)."""
        self._mac = None
        self._flush_command_counts()


ProverLike = Union[SachaProver]
