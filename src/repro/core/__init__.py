"""SACHa core: prover, verifier, protocol, provisioning, readback orders.

The paper's primary contribution — everything below it
(``repro.fpga``, ``repro.design``, ``repro.net``, ``repro.timing``) is
substrate.
"""

from repro.core.monitor import (
    AttestationMonitor,
    MonitorHistory,
    MonitorSample,
)
from repro.core.net_session import (
    NetworkAttestationSession,
    NetworkRunResult,
    PROVER_MAC,
    VERIFIER_MAC,
)
from repro.core.orders import (
    ExplicitOrder,
    OffsetOrder,
    PermutationOrder,
    RandomOffsetOrder,
    ReadbackOrder,
    RepeatedFramesOrder,
    SequentialOrder,
    check_coverage,
    default_order,
)
from repro.core.protocol import (
    SessionOptions,
    SessionResult,
    attest,
    run_attestation,
)
from repro.core.prover import (
    KeyProvider,
    PufDerivedKey,
    RegisterKey,
    SachaProver,
)
from repro.core.provisioning import (
    KEY_MODE_PUF,
    KEY_MODE_REGISTER,
    ProvisionedDevice,
    VerifierDatabase,
    VerifierRecord,
    provision_device,
)
from repro.core.report import AttestationReport, TimingBreakdown
from repro.core.signature_ext import (
    SignatureVerifier,
    SigningProver,
    upgrade_to_signatures,
)
from repro.core.swarm import (
    SwarmAttestation,
    SwarmMember,
    SwarmReport,
    build_swarm,
)
from repro.core.verifier import SachaVerifier, VerifierPolicy

__all__ = [
    "AttestationMonitor",
    "MonitorHistory",
    "MonitorSample",
    "NetworkAttestationSession",
    "NetworkRunResult",
    "PROVER_MAC",
    "VERIFIER_MAC",
    "ExplicitOrder",
    "OffsetOrder",
    "PermutationOrder",
    "RandomOffsetOrder",
    "ReadbackOrder",
    "RepeatedFramesOrder",
    "SequentialOrder",
    "check_coverage",
    "default_order",
    "SessionOptions",
    "SessionResult",
    "attest",
    "run_attestation",
    "KeyProvider",
    "PufDerivedKey",
    "RegisterKey",
    "SachaProver",
    "KEY_MODE_PUF",
    "KEY_MODE_REGISTER",
    "ProvisionedDevice",
    "VerifierDatabase",
    "VerifierRecord",
    "provision_device",
    "AttestationReport",
    "TimingBreakdown",
    "SignatureVerifier",
    "SigningProver",
    "upgrade_to_signatures",
    "SwarmAttestation",
    "SwarmMember",
    "SwarmReport",
    "build_swarm",
    "SachaVerifier",
    "VerifierPolicy",
]
