"""Event-driven attestation over the simulated Ethernet channel.

:func:`run_attestation` in ``repro.core.protocol`` accounts time with the
calibrated Table-3 action model.  :class:`NetworkAttestationSession`
instead runs the protocol *through the network substrate*: every command
and response is a real Ethernet frame crossing a :class:`Channel` with
serialization and latency, the prover is an endpoint handler, and the
verifier is a state machine driven by deliveries.  Adversary taps on the
channel see (and may rewrite) every frame — this is the path the
man-in-the-middle attacks use.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProtocolError
from repro.core.prover import SachaProver
from repro.core.report import AttestationReport
from repro.core.verifier import SachaVerifier
from repro.net.channel import Channel, Endpoint
from repro.net.ethernet import ETHERTYPE_SACHA, EthernetFrame, MacAddress
from repro.net.messages import (
    IcapConfigCommand,
    IcapReadbackCommand,
    MacChecksumCommand,
    MacChecksumResponse,
    ReadbackResponse,
    decode_command,
    decode_response,
)
from repro.sim.events import Simulator
from repro.utils.rng import DeterministicRng

VERIFIER_MAC = MacAddress.from_string("02:00:00:00:00:01")
PROVER_MAC = MacAddress.from_string("02:00:00:00:00:02")


class _Phase(enum.Enum):
    IDLE = "idle"
    CONFIG = "config"
    READBACK = "readback"
    CHECKSUM = "checksum"
    DONE = "done"


@dataclass
class NetworkRunResult:
    report: AttestationReport
    duration_ns: float
    frames_sent_by_verifier: int
    frames_sent_by_prover: int


class NetworkAttestationSession:
    """One attestation run as network traffic on a channel."""

    def __init__(
        self,
        simulator: Simulator,
        channel: Channel,
        prover: SachaProver,
        verifier: SachaVerifier,
        rng: Optional[DeterministicRng] = None,
        reliable: bool = False,
        arq_timeout_ns: float = 2_000_000.0,
    ) -> None:
        self._simulator = simulator
        self._channel = channel
        self._prover = prover
        self._verifier = verifier
        self._rng = rng or DeterministicRng(0)

        self.verifier_endpoint = Endpoint("vrf", VERIFIER_MAC)
        self.prover_endpoint = Endpoint("prv", PROVER_MAC)
        channel.connect(self.verifier_endpoint, self.prover_endpoint)
        if reliable:
            # Slot a stop-and-wait ARQ under the session so the strict
            # command/response sequence survives frame loss.
            from repro.net.arq import ArqLink

            self._verifier_port = ArqLink(
                simulator, self.verifier_endpoint, PROVER_MAC, arq_timeout_ns
            )
            self._prover_port = ArqLink(
                simulator, self.prover_endpoint, VERIFIER_MAC, arq_timeout_ns
            )
        else:
            self._verifier_port = self.verifier_endpoint
            self._prover_port = self.prover_endpoint
        self._verifier_port.handler = self._on_verifier_delivery
        self._prover_port.handler = self._on_prover_delivery

        self._phase = _Phase.IDLE
        self._nonce = b""
        self._plan: List[int] = []
        self._plan_cursor = 0
        self._responses: List[ReadbackResponse] = []
        self._tag: Optional[bytes] = None
        self._start_ns = 0.0
        self._end_ns = 0.0

    # -- verifier side -----------------------------------------------------------

    def run(self) -> NetworkRunResult:
        """Drive a full attestation and return the verdict."""
        if self._phase is not _Phase.IDLE:
            raise ProtocolError("session already ran")
        self._start_ns = self._simulator.now_ns
        self._phase = _Phase.CONFIG

        # Fire-and-forget configuration commands; in-order delivery on the
        # point-to-point channel guarantees they are applied before the
        # readbacks that follow.
        self._nonce = self._verifier.new_nonce()
        for command in self._verifier.config_commands(self._nonce):
            self._send_to_prover(command.encode())

        self._plan = self._verifier.readback_plan()
        self._phase = _Phase.READBACK
        self._send_next_readback()

        self._simulator.run()
        if self._phase is not _Phase.DONE:
            raise ProtocolError(
                f"simulation drained in phase {self._phase.value}; "
                "a message was lost"
            )

        report = self._verifier.evaluate(
            self._nonce, self._plan, self._responses, self._tag or b""
        )
        report.config_steps = len(self._verifier.config_commands(self._nonce))
        report.nonce = self._nonce
        return NetworkRunResult(
            report=report,
            duration_ns=self._end_ns - self._start_ns,
            frames_sent_by_verifier=self.verifier_endpoint.frames_sent,
            frames_sent_by_prover=self.prover_endpoint.frames_sent,
        )

    def _send_next_readback(self) -> None:
        if self._plan_cursor < len(self._plan):
            frame_index = self._plan[self._plan_cursor]
            self._send_to_prover(IcapReadbackCommand(frame_index).encode())
        else:
            self._phase = _Phase.CHECKSUM
            self._send_to_prover(MacChecksumCommand().encode())

    def _on_verifier_delivery(self, frame: EthernetFrame) -> None:
        response = decode_response(frame.payload)
        if isinstance(response, ReadbackResponse):
            if self._phase is not _Phase.READBACK:
                raise ProtocolError("readback response outside readback phase")
            self._responses.append(response)
            self._plan_cursor += 1
            self._send_next_readback()
            return
        if isinstance(response, MacChecksumResponse):
            if self._phase is not _Phase.CHECKSUM:
                raise ProtocolError("checksum response outside checksum phase")
            self._tag = response.tag
            self._phase = _Phase.DONE
            self._end_ns = self._simulator.now_ns
            return
        raise ProtocolError(f"unexpected response {type(response).__name__}")

    def _send_to_prover(self, payload: bytes) -> None:
        self._verifier_port.send(
            EthernetFrame(
                destination=PROVER_MAC,
                source=VERIFIER_MAC,
                ethertype=ETHERTYPE_SACHA,
                payload=payload,
            )
        )

    # -- prover side ---------------------------------------------------------------

    def _on_prover_delivery(self, frame: EthernetFrame) -> None:
        command = decode_command(frame.payload)
        if isinstance(command, IcapConfigCommand):
            self._prover.handle_command(command)
            # A configured application starts running: declare/refresh its
            # storage elements once the last application frame arrives.
            app_frames = self._verifier.system.app_impl.region_frames
            if command.frame_index == app_frames[-1]:
                self._verifier.system.app_impl.declare_registers(
                    self._prover.board.fpga.registers
                )
                self._prover.board.fpga.registers.scramble(
                    self._rng.fork("net-app-activity")
                )
            return
        response = self._prover.handle_command(command)
        if response is None:
            return
        self._prover_port.send(
            EthernetFrame(
                destination=VERIFIER_MAC,
                source=PROVER_MAC,
                ethertype=ETHERTYPE_SACHA,
                payload=response.encode(),
            )
        )
