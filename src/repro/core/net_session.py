"""Event-driven attestation over the simulated Ethernet channel.

:func:`run_attestation` in ``repro.core.protocol`` accounts time with the
calibrated Table-3 action model.  :class:`NetworkAttestationSession`
instead runs the protocol *through the network substrate*: every command
and response is a real Ethernet frame crossing a :class:`Channel` with
serialization and latency, the prover is an endpoint handler, and the
verifier is a state machine driven by deliveries.  Adversary taps on the
channel see (and may rewrite) every frame — this is the path the
man-in-the-middle attacks use.

Two transport shapes exist:

* the **legacy lockstep** loop (``readback_batch_frames <= 1``): one
  readback command per response round trip, preserved byte-identically
  so seeded determinism tests pin it;
* the **pipelined** path (the default): configuration and readback
  commands are batched to the MTU (``repro.net.batch``) and all streamed
  ahead of the responses, the sliding-window ARQ keeps several payloads
  in flight, each config batch is confirmed by one cumulative
  :class:`~repro.net.messages.ConfigAck`, and the verifier folds the
  expected MAC incrementally as response fragments arrive.  The readback
  sweep is order-insensitive on the verifier side (Section 6.1), which
  is what makes pipelining safe: the plan-ordered fragment cursor keeps
  the MAC stream aligned.

Pipelining needs in-order delivery, not reliability: the raw channel
delivers each frame after its own serialization delay, so a burst of
mixed-size frames arrives out of order (a small checksum command
overtakes a large readback batch).  Over ARQ (``reliable=True``) the
sliding window restores order; on a raw channel the session interposes
a :class:`~repro.net.resequencer.ResequencerLink` — a bounded
reorder/dedup buffer with no retransmission — so ``reliable=False``
runs pipeline too, and duplication/reordering fault profiles are safe
on raw channels (a lost frame leaves a permanent gap that drains the
simulation and fails the attempt toward ``inconclusive``).  A raw
lockstep session on a dup/reorder-free channel keeps the original
headerless wire format byte-identically.

The session degrades gracefully instead of raising out of the event
loop.  Undecodable frames (bit corruption or truncation from the fault
model) are dropped and counted; duplicated or late responses are
ignored; a drained simulation or an ARQ link giving up fails *the
attempt*, and the session retries the whole protocol — fresh nonce,
full reconfiguration, new ARQ state — up to ``max_attempts`` times
before returning an :class:`~repro.core.report.AttestationReport` whose
verdict is ``inconclusive`` with a structured
:class:`~repro.core.report.FailureReason`.  A caller therefore always
gets a verdict: ``accept``, ``reject``, or ``inconclusive``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.errors import NetworkError, ProtocolError
from repro.core.prover import SachaProver
from repro.core.report import AttestationReport, FailureReason
from repro.core.verifier import SachaVerifier
from repro.net.arq import ArqTuning
from repro.net.batch import pack_config_commands, pack_readback_plan
from repro.net.channel import Channel, Endpoint
from repro.net.ethernet import ETHERTYPE_SACHA, EthernetFrame, MacAddress
from repro.net.messages import (
    Command,
    ConfigAck,
    IcapConfigBatchCommand,
    IcapConfigCommand,
    IcapReadbackBatchCommand,
    IcapReadbackCommand,
    IcapReadbackMaskedCommand,
    IcapReadbackRangeCommand,
    MacChecksumCommand,
    MacChecksumResponse,
    ReadbackBatchResponse,
    ReadbackResponse,
    Response,
    TraceHelloCommand,
    decode_command,
    decode_response,
)
from repro.obs import log as obs_log
from repro.obs.metrics import MetricsRegistry, get_registry, use_context_registry
from repro.obs.spans import span
from repro.obs.trace import trace_context, trace_id_from_nonce
from repro.perf import get_config
from repro.sim.events import Simulator
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)

VERIFIER_MAC = MacAddress.from_string("02:00:00:00:00:01")
PROVER_MAC = MacAddress.from_string("02:00:00:00:00:02")


#: Span names for prover-side command handling, by command kind.  Kinds
#: that implement the same protocol phase share a name so phase
#: breakdowns aggregate naturally.
_PROVER_SPAN_NAMES = {
    IcapConfigCommand: "prover_config",
    IcapConfigBatchCommand: "prover_config",
    IcapReadbackCommand: "prover_readback",
    IcapReadbackBatchCommand: "prover_readback",
    IcapReadbackMaskedCommand: "prover_readback",
    IcapReadbackRangeCommand: "prover_readback",
    MacChecksumCommand: "prover_checksum",
}


class _Phase(enum.Enum):
    IDLE = "idle"
    CONFIG = "config"
    READBACK = "readback"
    CHECKSUM = "checksum"
    DONE = "done"
    FAILED = "failed"


@dataclass
class NetworkRunResult:
    report: AttestationReport
    duration_ns: float
    frames_sent_by_verifier: int
    frames_sent_by_prover: int
    attempts: int = 1


class NetworkAttestationSession:
    """One attestation run as network traffic on a channel."""

    # Expected-MAC folds are batched to this many buffered response bytes
    # (CMAC chunking-invariance makes the tag independent of the split).
    _MAC_FOLD_CHUNK_BYTES = 1 << 20

    def __init__(
        self,
        simulator: Simulator,
        channel: Channel,
        prover: SachaProver,
        verifier: SachaVerifier,
        rng: Optional[DeterministicRng] = None,
        reliable: bool = False,
        arq_timeout_ns: float = 2_000_000.0,
        arq_tuning: Optional[ArqTuning] = None,
        arq_max_retries: int = 25,
        max_attempts: int = 1,
        arq_window: Optional[int] = None,
        readback_batch_frames: Optional[int] = None,
        prover_registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_attempts < 1:
            raise ProtocolError(
                f"session needs at least one attempt, got {max_attempts}"
            )
        self._simulator = simulator
        self._channel = channel
        self._prover = prover
        self._verifier = verifier
        self._rng = rng or DeterministicRng(0)
        self._reliable = reliable
        self._arq_timeout_ns = arq_timeout_ns
        self._arq_tuning = arq_tuning
        self._arq_max_retries = arq_max_retries
        self._max_attempts = max_attempts
        # Optional separate registry for prover-side telemetry.  With the
        # in-process prover both parties would otherwise share one span
        # store; a dedicated registry yields the genuinely multi-party
        # dumps the trace stitcher is built for.  None -> the active one.
        self._prover_registry = prover_registry
        config = get_config()
        # Explicit, validated window precedence: ``arq_tuning`` is the
        # single source of truth when given; a redundant ``arq_window``
        # must agree with it (no silent override), and with no tuning the
        # explicit window falls back to the perf config.
        if arq_window is not None:
            if arq_window < 1:
                raise ProtocolError(f"ARQ window must be >= 1, got {arq_window}")
            if arq_tuning is not None and arq_tuning.window != arq_window:
                raise ProtocolError(
                    f"conflicting ARQ windows: arq_tuning.window="
                    f"{arq_tuning.window} but arq_window={arq_window}; "
                    "set the window on the tuning (or pass only one)"
                )
            self._arq_window = arq_window
        elif arq_tuning is not None:
            self._arq_window = arq_tuning.window
        else:
            self._arq_window = config.arq_window
        # AIMD adaptation follows the tuning when one is given, the perf
        # config otherwise (REPRO_ARQ_ADAPTIVE / --arq-adaptive).
        self._arq_adaptive = (
            arq_tuning.adaptive if arq_tuning is not None else config.arq_adaptive
        )
        if readback_batch_frames is not None:
            if readback_batch_frames < 1:
                raise ProtocolError(
                    f"readback batch must be >= 1, got {readback_batch_frames}"
                )
            self._batch_frames = readback_batch_frames
        else:
            self._batch_frames = config.readback_batch_frames

        self.verifier_endpoint = Endpoint("vrf", VERIFIER_MAC)
        self.prover_endpoint = Endpoint("prv", PROVER_MAC)
        channel.connect(self.verifier_endpoint, self.prover_endpoint)
        self._verifier_port = self.verifier_endpoint
        self._prover_port = self.prover_endpoint
        self._install_ports()

        self._phase = _Phase.IDLE
        self._nonce = b""
        self._plan: List[int] = []
        self._plan_cursor = 0
        self._config_steps = 0
        self._responses: List[ReadbackResponse] = []
        self._tag: Optional[bytes] = None
        self._expected_tag: Optional[bytes] = None
        self._rx_buffers: List[bytes] = []
        self._rx_slot = 0
        self._mac_stream = None
        self._mac_pending: List[bytes] = []
        self._mac_pending_bytes = 0
        self._start_ns = 0.0
        self._end_ns = 0.0
        self._trace_id = ""
        self._prover_trace_id: Optional[str] = None
        self._link_failure: Optional[NetworkError] = None
        self._config_acked = 0
        self._prover_configs_applied = 0
        self.undecodable_frames = 0
        self.unexpected_frames = 0
        self.total_retransmissions = 0

    @property
    def tag(self) -> Optional[bytes]:
        """The prover's MAC tag from the last run.

        ``None`` until a checksum response arrived — callers comparing
        transport shapes for byte-identity (benchmarks, the fleet
        controller's history rows) read it here instead of re-deriving
        it from the report.
        """
        return self._tag

    # -- transport plumbing --------------------------------------------------------

    @property
    def _resequenced(self) -> bool:
        """Whether raw channels get the reorder/dedup buffer.

        A raw pipelined burst needs in-order delivery, and a raw channel
        under duplication/reordering faults needs exactly-once delivery —
        both are the resequencer's job (a duplicated or reordered
        readback would otherwise desynchronize the incremental MAC into
        a false reject).  A raw *lockstep* session on a dup/reorder-free
        channel keeps the original headerless wire format, which the
        seeded determinism fingerprints pin.
        """
        if self._reliable:
            return False
        if self._batch_frames > 1:
            return True
        model = self._channel.fault_model
        if model is None:
            return False
        profile = model.profile
        return (
            profile.duplication_probability > 0
            or profile.reorder_probability > 0
        )

    @property
    def _pipelined(self) -> bool:
        """Batching streams safely over any in-order transport: the ARQ
        sliding window, or the resequencer above a raw channel."""
        return self._batch_frames > 1 and (self._reliable or self._resequenced)

    def _effective_tuning(self) -> ArqTuning:
        if self._arq_tuning is not None:
            return self._arq_tuning
        return ArqTuning(
            initial_timeout_ns=self._arq_timeout_ns,
            min_timeout_ns=min(self._arq_timeout_ns, ArqTuning.min_timeout_ns),
            window=self._arq_window,
            adaptive=self._arq_adaptive,
        )

    def _install_ports(self) -> None:
        """(Re)create the transport for one attempt.

        In reliable mode every attempt gets fresh ARQ links on both
        endpoints: sequence numbers and RTT estimators restart together,
        so a retry is indistinguishable from a brand-new session to the
        peer.  Resequenced raw mode likewise gets fresh
        :class:`ResequencerLink` pairs so sequence numbers restart.
        """
        if self._reliable:
            from repro.net.arq import ArqLink

            tuning = self._effective_tuning()
            self._verifier_port = ArqLink(
                self._simulator,
                self.verifier_endpoint,
                PROVER_MAC,
                self._arq_timeout_ns,
                self._arq_max_retries,
                tuning=tuning,
                rng=self._rng.fork("arq-vrf"),
                on_give_up=self._on_link_failure,
            )
            self._prover_port = ArqLink(
                self._simulator,
                self.prover_endpoint,
                VERIFIER_MAC,
                self._arq_timeout_ns,
                self._arq_max_retries,
                tuning=tuning,
                rng=self._rng.fork("arq-prv"),
                on_give_up=self._on_link_failure,
            )
        elif self._resequenced:
            from repro.net.resequencer import ResequencerLink

            self._verifier_port = ResequencerLink(
                self.verifier_endpoint, PROVER_MAC
            )
            self._prover_port = ResequencerLink(
                self.prover_endpoint, VERIFIER_MAC
            )
        else:
            self._verifier_port = self.verifier_endpoint
            self._prover_port = self.prover_endpoint
        if self._pipelined:
            self._verifier_port.handler = self._on_verifier_delivery_pipelined
        else:
            self._verifier_port.handler = self._on_verifier_delivery
        self._prover_port.handler = self._on_prover_delivery

    def _on_link_failure(self, error: NetworkError) -> None:
        """Terminal ARQ give-up: record it and let the simulation drain."""
        if self._link_failure is None:
            self._link_failure = error
        _log.warning(
            "session_link_failure", phase=self._phase.value, error=str(error)
        )

    def _count(self, name: str, help_text: str, **labels: str) -> None:
        registry = get_registry()
        if registry.enabled:
            label_names = tuple(sorted(labels))
            registry.counter(name, help_text, labels=label_names).inc(**labels)

    # -- verifier side -----------------------------------------------------------

    def run(self) -> NetworkRunResult:
        """Drive a full attestation and return the verdict.

        Never raises for link-level failures: after ``max_attempts``
        failed attempts the result carries an ``inconclusive`` report.
        """
        if self._phase is not _Phase.IDLE:
            raise ProtocolError("session already ran")
        self._start_ns = self._simulator.now_ns
        registry = get_registry()
        clock = lambda: self._simulator.now_ns  # noqa: E731

        attempts = 0
        failure: Optional[FailureReason] = None
        with span("net_session", clock=clock, reliable=self._reliable):
            while attempts < self._max_attempts:
                attempts += 1
                if attempts > 1:
                    self._count(
                        "sacha_session_retries_total",
                        "Session-level attestation re-runs after link failure",
                    )
                    _log.info(
                        "session_retry",
                        attempt=attempts,
                        max_attempts=self._max_attempts,
                    )
                # The nonce is drawn before the attempt span opens so the
                # span (and the prover's, via the TraceHello handshake)
                # can carry the nonce-derived trace id.
                self._nonce = self._verifier.new_nonce()
                self._trace_id = trace_id_from_nonce(self._nonce)
                with trace_context(self._trace_id, "verifier"):
                    with span("session_attempt", clock=clock, attempt=attempts):
                        failure = self._run_attempt()
                if failure is None:
                    break
        if registry.enabled:
            registry.counter(
                "sacha_session_attempts_total",
                "Protocol attempts started by networked sessions",
            ).inc(attempts)

        if failure is not None:
            self._phase = _Phase.FAILED
            self._end_ns = self._simulator.now_ns
            failure = FailureReason(
                stage=failure.stage,
                kind=failure.kind,
                detail=failure.detail,
                attempts=attempts,
            )
            report = AttestationReport.make_inconclusive(failure, self._nonce)
            report.config_steps = self._config_steps
        else:
            report = self._verifier.evaluate(
                self._nonce,
                self._plan,
                self._responses,
                self._tag or b"",
                expected_tag=self._expected_tag,
            )
            report.config_steps = self._config_steps
            report.nonce = self._nonce
        self._count(
            "sacha_session_outcomes_total",
            "Networked session results, by verdict",
            verdict=report.verdict.value,
        )
        return NetworkRunResult(
            report=report,
            duration_ns=self._end_ns - self._start_ns,
            frames_sent_by_verifier=self.verifier_endpoint.frames_sent,
            frames_sent_by_prover=self.prover_endpoint.frames_sent,
            attempts=attempts,
        )

    def _run_attempt(self) -> Optional[FailureReason]:
        """One full protocol pass; None on success, the failure otherwise."""
        # Fresh per-attempt state: nonce, plan, responses, MAC, transport.
        self._link_failure = None
        self._prover_trace_id = None
        self._responses = []
        self._plan_cursor = 0
        self._tag = None
        self._expected_tag = None
        self._rx_buffers = []
        self._rx_slot = 0
        self._mac_stream = None
        self._mac_pending = []
        self._mac_pending_bytes = 0
        self._config_acked = 0
        self._prover_configs_applied = 0
        # Abort under the prover's registry: the abandoned attempt's
        # pending command counts must land in the same shard that the
        # delivery path used, not the verifier's ambient registry.
        with use_context_registry(self._prover_registry or get_registry()):
            self._prover.abort_run()
        self._install_ports()
        self._phase = _Phase.CONFIG

        if self._pipelined:
            self._run_attempt_pipelined()
        else:
            self._run_attempt_lockstep()

        self._simulator.run()
        self._harvest_retransmissions()
        if self._link_failure is not None:
            return FailureReason(
                stage=self._phase.value,
                kind="link_down",
                detail=str(self._link_failure),
            )
        if self._phase is not _Phase.DONE:
            return FailureReason(
                stage=self._phase.value,
                kind="drained",
                detail="simulation drained before the checksum exchange; "
                "a message was lost",
            )
        if self._pipelined and self._config_acked < self._config_steps:
            # The tag arrived but the cumulative ConfigAcks do not cover
            # the configuration: on a transport without retransmission a
            # config frame may be gone, and a MAC over a misconfigured
            # device must fail toward inconclusive, not a false reject.
            return FailureReason(
                stage=_Phase.CONFIG.value,
                kind="config_unacked",
                detail=f"cumulative ConfigAcks cover {self._config_acked} of "
                f"{self._config_steps} configuration frames",
            )
        if self._pipelined:
            self._finish_pipelined()
        return None

    def _run_attempt_lockstep(self) -> None:
        """The legacy per-frame loop: one readback in flight at a time.

        Byte- and telemetry-identical to the original stop-and-wait
        session; seeded determinism fingerprints pin it.
        """
        self._send_trace_hello()
        # Fire-and-forget configuration commands; in-order delivery on the
        # point-to-point channel guarantees they are applied before the
        # readbacks that follow.
        commands = self._verifier.config_commands(self._nonce)
        self._config_steps = len(commands)
        for command in commands:
            self._send_to_prover(command.encode())

        self._plan = self._verifier.readback_plan()
        self._phase = _Phase.READBACK
        self._send_next_readback()

    def _run_attempt_pipelined(self) -> None:
        """Stream every command up front; responses fold as they arrive.

        In-order delivery (ARQ, or the lossless point-to-point channel)
        guarantees the prover sees config → readbacks → checksum in
        order, so the whole command schedule can be enqueued before the
        first response returns — the sliding window keeps the pipe full.
        """
        self._mac_stream = self._verifier.mac_stream()
        registry = get_registry()
        config_commands = self._verifier.config_commands(self._nonce)
        self._config_steps = len(config_commands)
        config_batches = pack_config_commands(config_commands)
        self._plan = self._verifier.readback_plan()
        self._phase = _Phase.READBACK
        readback_batches = pack_readback_plan(self._plan, self._batch_frames)
        # One burst carries the whole command schedule: (telemetry hello,)
        # config, readbacks, checksum.  The ARQ layer sees the burst's
        # tail, so a window's worth of commands costs one cumulative ACK.
        payloads = []
        if registry.enabled and self._trace_id:
            payloads.append(
                TraceHelloCommand(bytes.fromhex(self._trace_id)).encode()
            )
        payloads.extend(batch.encode() for batch in config_batches)
        payloads.extend(batch.encode() for batch in readback_batches)
        payloads.append(MacChecksumCommand().encode())
        self._send_burst_to_prover(payloads)
        if registry.enabled:
            counter = registry.counter(
                "sacha_net_batch_frames_total",
                "Frames moved through batched commands, by kind",
                labels=("kind",),
            )
            counter.inc(
                sum(len(b.frame_indices) for b in config_batches), kind="config"
            )
            counter.inc(len(self._plan), kind="readback")
            registry.histogram(
                "sacha_net_batch_size_frames",
                "Frames per batched readback command",
                buckets=(1, 4, 16, 64, 256, 1024, 4096),
            ).observe(
                float(max((len(b.frame_indices) for b in readback_batches), default=0))
            )

    def _finish_pipelined(self) -> None:
        """Materialize per-frame responses from the reassembled sweep.

        Each response's ``data`` is a zero-copy ``memoryview`` slice of
        the joined sweep buffer — the verifier only reads the bytes (and
        rejoins them for the vectorized comparison), so no per-frame copy
        is needed.
        """
        data = b"".join(self._rx_buffers)
        frame_bytes = self._verifier.system.device.frame_bytes
        view = memoryview(data)
        self._responses = [
            ReadbackResponse(
                frame_index=frame_index,
                data=view[slot * frame_bytes : (slot + 1) * frame_bytes],
            )
            for slot, frame_index in enumerate(self._plan)
        ]
        if self._mac_stream is not None:
            if self._mac_pending:
                self._mac_stream.update(b"".join(self._mac_pending))
                self._mac_pending = []
                self._mac_pending_bytes = 0
            self._expected_tag = self._mac_stream.finalize()

    def _harvest_retransmissions(self) -> None:
        for port in (self._verifier_port, self._prover_port):
            self.total_retransmissions += getattr(port, "retransmissions", 0)

    def _send_next_readback(self) -> None:
        if self._plan_cursor < len(self._plan):
            frame_index = self._plan[self._plan_cursor]
            self._send_to_prover(IcapReadbackCommand(frame_index).encode())
        else:
            self._phase = _Phase.CHECKSUM
            self._send_to_prover(MacChecksumCommand().encode())

    def _on_verifier_delivery(self, frame: EthernetFrame) -> None:
        try:
            response = decode_response(frame.payload)
        except NetworkError:
            # Corrupted in flight on a raw (non-ARQ) channel: drop it and
            # let the drained-simulation path fail the attempt.
            self.undecodable_frames += 1
            self._count(
                "sacha_session_undecodable_frames_total",
                "Frames the session dropped because they failed to decode",
                side="verifier",
            )
            return
        if isinstance(response, ReadbackResponse):
            if (
                self._phase is not _Phase.READBACK
                or self._plan_cursor >= len(self._plan)
                or response.frame_index != self._plan[self._plan_cursor]
            ):
                # A duplicate or reordered copy; the expected-index check
                # keeps the MAC stream aligned with the plan.
                self.unexpected_frames += 1
                self._count(
                    "sacha_session_unexpected_frames_total",
                    "Out-of-phase or duplicate responses the session ignored",
                    side="verifier",
                )
                return
            self._responses.append(response)
            self._plan_cursor += 1
            self._send_next_readback()
            return
        if isinstance(response, MacChecksumResponse):
            if self._phase is not _Phase.CHECKSUM:
                self.unexpected_frames += 1
                self._count(
                    "sacha_session_unexpected_frames_total",
                    "Out-of-phase or duplicate responses the session ignored",
                    side="verifier",
                )
                return
            self._tag = response.tag
            self._phase = _Phase.DONE
            self._end_ns = self._simulator.now_ns
            return
        self.unexpected_frames += 1

    def _on_verifier_delivery_pipelined(self, frame: EthernetFrame) -> None:
        try:
            response = decode_response(frame.payload)
        except NetworkError:
            self.undecodable_frames += 1
            self._count(
                "sacha_session_undecodable_frames_total",
                "Frames the session dropped because they failed to decode",
                side="verifier",
            )
            return
        if isinstance(response, ConfigAck):
            # Cumulative, like the ARQ's ACKs: the high-water mark is the
            # number of configuration frames the prover has applied.
            self._config_acked = max(self._config_acked, response.frames_applied)
            return
        if isinstance(response, ReadbackBatchResponse):
            if (
                self._phase is not _Phase.READBACK
                or response.base_slot != self._rx_slot
                or response.frame_count < 1
                or self._rx_slot + response.frame_count > len(self._plan)
            ):
                # The plan-position cursor rejects anything but the next
                # contiguous fragment, keeping the MAC stream aligned.
                self.unexpected_frames += 1
                self._count(
                    "sacha_session_unexpected_frames_total",
                    "Out-of-phase or duplicate responses the session ignored",
                    side="verifier",
                )
                return
            self._rx_buffers.append(response.data)
            self._rx_slot += response.frame_count
            if self._mac_stream is not None:
                # Fold in coarse chunks: CMAC is chunking-invariant, and
                # each backend fold call has fixed setup cost, so folding
                # per ~MiB instead of per fragment keeps the stream
                # incremental (bounded memory) at a fraction of the calls.
                self._mac_pending.append(response.data)
                self._mac_pending_bytes += len(response.data)
                if self._mac_pending_bytes >= self._MAC_FOLD_CHUNK_BYTES:
                    self._mac_stream.update(b"".join(self._mac_pending))
                    self._mac_pending = []
                    self._mac_pending_bytes = 0
            if self._rx_slot == len(self._plan):
                self._phase = _Phase.CHECKSUM
            return
        if isinstance(response, MacChecksumResponse):
            # The tag only counts once the sweep is complete: a tag over
            # missing data must fail towards inconclusive (drained), not
            # towards a false reject.
            if self._phase is not _Phase.CHECKSUM:
                self.unexpected_frames += 1
                self._count(
                    "sacha_session_unexpected_frames_total",
                    "Out-of-phase or duplicate responses the session ignored",
                    side="verifier",
                )
                return
            self._tag = response.tag
            self._phase = _Phase.DONE
            self._end_ns = self._simulator.now_ns
            return
        self.unexpected_frames += 1

    def _send_trace_hello(self) -> None:
        """Announce the attempt's trace id — only when telemetry is on.

        The disabled path sends nothing, keeping its wire sequence
        byte-identical to the pre-telemetry protocol.
        """
        if get_registry().enabled and self._trace_id:
            self._send_to_prover(
                TraceHelloCommand(bytes.fromhex(self._trace_id)).encode()
            )

    def _send_to_prover(self, payload: bytes) -> None:
        if self._link_failure is not None:
            return
        try:
            self._verifier_port.send(
                EthernetFrame(
                    destination=PROVER_MAC,
                    source=VERIFIER_MAC,
                    ethertype=ETHERTYPE_SACHA,
                    payload=payload,
                )
            )
        except NetworkError as error:
            self._on_link_failure(error)

    def _send_burst_to_prover(self, payloads: List[bytes]) -> None:
        if self._link_failure is not None:
            return
        try:
            self._verifier_port.send_many(
                EthernetFrame(
                    destination=PROVER_MAC,
                    source=VERIFIER_MAC,
                    ethertype=ETHERTYPE_SACHA,
                    payload=payload,
                )
                for payload in payloads
            )
        except NetworkError as error:
            self._on_link_failure(error)

    # -- prover side ---------------------------------------------------------------

    def _scramble_after_app_config(self) -> None:
        """A configured application starts running: declare/refresh its
        storage elements once the last application frame arrives."""
        self._verifier.system.app_impl.declare_registers(
            self._prover.board.fpga.registers
        )
        self._prover.board.fpga.registers.scramble(
            self._rng.fork("net-app-activity")
        )

    def _on_prover_delivery(self, frame: EthernetFrame) -> None:
        try:
            command = decode_command(frame.payload)
        except NetworkError:
            self.undecodable_frames += 1
            self._count(
                "sacha_session_undecodable_frames_total",
                "Frames the session dropped because they failed to decode",
                side="prover",
            )
            return
        target = self._prover_registry or get_registry()
        if isinstance(command, TraceHelloCommand):
            self._prover_trace_id = command.trace_id.hex()
            if target.enabled:
                with use_context_registry(target):
                    self._prover.handle_command(command)
            else:
                self._prover.handle_command(command)
            return
        if not target.enabled:
            self._handle_prover_command(command)
            return
        # Prover-side telemetry: commands handled under the prover's own
        # registry (which may be a separate shard), tagged with the trace
        # id announced by the hello and rooted per exchange — roots
        # because the verifier's spans live in another context/registry;
        # the offline stitcher re-parents them under the attempt span.
        name = _PROVER_SPAN_NAMES.get(type(command), "prover_command")
        with use_context_registry(target), trace_context(
            self._prover_trace_id or "", self._prover.device_id
        ):
            with span(
                name,
                clock=lambda: self._simulator.now_ns,
                registry=target,
                root=True,
                kind=type(command).__name__,
            ):
                self._handle_prover_command(command)

    def _handle_prover_command(self, command: Command) -> None:
        app_frames = self._verifier.system.app_impl.region_frames
        if isinstance(command, IcapConfigCommand):
            self._prover.handle_command(command)
            if command.frame_index == app_frames[-1]:
                self._scramble_after_app_config()
            return
        if isinstance(command, IcapConfigBatchCommand):
            self._prover.handle_command(command)
            if app_frames and app_frames[-1] in command.frame_indices:
                self._scramble_after_app_config()
            # One cumulative ack per batch: the return path costs one
            # frame per batch instead of one per configured frame.
            self._prover_configs_applied += len(command.frame_indices)
            self._send_config_ack()
            return
        result = self._prover.handle_command(command)
        if result is None:
            return
        self._send_prover_result(result)

    def _send_config_ack(self) -> None:
        """Send the cumulative configuration acknowledgement."""
        if self._link_failure is not None:
            return
        self._count(
            "sacha_config_acks_total",
            "Cumulative ConfigAcks sent by provers",
        )
        try:
            self._prover_port.send(
                EthernetFrame(
                    destination=VERIFIER_MAC,
                    source=PROVER_MAC,
                    ethertype=ETHERTYPE_SACHA,
                    payload=ConfigAck(self._prover_configs_applied).encode(),
                )
            )
        except NetworkError as error:
            self._on_link_failure(error)

    def _send_prover_result(self, result: "Union[Response, List[Response]]") -> None:
        if self._link_failure is not None:
            return
        try:
            if isinstance(result, list):
                self._prover_port.send_many(
                    EthernetFrame(
                        destination=VERIFIER_MAC,
                        source=PROVER_MAC,
                        ethertype=ETHERTYPE_SACHA,
                        payload=response.encode(),
                    )
                    for response in result
                )
            else:
                self._prover_port.send(
                    EthernetFrame(
                        destination=VERIFIER_MAC,
                        source=PROVER_MAC,
                        ethertype=ETHERTYPE_SACHA,
                        payload=result.encode(),
                    )
                )
        except NetworkError as error:
            self._on_link_failure(error)
