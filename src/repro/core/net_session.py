"""Event-driven attestation over the simulated Ethernet channel.

:func:`run_attestation` in ``repro.core.protocol`` accounts time with the
calibrated Table-3 action model.  :class:`NetworkAttestationSession`
instead runs the protocol *through the network substrate*: every command
and response is a real Ethernet frame crossing a :class:`Channel` with
serialization and latency, the prover is an endpoint handler, and the
verifier is a state machine driven by deliveries.  Adversary taps on the
channel see (and may rewrite) every frame — this is the path the
man-in-the-middle attacks use.

The session degrades gracefully instead of raising out of the event
loop.  Undecodable frames (bit corruption or truncation from the fault
model) are dropped and counted; duplicated or late responses are
ignored; a drained simulation or an ARQ link giving up fails *the
attempt*, and the session retries the whole protocol — fresh nonce,
full reconfiguration, new ARQ state — up to ``max_attempts`` times
before returning an :class:`~repro.core.report.AttestationReport` whose
verdict is ``inconclusive`` with a structured
:class:`~repro.core.report.FailureReason`.  A caller therefore always
gets a verdict: ``accept``, ``reject``, or ``inconclusive``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import NetworkError, ProtocolError
from repro.core.prover import SachaProver
from repro.core.report import AttestationReport, FailureReason
from repro.core.verifier import SachaVerifier
from repro.net.arq import ArqTuning
from repro.net.channel import Channel, Endpoint
from repro.net.ethernet import ETHERTYPE_SACHA, EthernetFrame, MacAddress
from repro.net.messages import (
    IcapConfigCommand,
    IcapReadbackCommand,
    MacChecksumCommand,
    MacChecksumResponse,
    ReadbackResponse,
    decode_command,
    decode_response,
)
from repro.obs import log as obs_log
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.sim.events import Simulator
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)

VERIFIER_MAC = MacAddress.from_string("02:00:00:00:00:01")
PROVER_MAC = MacAddress.from_string("02:00:00:00:00:02")


class _Phase(enum.Enum):
    IDLE = "idle"
    CONFIG = "config"
    READBACK = "readback"
    CHECKSUM = "checksum"
    DONE = "done"
    FAILED = "failed"


@dataclass
class NetworkRunResult:
    report: AttestationReport
    duration_ns: float
    frames_sent_by_verifier: int
    frames_sent_by_prover: int
    attempts: int = 1


class NetworkAttestationSession:
    """One attestation run as network traffic on a channel."""

    def __init__(
        self,
        simulator: Simulator,
        channel: Channel,
        prover: SachaProver,
        verifier: SachaVerifier,
        rng: Optional[DeterministicRng] = None,
        reliable: bool = False,
        arq_timeout_ns: float = 2_000_000.0,
        arq_tuning: Optional[ArqTuning] = None,
        arq_max_retries: int = 25,
        max_attempts: int = 1,
    ) -> None:
        if max_attempts < 1:
            raise ProtocolError(
                f"session needs at least one attempt, got {max_attempts}"
            )
        self._simulator = simulator
        self._channel = channel
        self._prover = prover
        self._verifier = verifier
        self._rng = rng or DeterministicRng(0)
        self._reliable = reliable
        self._arq_timeout_ns = arq_timeout_ns
        self._arq_tuning = arq_tuning
        self._arq_max_retries = arq_max_retries
        self._max_attempts = max_attempts

        self.verifier_endpoint = Endpoint("vrf", VERIFIER_MAC)
        self.prover_endpoint = Endpoint("prv", PROVER_MAC)
        channel.connect(self.verifier_endpoint, self.prover_endpoint)
        self._verifier_port = self.verifier_endpoint
        self._prover_port = self.prover_endpoint
        self._install_ports()

        self._phase = _Phase.IDLE
        self._nonce = b""
        self._plan: List[int] = []
        self._plan_cursor = 0
        self._responses: List[ReadbackResponse] = []
        self._tag: Optional[bytes] = None
        self._start_ns = 0.0
        self._end_ns = 0.0
        self._link_failure: Optional[NetworkError] = None
        self.undecodable_frames = 0
        self.unexpected_frames = 0
        self.total_retransmissions = 0

    # -- transport plumbing --------------------------------------------------------

    def _install_ports(self) -> None:
        """(Re)create the transport for one attempt.

        In reliable mode every attempt gets fresh ARQ links on both
        endpoints: sequence numbers and RTT estimators restart together,
        so a retry is indistinguishable from a brand-new session to the
        peer.
        """
        if self._reliable:
            from repro.net.arq import ArqLink

            self._verifier_port = ArqLink(
                self._simulator,
                self.verifier_endpoint,
                PROVER_MAC,
                self._arq_timeout_ns,
                self._arq_max_retries,
                tuning=self._arq_tuning,
                rng=self._rng.fork("arq-vrf"),
                on_give_up=self._on_link_failure,
            )
            self._prover_port = ArqLink(
                self._simulator,
                self.prover_endpoint,
                VERIFIER_MAC,
                self._arq_timeout_ns,
                self._arq_max_retries,
                tuning=self._arq_tuning,
                rng=self._rng.fork("arq-prv"),
                on_give_up=self._on_link_failure,
            )
        self._verifier_port.handler = self._on_verifier_delivery
        self._prover_port.handler = self._on_prover_delivery

    def _on_link_failure(self, error: NetworkError) -> None:
        """Terminal ARQ give-up: record it and let the simulation drain."""
        if self._link_failure is None:
            self._link_failure = error
        _log.warning(
            "session_link_failure", phase=self._phase.value, error=str(error)
        )

    def _count(self, name: str, help_text: str, **labels: str) -> None:
        registry = get_registry()
        if registry.enabled:
            label_names = tuple(sorted(labels))
            registry.counter(name, help_text, labels=label_names).inc(**labels)

    # -- verifier side -----------------------------------------------------------

    def run(self) -> NetworkRunResult:
        """Drive a full attestation and return the verdict.

        Never raises for link-level failures: after ``max_attempts``
        failed attempts the result carries an ``inconclusive`` report.
        """
        if self._phase is not _Phase.IDLE:
            raise ProtocolError("session already ran")
        self._start_ns = self._simulator.now_ns
        registry = get_registry()
        clock = lambda: self._simulator.now_ns  # noqa: E731

        attempts = 0
        failure: Optional[FailureReason] = None
        with span("net_session", clock=clock, reliable=self._reliable):
            while attempts < self._max_attempts:
                attempts += 1
                if attempts > 1:
                    self._count(
                        "sacha_session_retries_total",
                        "Session-level attestation re-runs after link failure",
                    )
                    _log.info(
                        "session_retry",
                        attempt=attempts,
                        max_attempts=self._max_attempts,
                    )
                with span("session_attempt", clock=clock, attempt=attempts):
                    failure = self._run_attempt()
                if failure is None:
                    break
        if registry.enabled:
            registry.counter(
                "sacha_session_attempts_total",
                "Protocol attempts started by networked sessions",
            ).inc(attempts)

        if failure is not None:
            self._phase = _Phase.FAILED
            self._end_ns = self._simulator.now_ns
            failure = FailureReason(
                stage=failure.stage,
                kind=failure.kind,
                detail=failure.detail,
                attempts=attempts,
            )
            report = AttestationReport.make_inconclusive(failure, self._nonce)
            report.config_steps = len(self._verifier.config_commands(self._nonce))
        else:
            report = self._verifier.evaluate(
                self._nonce, self._plan, self._responses, self._tag or b""
            )
            report.config_steps = len(self._verifier.config_commands(self._nonce))
            report.nonce = self._nonce
        self._count(
            "sacha_session_outcomes_total",
            "Networked session results, by verdict",
            verdict=report.verdict.value,
        )
        return NetworkRunResult(
            report=report,
            duration_ns=self._end_ns - self._start_ns,
            frames_sent_by_verifier=self.verifier_endpoint.frames_sent,
            frames_sent_by_prover=self.prover_endpoint.frames_sent,
            attempts=attempts,
        )

    def _run_attempt(self) -> Optional[FailureReason]:
        """One full protocol pass; None on success, the failure otherwise."""
        # Fresh per-attempt state: nonce, plan, responses, MAC, transport.
        self._link_failure = None
        self._responses = []
        self._plan_cursor = 0
        self._tag = None
        self._prover.abort_run()
        self._install_ports()
        self._phase = _Phase.CONFIG

        # Fire-and-forget configuration commands; in-order delivery on the
        # point-to-point channel guarantees they are applied before the
        # readbacks that follow.
        self._nonce = self._verifier.new_nonce()
        for command in self._verifier.config_commands(self._nonce):
            self._send_to_prover(command.encode())

        self._plan = self._verifier.readback_plan()
        self._phase = _Phase.READBACK
        self._send_next_readback()

        self._simulator.run()
        self._harvest_retransmissions()
        if self._link_failure is not None:
            return FailureReason(
                stage=self._phase.value,
                kind="link_down",
                detail=str(self._link_failure),
            )
        if self._phase is not _Phase.DONE:
            return FailureReason(
                stage=self._phase.value,
                kind="drained",
                detail="simulation drained before the checksum exchange; "
                "a message was lost",
            )
        return None

    def _harvest_retransmissions(self) -> None:
        for port in (self._verifier_port, self._prover_port):
            self.total_retransmissions += getattr(port, "retransmissions", 0)

    def _send_next_readback(self) -> None:
        if self._plan_cursor < len(self._plan):
            frame_index = self._plan[self._plan_cursor]
            self._send_to_prover(IcapReadbackCommand(frame_index).encode())
        else:
            self._phase = _Phase.CHECKSUM
            self._send_to_prover(MacChecksumCommand().encode())

    def _on_verifier_delivery(self, frame: EthernetFrame) -> None:
        try:
            response = decode_response(frame.payload)
        except NetworkError:
            # Corrupted in flight on a raw (non-ARQ) channel: drop it and
            # let the drained-simulation path fail the attempt.
            self.undecodable_frames += 1
            self._count(
                "sacha_session_undecodable_frames_total",
                "Frames the session dropped because they failed to decode",
                side="verifier",
            )
            return
        if isinstance(response, ReadbackResponse):
            if (
                self._phase is not _Phase.READBACK
                or self._plan_cursor >= len(self._plan)
                or response.frame_index != self._plan[self._plan_cursor]
            ):
                # A duplicate or reordered copy; the expected-index check
                # keeps the MAC stream aligned with the plan.
                self.unexpected_frames += 1
                self._count(
                    "sacha_session_unexpected_frames_total",
                    "Out-of-phase or duplicate responses the session ignored",
                    side="verifier",
                )
                return
            self._responses.append(response)
            self._plan_cursor += 1
            self._send_next_readback()
            return
        if isinstance(response, MacChecksumResponse):
            if self._phase is not _Phase.CHECKSUM:
                self.unexpected_frames += 1
                self._count(
                    "sacha_session_unexpected_frames_total",
                    "Out-of-phase or duplicate responses the session ignored",
                    side="verifier",
                )
                return
            self._tag = response.tag
            self._phase = _Phase.DONE
            self._end_ns = self._simulator.now_ns
            return
        self.unexpected_frames += 1

    def _send_to_prover(self, payload: bytes) -> None:
        if self._link_failure is not None:
            return
        try:
            self._verifier_port.send(
                EthernetFrame(
                    destination=PROVER_MAC,
                    source=VERIFIER_MAC,
                    ethertype=ETHERTYPE_SACHA,
                    payload=payload,
                )
            )
        except NetworkError as error:
            self._on_link_failure(error)

    # -- prover side ---------------------------------------------------------------

    def _on_prover_delivery(self, frame: EthernetFrame) -> None:
        try:
            command = decode_command(frame.payload)
        except NetworkError:
            self.undecodable_frames += 1
            self._count(
                "sacha_session_undecodable_frames_total",
                "Frames the session dropped because they failed to decode",
                side="prover",
            )
            return
        if isinstance(command, IcapConfigCommand):
            self._prover.handle_command(command)
            # A configured application starts running: declare/refresh its
            # storage elements once the last application frame arrives.
            app_frames = self._verifier.system.app_impl.region_frames
            if command.frame_index == app_frames[-1]:
                self._verifier.system.app_impl.declare_registers(
                    self._prover.board.fpga.registers
                )
                self._prover.board.fpga.registers.scramble(
                    self._rng.fork("net-app-activity")
                )
            return
        response = self._prover.handle_command(command)
        if response is None:
            return
        if self._link_failure is not None:
            return
        try:
            self._prover_port.send(
                EthernetFrame(
                    destination=VERIFIER_MAC,
                    source=PROVER_MAC,
                    ethertype=ETHERTYPE_SACHA,
                    payload=response.encode(),
                )
            )
        except NetworkError as error:
            self._on_link_failure(error)
