"""Readback-order strategies.

The verifier chooses the order in which configuration frames are read
back and folded into the MAC (Section 6.1).  The paper's default is an
ascending scan from a random offset ``i`` (modulo the frame count); "the
order ... can be any permutation" and "a number of frames could also
appear multiple times".  Each strategy must *cover* every frame at least
once — the property the verifier's policy enforces.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.errors import ProtocolError
from repro.utils.rng import DeterministicRng


class ReadbackOrder(abc.ABC):
    """A rule producing the frame readback sequence for one run."""

    name: str = "abstract"

    @abc.abstractmethod
    def frame_sequence(self, total_frames: int) -> List[int]:
        """The exact sequence of frame indices to read back."""

    def validate(self, total_frames: int) -> List[int]:
        """Produce the sequence and check full coverage."""
        sequence = self.frame_sequence(total_frames)
        check_coverage(sequence, total_frames)
        return sequence


def check_coverage(sequence: Sequence[int], total_frames: int) -> None:
    """Every frame must appear at least once; indices must be in range."""
    seen = set()
    for index in sequence:
        if not 0 <= index < total_frames:
            raise ProtocolError(f"readback index {index} out of range")
        seen.add(index)
    if len(seen) != total_frames:
        missing = total_frames - len(seen)
        raise ProtocolError(
            f"readback order misses {missing} of {total_frames} frames; "
            "partial coverage would leave unattested configuration"
        )


class OffsetOrder(ReadbackOrder):
    """The paper's order: ascending from offset ``i``, modulo the count.

    ``ICAP_readback(i), ICAP_readback((i+1) % n), ...,
    ICAP_readback((i+n-1) % n)`` — Figure 9.
    """

    name = "offset"

    def __init__(self, offset: int) -> None:
        if offset < 0:
            raise ProtocolError(f"offset must be non-negative, got {offset}")
        self.offset = offset

    def frame_sequence(self, total_frames: int) -> List[int]:
        return [
            (self.offset + step) % total_frames for step in range(total_frames)
        ]


class SequentialOrder(OffsetOrder):
    """Plain ascending order (offset 0)."""

    name = "sequential"

    def __init__(self) -> None:
        super().__init__(0)


class RandomOffsetOrder(ReadbackOrder):
    """The deployed default: a fresh random offset each run."""

    name = "random-offset"

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng

    def frame_sequence(self, total_frames: int) -> List[int]:
        offset = self._rng.randint(0, total_frames - 1)
        return OffsetOrder(offset).frame_sequence(total_frames)


class PermutationOrder(ReadbackOrder):
    """A uniformly random permutation of all frames."""

    name = "permutation"

    def __init__(self, rng: DeterministicRng) -> None:
        self._rng = rng

    def frame_sequence(self, total_frames: int) -> List[int]:
        return self._rng.permutation(total_frames)


class RepeatedFramesOrder(ReadbackOrder):
    """Full coverage plus extra repeats of randomly chosen frames.

    Repeats increase the prover's work without giving anything away; the
    paper explicitly allows them ("a number of frames could also appear
    multiple times").
    """

    name = "repeated"

    def __init__(self, rng: DeterministicRng, repeat_fraction: float = 0.1) -> None:
        if not 0.0 <= repeat_fraction <= 1.0:
            raise ProtocolError(
                f"repeat fraction must be in [0, 1], got {repeat_fraction}"
            )
        self._rng = rng
        self._repeat_fraction = repeat_fraction

    def frame_sequence(self, total_frames: int) -> List[int]:
        base = self._rng.permutation(total_frames)
        repeats = int(total_frames * self._repeat_fraction)
        extra = [self._rng.randint(0, total_frames - 1) for _ in range(repeats)]
        positions = sorted(
            (self._rng.randint(0, len(base)) for _ in extra), reverse=True
        )
        for position, frame in zip(positions, extra):
            base.insert(position, frame)
        return base


class ExplicitOrder(ReadbackOrder):
    """A caller-provided sequence (used by attack harnesses and tests)."""

    name = "explicit"

    def __init__(self, sequence: Sequence[int], skip_validation: bool = False) -> None:
        self._sequence = list(sequence)
        self._skip_validation = skip_validation

    def frame_sequence(self, total_frames: int) -> List[int]:
        return list(self._sequence)

    def validate(self, total_frames: int) -> List[int]:
        if self._skip_validation:
            return list(self._sequence)
        return super().validate(total_frames)


def default_order(rng: Optional[DeterministicRng] = None) -> ReadbackOrder:
    """The order SACHa ships with: random offset per run."""
    if rng is None:
        return SequentialOrder()
    return RandomOffsetOrder(rng)
