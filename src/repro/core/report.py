"""Attestation outcomes.

The verifier's verdict separates the two checks of the protocol
(Figure 9): the MAC comparison ``H_Prv == H_Vrf`` (origin and transport
integrity) and the masked configuration comparison ``B_Prv == B_Vrf``
(the configuration is the intended one).  Both must pass for the prover
to be attested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from repro.sim.tracing import TraceRecorder
from repro.utils.units import format_time_ns


class Verdict(enum.Enum):
    """The three possible outcomes of one attestation run.

    ``ACCEPT`` and ``REJECT`` are the paper's two definite verdicts.
    ``INCONCLUSIVE`` is the graceful-degradation outcome: the run could
    not be completed (link down, session retries exhausted, a member
    crashing mid-sweep) so the verifier learned *nothing* about the
    prover — which is materially different from a rejection and must
    never be conflated with one.
    """

    ACCEPT = "accept"
    REJECT = "reject"
    INCONCLUSIVE = "inconclusive"


@dataclass(frozen=True)
class FailureReason:
    """Structured description of why a run failed to reach a verdict.

    ``stage`` names where the run died (``config`` / ``readback`` /
    ``checksum`` / ``link`` / ``member`` / ``session``); ``kind`` is a
    machine-matchable class (``link_down``, ``drained``, ``exception``,
    ...); ``detail`` is the human-readable remainder.
    """

    stage: str
    kind: str
    detail: str = ""
    attempts: int = 0

    def describe(self) -> str:
        text = f"{self.kind} during {self.stage}"
        if self.attempts:
            text += f" after {self.attempts} attempt(s)"
        if self.detail:
            text += f": {self.detail}"
        return text


@dataclass(frozen=True)
class TimingBreakdown:
    """Where the protocol time went, per the Table 3/4 decomposition."""

    config_ns: float
    readback_ns: float
    checksum_ns: float
    network_overhead_ns: float

    @property
    def theoretical_ns(self) -> float:
        return self.config_ns + self.readback_ns + self.checksum_ns

    @property
    def total_ns(self) -> float:
        return self.theoretical_ns + self.network_overhead_ns

    def summary(self) -> str:
        return (
            f"config {format_time_ns(self.config_ns)}, "
            f"readback {format_time_ns(self.readback_ns)}, "
            f"checksum {format_time_ns(self.checksum_ns)}, "
            f"network {format_time_ns(self.network_overhead_ns)} "
            f"=> total {format_time_ns(self.total_ns)}"
        )


@dataclass
class AttestationReport:
    """Everything the verifier concluded from one protocol run."""

    mac_valid: bool
    config_match: bool
    mismatched_frames: List[int] = field(default_factory=list)
    config_steps: int = 0
    readback_steps: int = 0
    nonce: bytes = b""
    timing: Optional[TimingBreakdown] = None
    trace: Optional[TraceRecorder] = None
    failure_reason: str = ""
    #: Set when the run could not complete: the report carries no
    #: information about the prover's configuration.
    inconclusive: bool = False
    failure: Optional[FailureReason] = None

    @classmethod
    def make_inconclusive(
        cls, failure: FailureReason, nonce: bytes = b""
    ) -> "AttestationReport":
        """A no-verdict report for a run that could not complete."""
        return cls(
            mac_valid=False,
            config_match=False,
            nonce=nonce,
            failure_reason=failure.describe(),
            inconclusive=True,
            failure=failure,
        )

    @property
    def verdict(self) -> Verdict:
        if self.inconclusive:
            return Verdict.INCONCLUSIVE
        return Verdict.ACCEPT if self.accepted else Verdict.REJECT

    @property
    def accepted(self) -> bool:
        """The overall verdict: prover attested."""
        return self.mac_valid and self.config_match and not self.inconclusive

    def explain(self) -> str:
        if self.inconclusive:
            reason = (
                self.failure.describe() if self.failure else self.failure_reason
            ) or "run did not complete"
            lines = [f"INCONCLUSIVE: {reason}"]
            lines.append(
                f"steps: {self.config_steps} config, "
                f"{self.readback_steps} readback"
            )
            if self.timing is not None:
                lines.append("timing: " + self.timing.summary())
            return "\n".join(lines)
        if self.accepted:
            lines = [
                "ATTESTED: MAC valid and configuration matches the golden "
                "reference",
            ]
        else:
            reasons = []
            if not self.mac_valid:
                reasons.append("MAC mismatch (H_Prv != H_Vrf)")
            if not self.config_match:
                count = len(self.mismatched_frames)
                preview = ", ".join(str(f) for f in self.mismatched_frames[:5])
                suffix = ", ..." if count > 5 else ""
                reasons.append(
                    f"configuration mismatch in {count} frame(s) "
                    f"[{preview}{suffix}]"
                )
            if self.failure_reason:
                reasons.append(self.failure_reason)
            lines = ["REJECTED: " + "; ".join(reasons)]
        lines.append(
            f"steps: {self.config_steps} config, {self.readback_steps} readback"
        )
        if self.timing is not None:
            lines.append("timing: " + self.timing.summary())
        return "\n".join(lines)
