"""The SACHa attestation protocol (Figures 8 and 9).

:func:`run_attestation` drives one complete run between a prover and a
verifier: the two-step dynamic configuration (application, then nonce),
the full-configuration readback in the verifier's order with incremental
MAC computation, the final checksum exchange, and the verifier's two
comparisons.  Timing is accumulated from the Table-3 action model plus a
network model, so a run on the XC6VLX240T reports the paper's 1.443 s /
28.5 s durations while moving every real byte through the real MAC.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ProtocolError
from repro.core.prover import SachaProver
from repro.core.report import AttestationReport, TimingBreakdown
from repro.core.verifier import SachaVerifier
from repro.obs import log as obs_log
from repro.obs.metrics import get_registry
from repro.obs.spans import span
from repro.net.ethernet import (
    FCS_BYTES,
    HEADER_BYTES,
    IFG_BYTES,
    MAX_PAYLOAD,
    PREAMBLE_BYTES,
)
from repro.net.messages import (
    IcapReadbackCommand,
    IcapReadbackRangeCommand,
    MacChecksumCommand,
    MacChecksumResponse,
    MaskedReadbackAck,
    ReadbackRangeResponse,
    ReadbackResponse,
)
from repro.net.phy import GigabitPhy

#: Wire header of a ``ReadbackRangeResponse``: opcode(1) + start(4) +
#: length(4) — see ``repro.net.messages``.
RANGE_RESPONSE_HEADER_BYTES = 9
from repro.sim.tracing import TraceRecorder
from repro.timing.model import ActionCounts, ActionTimingModel, ProtocolAction
from repro.timing.network import IDEAL_NETWORK, NetworkModel
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)


@dataclass
class SessionOptions:
    """Knobs of one protocol run."""

    network: NetworkModel = IDEAL_NETWORK
    record_trace: bool = False
    #: Simulate the application (and static logic) running between the
    #: configuration and readback phases: live registers take arbitrary
    #: values, which the mask must absorb.
    scramble_registers: bool = True
    #: Declare the application design's storage elements once its frames
    #: are configured (a freshly configured design starts flip-flopping).
    declare_app_registers: bool = True
    #: Section-6.1 alternative: send the Msk to the prover with each
    #: readback; the prover masks before MACing and returns no frame
    #: content.  Similar communication latency, no tamper localization.
    mask_at_prover: bool = False
    #: Batch consecutive readbacks into one command/response round trip
    #: (the optimization the E7 ablation motivates).  1 = the paper's
    #: one-frame-per-packet protocol.  Incompatible with mask_at_prover.
    readback_batch_frames: int = 1
    #: Emit one observability span per readback step (28k+ spans on a
    #: full XC6VLX240T run — phase spans alone are the default).  Only
    #: takes effect while the active metrics registry is enabled.
    span_frames: bool = False


@dataclass
class SessionResult:
    """The run's artifacts beyond the report (for attacks and tests)."""

    report: AttestationReport
    nonce: bytes = b""
    plan: List[int] = field(default_factory=list)
    responses: List[ReadbackResponse] = field(default_factory=list)
    tag: bytes = b""


def _contiguous_batches(plan, batch_frames):
    """Split a plan into (start, count) runs of consecutive indices."""
    batches = []
    position = 0
    while position < len(plan):
        start = plan[position]
        count = 1
        while (
            position + count < len(plan)
            and count < batch_frames
            and plan[position + count] == start + count
        ):
            count += 1
        batches.append((start, count))
        position += count
    return batches


def run_attestation(
    prover: SachaProver,
    verifier: SachaVerifier,
    rng: Optional[DeterministicRng] = None,
    options: Optional[SessionOptions] = None,
) -> SessionResult:
    """Execute one full SACHa attestation."""
    rng = rng or DeterministicRng(0)
    options = options if options is not None else SessionOptions()
    trace = TraceRecorder(enabled=options.record_trace)
    model = ActionTimingModel(verifier.system.device)
    device = verifier.system.device
    elapsed = 0.0

    def tick(action: ProtocolAction) -> None:
        nonlocal elapsed
        elapsed += model.action_ns(action)

    registry = get_registry()
    obs_on = registry.enabled
    clock = lambda: elapsed  # noqa: E731 — spans read the sim clock live
    if obs_on:
        attestations = registry.counter(
            "sacha_attestations_total",
            "Completed attestation runs by verdict",
            labels=("result",),
        )
        frames_configured = registry.counter(
            "sacha_frames_configured_total",
            "Frames written during dynamic configuration phases",
        )
        frames_readback = registry.counter(
            "sacha_frames_readback_total",
            "Configuration frames read back from provers",
        )
        mac_updates = registry.counter(
            "sacha_mac_updates_total",
            "Incremental MAC update steps performed by provers",
        )
        phase_seconds = registry.histogram(
            "sacha_phase_duration_seconds",
            "Simulated duration of each protocol phase",
            labels=("phase",),
        )
        run_seconds = registry.histogram(
            "sacha_attestation_duration_seconds",
            "Simulated end-to-end duration of one attestation run",
        )
    if obs_on and options.span_frames:
        frame_span = lambda idx: span(  # noqa: E731
            "readback", clock=clock, registry=registry, frame=idx
        )
    else:
        frame_span = lambda idx: contextlib.nullcontext()  # noqa: E731

    with span(
        "attestation", clock=clock, registry=registry, device=device.name
    ) as root:
        # -- dynamic configuration phase (Figure 9, top) ---------------------
        nonce = verifier.new_nonce()
        with span("config", clock=clock, registry=registry):
            config_commands = verifier.config_commands(nonce)
            config_ns = 0.0
            for command in config_commands:
                start = elapsed
                tick(ProtocolAction.A1)
                prover.handle_command(command)
                tick(ProtocolAction.A2)
                config_ns += elapsed - start
                trace.record(
                    start, "ICAP_config", "vrf->prv", f"frame {command.frame_index}"
                )

        # The dynamic partition now runs the configured application.
        registers = prover.board.fpga.registers
        if options.declare_app_registers:
            verifier.system.app_impl.declare_registers(registers)
        if options.scramble_registers:
            registers.scramble(rng.fork("app-activity"))

        # -- full configuration readback (Figure 9, middle) -------------------
        plan = verifier.readback_plan()
        responses: List[ReadbackResponse] = []
        readback_ns = 0.0
        readback_commands = 0
        first = True
        if options.mask_at_prover and options.readback_batch_frames > 1:
            raise ProtocolError(
                "readback batching is incompatible with prover-side masking"
            )
        with span("readback", clock=clock, registry=registry, frames=len(plan)):
            if options.mask_at_prover:
                for command in verifier.masked_readback_commands(plan):
                    start = elapsed
                    elapsed += model.masked_readback_send_ns()
                    if first:
                        tick(ProtocolAction.A5)
                        trace.record(elapsed, "MAC_init", "prv")
                        first = False
                    with frame_span(command.frame_index):
                        ack = prover.handle_command(command)
                        if not isinstance(ack, MaskedReadbackAck):
                            raise ProtocolError(
                                f"prover returned {type(ack).__name__} to "
                                "masked readback"
                            )
                        tick(ProtocolAction.A4)
                        tick(ProtocolAction.A6)
                        elapsed += model.masked_ack_ns()
                    readback_ns += elapsed - start
                    trace.record(
                        start,
                        "ICAP_readback_masked",
                        "vrf->prv",
                        f"frame {command.frame_index}",
                    )
            elif options.readback_batch_frames > 1:
                frame_bytes = verifier.system.device.frame_bytes
                phy = GigabitPhy()
                per_frame_overhead = (
                    PREAMBLE_BYTES + HEADER_BYTES + FCS_BYTES + IFG_BYTES
                )
                for batch_start, batch_count in _contiguous_batches(
                    plan, options.readback_batch_frames
                ):
                    start = elapsed
                    tick(ProtocolAction.A3)
                    if first:
                        tick(ProtocolAction.A5)
                        trace.record(elapsed, "MAC_init", "prv")
                        first = False
                    response = prover.handle_command(
                        IcapReadbackRangeCommand(
                            start_index=batch_start, count=batch_count
                        )
                    )
                    if not isinstance(response, ReadbackRangeResponse):
                        raise ProtocolError(
                            f"prover returned {type(response).__name__} to a "
                            "ranged readback"
                        )
                    for offset in range(batch_count):
                        tick(ProtocolAction.A4)
                        tick(ProtocolAction.A6)
                        responses.append(
                            ReadbackResponse(
                                frame_index=batch_start + offset,
                                data=response.data[
                                    offset * frame_bytes : (offset + 1) * frame_bytes
                                ],
                            )
                        )
                    # One serialization for the whole batch (A8 amortized):
                    # the ranged response spans as many MTU-sized Ethernet
                    # frames as its payload needs, each paying the full
                    # preamble/header/FCS/IFG overhead at PHY line rate.
                    payload_bytes = (
                        RANGE_RESPONSE_HEADER_BYTES + batch_count * frame_bytes
                    )
                    fragments = -(-payload_bytes // MAX_PAYLOAD)
                    elapsed += (
                        payload_bytes + fragments * per_frame_overhead
                    ) * phy.ns_per_byte
                    readback_ns += elapsed - start
                    readback_commands += 1
                    trace.record(
                        start,
                        "ICAP_readback_range",
                        "vrf->prv",
                        f"frames {batch_start}..{batch_start + batch_count - 1}",
                    )
            else:
                for frame_index in plan:
                    start = elapsed
                    tick(ProtocolAction.A3)
                    if first:
                        tick(ProtocolAction.A5)
                        trace.record(elapsed, "MAC_init", "prv")
                        first = False
                    with frame_span(frame_index):
                        response = prover.handle_command(
                            IcapReadbackCommand(frame_index)
                        )
                        if not isinstance(response, ReadbackResponse):
                            raise ProtocolError(
                                f"prover returned {type(response).__name__} "
                                "to ICAP_readback"
                            )
                        tick(ProtocolAction.A4)
                        tick(ProtocolAction.A6)
                        tick(ProtocolAction.A8)
                    readback_ns += elapsed - start
                    responses.append(response)
                    trace.record(
                        start, "ICAP_readback", "vrf->prv", f"frame {frame_index}"
                    )

        # -- checksum exchange (Figure 9, bottom) ------------------------------
        with span("checksum", clock=clock, registry=registry):
            start = elapsed
            tick(ProtocolAction.A9)
            checksum_response = prover.handle_command(MacChecksumCommand())
            if not isinstance(checksum_response, MacChecksumResponse):
                raise ProtocolError(
                    f"prover returned {type(checksum_response).__name__} to "
                    "MAC_checksum"
                )
            tick(ProtocolAction.A7)
            tick(ProtocolAction.A10)
            checksum_ns = elapsed - start
            trace.record(start, "MAC_checksum", "vrf->prv")
            trace.record(elapsed, "MAC_response", "prv->vrf")

        # -- verdict ----------------------------------------------------------
        counts = ActionCounts(
            config_steps=len(config_commands),
            readback_steps=readback_commands or len(plan),
        )
        network_ns = options.network.overhead_ns(counts)
        if options.mask_at_prover:
            report = verifier.evaluate_masked(nonce, plan, checksum_response.tag)
        else:
            report = verifier.evaluate(
                nonce, plan, responses, checksum_response.tag
            )
        report.config_steps = len(config_commands)
        report.nonce = nonce
        report.timing = TimingBreakdown(
            config_ns=config_ns,
            readback_ns=readback_ns,
            checksum_ns=checksum_ns,
            network_overhead_ns=network_ns,
        )
        report.trace = trace if options.record_trace else None
        if root is not None:
            root.set_attribute("result", "accept" if report.accepted else "reject")
            root.set_attribute("frames", len(plan))

    if obs_on:
        result_label = "accept" if report.accepted else "reject"
        attestations.inc(result=result_label)
        frames_configured.inc(len(config_commands))
        frames_readback.inc(len(plan))
        mac_updates.inc(len(plan))
        phase_seconds.observe(config_ns / 1e9, phase="config")
        phase_seconds.observe(readback_ns / 1e9, phase="readback")
        phase_seconds.observe(checksum_ns / 1e9, phase="checksum")
        run_seconds.observe(report.timing.total_ns / 1e9)
        _log.info(
            "attestation_completed",
            device=device.name,
            result=result_label,
            frames=len(plan),
            mismatched=len(report.mismatched_frames),
            total_ns=report.timing.total_ns,
        )
    return SessionResult(
        report=report,
        nonce=nonce,
        plan=plan,
        responses=responses,
        tag=checksum_response.tag,
    )


def attest(
    prover: SachaProver,
    verifier: SachaVerifier,
    rng: Optional[DeterministicRng] = None,
    options: Optional[SessionOptions] = None,
) -> AttestationReport:
    """Convenience wrapper returning just the report."""
    return run_attestation(prover, verifier, rng, options).report
