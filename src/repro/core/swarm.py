"""Swarm attestation: a fleet of SACHa provers under one verifier.

Section 4.2 notes that hybrid schemes aim at large-scale "swarm"
attestation of device fleets.  SACHa composes naturally: each board
attests independently, so a fleet can be swept sequentially (one
verifier, one network) or in parallel (per-device verifier instances).
The swarm report aggregates verdicts and localizes compromised devices
down to their mismatching frames.
"""

from __future__ import annotations

import contextvars
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, TypeVar

from repro.core.protocol import SessionOptions, run_attestation
from repro.core.prover import SachaProver
from repro.core.report import AttestationReport, FailureReason, Verdict
from repro.core.verifier import SachaVerifier
from repro.errors import ProtocolError, ReproError
from repro.obs import log as obs_log
from repro.obs.aggregate import merge_registries, shard_registry
from repro.obs.metrics import MetricsRegistry, get_registry, use_context_registry
from repro.obs.spans import span
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)

_T = TypeVar("_T")


def map_sharded(
    fn: Callable[[int], _T],
    count: int,
    max_workers: int,
    registry: Optional[MetricsRegistry] = None,
) -> List[_T]:
    """Run ``fn(index)`` for ``count`` indices with registry-shard isolation.

    The pre-forked-shard pattern of the swarm sweep, reusable by any
    fan-out that must stay byte-identical to a sequential run (the fleet
    controller drives its device sweeps through this): with more than
    one worker and an enabled registry, every call runs on a thread pool
    inside a *copied* context — so ambient spans stay parents — under
    its own :func:`~repro.obs.aggregate.shard_registry`, and the shards
    merge back into ``registry`` (default: the active one) in index
    order.  Merged telemetry is therefore independent of worker count
    and completion order.  With one worker, or a disabled registry, the
    calls run without shards.  Results always return in index order.

    Callers needing per-call randomness must fork their RNGs *before*
    dispatch (one per index), never inside ``fn`` from shared state.
    """
    if count <= 0:
        return []
    target = registry if registry is not None else get_registry()
    workers = min(max(max_workers, 1), count)
    if workers <= 1:
        return [fn(index) for index in range(count)]
    if not target.enabled:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, range(count)))
    shards = [shard_registry(index) for index in range(count)]

    def run_in_shard(index: int) -> _T:
        with use_context_registry(shards[index]):
            return fn(index)

    contexts = [contextvars.copy_context() for _ in range(count)]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        results = list(
            pool.map(
                lambda index: contexts[index].run(run_in_shard, index),
                range(count),
            )
        )
    merge_registries(shards, into=target)
    return results


@dataclass
class SwarmMember:
    """One enrolled device of the fleet."""

    device_id: str
    prover: SachaProver
    verifier: SachaVerifier


@dataclass
class SwarmReport:
    """Aggregate verdict over the fleet."""

    results: Dict[str, AttestationReport] = field(default_factory=dict)
    sequential_ns: float = 0.0
    parallel_ns: float = 0.0

    @property
    def healthy(self) -> List[str]:
        return sorted(
            device_id
            for device_id, report in self.results.items()
            if report.verdict is Verdict.ACCEPT
        )

    @property
    def compromised(self) -> List[str]:
        return sorted(
            device_id
            for device_id, report in self.results.items()
            if report.verdict is Verdict.REJECT
        )

    @property
    def inconclusive(self) -> List[str]:
        """Members whose run failed (link down, crash) — no verdict."""
        return sorted(
            device_id
            for device_id, report in self.results.items()
            if report.verdict is Verdict.INCONCLUSIVE
        )

    @property
    def all_healthy(self) -> bool:
        return not self.compromised and not self.inconclusive

    def localize(self) -> Dict[str, List[int]]:
        """Mismatching frames per compromised device."""
        return {
            device_id: self.results[device_id].mismatched_frames
            for device_id in self.compromised
        }

    def explain(self) -> str:
        lines = [
            f"swarm of {len(self.results)}: {len(self.healthy)} healthy, "
            f"{len(self.compromised)} compromised, "
            f"{len(self.inconclusive)} inconclusive"
        ]
        for device_id in self.compromised:
            frames = self.results[device_id].mismatched_frames
            reason = (
                f"frames {frames[:5]}" if frames else "MAC invalid"
            )
            lines.append(f"  - {device_id}: {reason}")
        for device_id in self.inconclusive:
            report = self.results[device_id]
            reason = (
                report.failure.describe()
                if report.failure
                else report.failure_reason or "run did not complete"
            )
            lines.append(f"  - {device_id}: inconclusive ({reason})")
        lines.append(
            f"sweep time: {self.sequential_ns / 1e9:.3f} s sequential, "
            f"{self.parallel_ns / 1e9:.3f} s parallel"
        )
        return "\n".join(lines)


class SwarmAttestation:
    """Drives one attestation sweep over a fleet."""

    def __init__(self, members: List[SwarmMember]) -> None:
        if not members:
            raise ProtocolError("a swarm needs at least one member")
        seen = set()
        for member in members:
            if member.device_id in seen:
                raise ProtocolError(
                    f"duplicate device id {member.device_id!r} in swarm"
                )
            seen.add(member.device_id)
        self._members = list(members)

    def __len__(self) -> int:
        return len(self._members)

    def _attest_member(
        self,
        member: SwarmMember,
        member_rng: DeterministicRng,
        options: SessionOptions,
    ) -> AttestationReport:
        """One member's run, with failures folded into the report."""
        try:
            return run_attestation(
                member.prover, member.verifier, member_rng, options
            ).report
        except ReproError as exc:
            # A half-finished run leaves incremental MAC state in the
            # prover; reset it so the failure cannot bleed into the next
            # member or sweep.
            member.prover.abort_run()
            _log.warning(
                "swarm_member_failed",
                device_id=member.device_id,
                error=str(exc),
            )
            return AttestationReport.make_inconclusive(
                FailureReason(
                    stage="member",
                    kind=type(exc).__name__,
                    detail=str(exc),
                )
            )

    def run(
        self,
        rng: DeterministicRng,
        options: Optional[SessionOptions] = None,
        on_result: Optional[Callable[[str, AttestationReport], None]] = None,
        max_workers: Optional[int] = None,
    ) -> SwarmReport:
        """Attest every member; independent nonces and readback orders.

        ``sequential_ns`` models one verifier sweeping the fleet member
        by member; ``parallel_ns`` models per-device verifiers running
        concurrently (the slowest member bounds the sweep).

        ``max_workers`` > 1 runs member attestations on a thread pool
        (default: :class:`repro.perf.ReproConfig` ``swarm_workers``).
        Each member's RNG is forked from its device id *before* the
        sweep, so verdicts, nonces, and reports are byte-identical to
        the sequential sweep regardless of completion order; results and
        ``on_result`` callbacks are delivered in member order.

        A member whose run raises (dead link, crashing prover) is
        recorded with an ``inconclusive`` report; the sweep always
        completes and the report covers every member.
        """
        options = options if options is not None else SessionOptions()
        if max_workers is None:
            from repro.perf import get_config

            max_workers = get_config().swarm_workers
        workers = min(max(max_workers, 1), len(self._members))
        report = SwarmReport()
        registry = get_registry()
        durations: List[float] = []
        sweep_clock = lambda: sum(durations)  # noqa: E731 — sequential sweep time
        member_rngs = [rng.fork(member.device_id) for member in self._members]
        def record(member: SwarmMember, member_report: AttestationReport) -> None:
            report.results[member.device_id] = member_report
            durations.append(
                member_report.timing.total_ns if member_report.timing else 0.0
            )
            if registry.enabled:
                registry.counter(
                    "sacha_swarm_member_verdicts_total",
                    "Per-member attestation outcomes across sweeps",
                    labels=("device_id", "verdict"),
                ).inc(
                    device_id=member.device_id,
                    verdict=member_report.verdict.value,
                )
            if on_result is not None:
                on_result(member.device_id, member_report)

        with span("swarm_sweep", clock=sweep_clock, members=len(self._members)):
            # Each worker collects into its own registry shard inside a
            # copied context: the copy carries the sweep span (so member
            # spans stay children of ``swarm_sweep``) and the shard is
            # installed context-locally (so threads never contend on the
            # active registry).  Shards merge back in member order —
            # byte-identical output to the sequential sweep regardless
            # of worker count or completion order.
            member_reports = map_sharded(
                lambda index: self._attest_member(
                    self._members[index], member_rngs[index], options
                ),
                len(self._members),
                workers,
                registry=registry,
            )
            for member, member_report in zip(self._members, member_reports):
                record(member, member_report)
        report.sequential_ns = sum(durations)
        report.parallel_ns = max(durations) if durations else 0.0
        if registry.enabled:
            registry.counter(
                "sacha_swarm_sweeps_total", "Completed fleet attestation sweeps"
            ).inc()
            members = registry.counter(
                "sacha_swarm_members_total",
                "Fleet members attested across sweeps, by verdict",
                labels=("verdict",),
            )
            if report.healthy:
                members.inc(len(report.healthy), verdict="accept")
            if report.compromised:
                members.inc(len(report.compromised), verdict="reject")
            if report.inconclusive:
                members.inc(len(report.inconclusive), verdict="inconclusive")
            sweep_gauge = registry.gauge(
                "sacha_swarm_sweep_duration_seconds",
                "Duration of the last fleet sweep, by strategy",
                labels=("strategy",),
            )
            sweep_gauge.set(report.sequential_ns / 1e9, strategy="sequential")
            sweep_gauge.set(report.parallel_ns / 1e9, strategy="parallel")
            _log.info(
                "swarm_sweep_completed",
                members=len(self._members),
                healthy=len(report.healthy),
                compromised=len(report.compromised),
                inconclusive=len(report.inconclusive),
                sequential_ns=report.sequential_ns,
            )
        return report


def build_swarm(
    make_member: Callable[[int], Tuple[str, SachaProver, SachaVerifier]],
    count: int,
) -> SwarmAttestation:
    """Construct a swarm from a member factory (index → member parts)."""
    if count <= 0:
        raise ProtocolError(f"swarm size must be positive, got {count}")
    members = []
    for index in range(count):
        device_id, prover, verifier = make_member(index)
        members.append(
            SwarmMember(device_id=device_id, prover=prover, verifier=verifier)
        )
    return SwarmAttestation(members)
