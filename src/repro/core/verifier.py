"""The SACHa verifier.

The verifier owns every decision in the protocol: which frames to
configure (the intended application plus a fresh nonce), the readback
order, and the final two-part verdict — the MAC comparison and the
masked golden-configuration comparison (Figure 9, right-hand side).
"""

from __future__ import annotations

import hmac
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.crypto.cmac import AesCmac
from repro.design.sacha_design import SachaSystemDesign
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.mask import MaskFile
from repro.errors import VerificationError
from repro.core.orders import ReadbackOrder, default_order
from repro.core.report import AttestationReport
from repro.net.messages import (
    IcapConfigCommand,
    IcapReadbackMaskedCommand,
    ReadbackResponse,
)
from repro.obs import log as obs_log
from repro.obs.metrics import get_registry
from repro.utils.rng import DeterministicRng
from repro.utils.secret import SecretBytes

_log = obs_log.get_logger(__name__)


def _observe_verdict(report: AttestationReport) -> None:
    """Count the evaluation and log a rejection's reason."""
    registry = get_registry()
    if not registry.enabled:
        return
    verdict = report.verdict.value
    registry.counter(
        "sacha_verifier_evaluations_total",
        "Verifier verdicts, by outcome",
        labels=("verdict",),
    ).inc(verdict=verdict)
    if report.mismatched_frames:
        registry.counter(
            "sacha_frames_mismatched_total",
            "Readback frames that differed from the masked golden reference",
        ).inc(len(report.mismatched_frames))
    if not report.accepted:
        reason = report.failure_reason
        if not reason:
            parts = []
            if not report.mac_valid:
                parts.append("MAC invalid")
            if not report.config_match:
                parts.append(
                    f"{len(report.mismatched_frames)} frame(s) mismatched"
                )
            reason = "; ".join(parts)
        _log.warning(
            "attestation_rejected",
            mac_valid=report.mac_valid,
            config_match=report.config_match,
            mismatched_frames=len(report.mismatched_frames),
            reason=reason,
        )


@dataclass(frozen=True)
class VerifierPolicy:
    """Checks the verifier enforces beyond the two comparisons."""

    require_full_coverage: bool = True
    require_frame_echo: bool = True  # responses must echo requested indices
    max_readback_steps: Optional[int] = None

    def validate_order(self, sequence: Sequence[int], total_frames: int) -> None:
        if self.max_readback_steps is not None and len(sequence) > self.max_readback_steps:
            raise VerificationError(
                f"readback plan of {len(sequence)} steps exceeds the "
                f"policy limit {self.max_readback_steps}"
            )


class SachaVerifier:
    """One verifier instance bound to one enrolled prover device."""

    def __init__(
        self,
        system: SachaSystemDesign,
        key: Union[bytes, SecretBytes],
        rng: DeterministicRng,
        order: Optional[ReadbackOrder] = None,
        policy: Optional[VerifierPolicy] = None,
        attest_live_state: bool = False,
    ) -> None:
        key_bytes = key.reveal() if isinstance(key, SecretBytes) else bytes(key)
        if len(key_bytes) != 16:
            raise VerificationError(
                f"MAC key must be 16 bytes, got {len(key_bytes)}"
            )
        self.system = system
        self._key = key_bytes
        self._rng = rng
        self._order = order or default_order(rng.fork("readback-order"))
        self._policy = policy if policy is not None else VerifierPolicy()
        #: Future-work mode (Section 8): attest the live register state
        #: too — no mask is applied, and the verifier must know the
        #: expected register values.
        self.attest_live_state = attest_live_state

    @property
    def device_total_frames(self) -> int:
        return self.system.device.total_frames

    # -- challenge construction -------------------------------------------------

    def new_nonce(self) -> bytes:
        """A fresh nonce for the dynamic configuration step."""
        return self._rng.randbytes(self.system.nonce_bytes)

    def config_commands(self, nonce: bytes) -> List[IcapConfigCommand]:
        """The dynamic-configuration phase of Figure 9.

        First the intended application (frame m .. frame n), then the
        nonce — two separate configuration steps, covering the *entire*
        DynMem.
        """
        commands: List[IcapConfigCommand] = []
        app_impl = self.system.app_impl
        for frame_index in app_impl.region_frames:
            commands.append(
                IcapConfigCommand(
                    frame_index=frame_index,
                    data=app_impl.frame_content[frame_index],
                )
            )
        from repro.design.bitgen import nonce_frame_content

        for frame_index in self.system.partition.nonce_frame_list():
            commands.append(
                IcapConfigCommand(
                    frame_index=frame_index,
                    data=nonce_frame_content(nonce, self.system.device),
                )
            )
        return commands

    def readback_plan(self) -> List[int]:
        """The frame sequence for the full-configuration readback."""
        sequence = (
            self._order.validate(self.device_total_frames)
            if self._policy.require_full_coverage
            else self._order.frame_sequence(self.device_total_frames)
        )
        self._policy.validate_order(sequence, self.device_total_frames)
        return sequence

    # -- verdict -------------------------------------------------------------------

    def expected_mac(
        self, responses: Sequence[ReadbackResponse]
    ) -> bytes:
        """H_Vrf: the MAC over the configuration *as received*."""
        mac = AesCmac(self._key)
        mac.update_frames(response.data for response in responses)
        return mac.finalize()

    def mac_stream(self) -> Optional[AesCmac]:
        """An incremental H_Vrf accumulator for pipelined transports.

        The pipelined session folds readback batches into this as they
        arrive and passes the finalized tag to :meth:`evaluate` as
        ``expected_tag``, avoiding a second full-sweep MAC at verdict
        time.  Returns ``None`` when the authenticity check cannot be
        streamed (the Section-8 signature extension verifies a signature
        instead of recomputing a MAC).
        """
        return AesCmac(self._key)

    def _check_authenticity(
        self,
        responses: Sequence[ReadbackResponse],
        tag: bytes,
        expected_tag: Optional[bytes] = None,
    ) -> bool:
        """H_Prv == H_Vrf.  Subclasses may substitute another mechanism
        (e.g. the Section-8 signature extension)."""
        if expected_tag is None:
            expected_tag = self.expected_mac(responses)
        return hmac.compare_digest(expected_tag, tag)

    # -- masked-readback variant (Section 6.1 alternative) --------------------

    def masked_readback_commands(
        self, plan: Sequence[int]
    ) -> List[IcapReadbackMaskedCommand]:
        """The ``ICAP_readback(frame, Msk)`` commands of the variant."""
        mask = self.system.combined_mask()
        return [
            IcapReadbackMaskedCommand(
                frame_index=frame_index, mask=mask.frame_mask(frame_index)
            )
            for frame_index in plan
        ]

    def expected_masked_mac(self, nonce: bytes, plan: Sequence[int]) -> bytes:
        """MAC over the *masked golden* configuration in plan order."""
        golden = self.system.golden_memory(nonce)
        mask = self.system.combined_mask()
        mac = AesCmac(self._key)
        from repro.perf import get_config

        if get_config().frame_fastpath:
            indices = np.asarray(plan, dtype=np.intp)
            masked = mask.apply_to_sweep(golden.frames_array()[indices], plan)
            mac.update(masked.astype(">u4").tobytes())
        else:
            for frame_index in plan:
                mac.update(
                    mask.apply_to_frame(frame_index, golden.read_frame(frame_index))
                )
        return mac.finalize()

    def evaluate_masked(
        self, nonce: bytes, plan: Sequence[int], tag: bytes
    ) -> AttestationReport:
        """The variant's verdict: one comparison carries both checks.

        Because the prover masks before MACing, a matching tag proves
        both origin *and* configuration correctness — but a mismatch can
        no longer be localized to frames (nothing was sent back), the
        variant's trade-off.
        """
        report = AttestationReport(
            mac_valid=False,
            config_match=False,
            nonce=nonce,
            readback_steps=len(plan),
        )
        matched = hmac.compare_digest(self.expected_masked_mac(nonce, plan), tag)
        report.mac_valid = matched
        report.config_match = matched
        if not matched:
            report.failure_reason = (
                "masked-readback MAC mismatch (no frame localization "
                "available in this variant)"
            )
        _observe_verdict(report)
        return report

    def evaluate(
        self,
        nonce: bytes,
        plan: Sequence[int],
        responses: Sequence[ReadbackResponse],
        tag: bytes,
        expected_tag: Optional[bytes] = None,
    ) -> AttestationReport:
        """The two comparisons of Figure 9 plus policy checks.

        ``expected_tag`` is the incrementally folded H_Vrf from a
        :meth:`mac_stream` accumulator, when the transport streamed the
        sweep; without it the MAC is recomputed from ``responses``.
        """
        report = AttestationReport(
            mac_valid=False,
            config_match=False,
            nonce=nonce,
            readback_steps=len(responses),
        )

        if len(responses) != len(plan):
            report.failure_reason = (
                f"expected {len(plan)} readback responses, got {len(responses)}"
            )
            _observe_verdict(report)
            return report
        if self._policy.require_frame_echo:
            for requested, response in zip(plan, responses):
                if response.frame_index != requested:
                    report.failure_reason = (
                        f"prover answered frame {response.frame_index} "
                        f"when frame {requested} was requested"
                    )
                    _observe_verdict(report)
                    return report

        # Check 1: H_Prv == H_Vrf over the received data.
        report.mac_valid = self._check_authenticity(responses, tag, expected_tag)

        # Check 2: masked received configuration == masked golden.  In
        # live-state mode (Section 8 future work) the received data stays
        # unmasked — the register state is attested too — and the golden
        # side carries the *expected* state (reset values, i.e. masked
        # positions cleared).  A running application whose registers have
        # drifted from the expected state therefore fails, which is why
        # the extension needs expected-state tracking.
        golden = self.system.golden_memory(nonce)
        mask = self.system.combined_mask()
        from repro.perf import get_config

        if get_config().frame_fastpath:
            mismatched = self._mismatched_frames_vectorized(
                golden, mask, responses
            )
        else:
            mismatched = []
            for response in responses:
                expected = mask.apply_to_frame(
                    response.frame_index, golden.read_frame(response.frame_index)
                )
                received = response.data
                if not self.attest_live_state:
                    received = mask.apply_to_frame(response.frame_index, received)
                if expected != received and response.frame_index not in mismatched:
                    mismatched.append(response.frame_index)
        report.mismatched_frames = sorted(set(mismatched))
        report.config_match = not mismatched
        _observe_verdict(report)
        return report

    def _mismatched_frames_vectorized(
        self,
        golden: ConfigurationMemory,
        mask: MaskFile,
        responses: Sequence[ReadbackResponse],
    ) -> List[int]:
        """Frame indices whose masked readback differs from the golden.

        One vectorized pass over the whole sweep: received frames are
        joined into a ``(n, words_per_frame)`` big-endian array, golden
        rows gathered by index, both masked with the cached keep bits,
        and the row-wise comparison yields the mismatch set — identical
        semantics to the per-frame loop.
        """
        if not responses:
            return []
        words_per_frame = self.system.device.words_per_frame
        plan_indices = [response.frame_index for response in responses]
        received = np.frombuffer(
            b"".join(response.data for response in responses), dtype=">u4"
        ).reshape(len(responses), words_per_frame)
        indices = np.asarray(plan_indices, dtype=np.intp)
        expected = mask.apply_to_sweep(golden.frames_array()[indices], plan_indices)
        if not self.attest_live_state:
            received = mask.apply_to_sweep(received, plan_indices)
        rows = np.nonzero(np.any(expected != received, axis=1))[0]
        return [plan_indices[row] for row in rows]
