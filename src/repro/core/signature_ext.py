"""The signature extension of Section 8.

"Another possible extension is to add a signature mechanism to the
system when it is not possible to exchange a secret key between the
prover and the verifier before deployment."

Instead of AES-CMAC under a pre-shared key, the prover hashes the
readback stream incrementally and signs the digest with a Schnorr key
derived from its PUF secret.  Only the *public* key leaves the device —
it can be published or certified, so verifier and prover need no shared
secret, and any third party can verify an attestation transcript.

The protocol shape is unchanged: the same three commands, the same
Init/Update/Finalize structure (the signature replaces the MAC tag in
the ``MAC_checksum`` response, at 288 instead of 16 bytes).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from repro.crypto.schnorr import (
    SchnorrKeyPair,
    SchnorrPublicKey,
    SchnorrSignature,
    keypair_from_seed,
    sign,
    verify,
)
from repro.crypto.sha256 import Sha256
from repro.core.orders import ReadbackOrder
from repro.core.prover import ChecksumEngine, KeyProvider, SachaProver
from repro.core.verifier import SachaVerifier, VerifierPolicy
from repro.design.sacha_design import SachaSystemDesign
from repro.errors import ProvisioningError
from repro.fpga.board import Board
from repro.net.messages import ReadbackResponse
from repro.utils.rng import DeterministicRng

if TYPE_CHECKING:
    from repro.core.provisioning import ProvisionedDevice, VerifierRecord

SIGNATURE_DOMAIN = b"sacha/signature-ext/v1"


class SigningEngine(ChecksumEngine):
    """Incremental digest, signed on finalize."""

    def __init__(self, keypair: SchnorrKeyPair) -> None:
        self._keypair = keypair
        self._digest = Sha256().update(SIGNATURE_DOMAIN)

    def update(self, data: bytes) -> None:
        self._digest.update(data)

    def finalize(self) -> bytes:
        return sign(self._keypair, self._digest.digest()).encode()


class SigningProver(SachaProver):
    """A prover whose checksum engine signs instead of MACing.

    ``key_provider`` supplies the PUF-derived device secret that seeds
    the signing keypair — exactly the role it plays for the MAC key, so
    the private key never exists outside the silicon either.
    """

    def __init__(
        self,
        board: Board,
        key_provider: KeyProvider,
        device_id: str = "prv-sig",
    ) -> None:
        super().__init__(board, key_provider, device_id=device_id)

    def _keypair(self) -> SchnorrKeyPair:
        return keypair_from_seed(self._key_provider.mac_key())

    def public_key(self) -> SchnorrPublicKey:
        """The verification key — safe to publish at provisioning time."""
        return self._keypair().public

    def _new_checksum(self) -> ChecksumEngine:
        return SigningEngine(self._keypair())


class SignatureVerifier(SachaVerifier):
    """Verifies a Schnorr signature over the readback digest.

    Holds only the prover's *public* key; the base key parameter is a
    placeholder (the MAC path is never exercised).
    """

    def __init__(
        self,
        system: SachaSystemDesign,
        public_key: SchnorrPublicKey,
        rng: DeterministicRng,
        order: Optional[ReadbackOrder] = None,
        policy: Optional[VerifierPolicy] = None,
    ) -> None:
        super().__init__(system, bytes(16), rng, order=order, policy=policy)
        self._public_key = public_key

    def mac_stream(self) -> None:
        """Signatures cannot be pre-folded into an expected tag: the
        check verifies the prover's signature over the digest instead of
        recomputing a shared-key MAC, so the pipelined session falls back
        to the full :meth:`_check_authenticity` pass."""
        return None

    def _check_authenticity(
        self,
        responses: Sequence[ReadbackResponse],
        tag: bytes,
        expected_tag: Optional[bytes] = None,
    ) -> bool:
        digest = Sha256().update(SIGNATURE_DOMAIN)
        for response in responses:
            digest.update(response.data)
        try:
            signature = SchnorrSignature.decode(tag)
        except ValueError:
            return False
        return verify(self._public_key, digest.digest(), signature)


def upgrade_to_signatures(
    provisioned: ProvisionedDevice, record: VerifierRecord
) -> Tuple[SigningProver, SchnorrPublicKey]:
    """Convert a provisioned (device, record) pair to signature mode.

    Returns ``(SigningProver, SchnorrPublicKey)``; the verifier should
    be built with :class:`SignatureVerifier` and the public key.  The
    verifier record's MAC key becomes unnecessary — deployment no longer
    needs a confidential provisioning channel for key material.
    """
    if provisioned.key_provider is None:
        raise ProvisioningError("device has no key material to derive from")
    prover = SigningProver(
        provisioned.board,
        provisioned.key_provider,
        device_id=provisioned.device_id,
    )
    return prover, prover.public_key()
