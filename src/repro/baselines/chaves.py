"""On-the-fly bitstream-hash attestation (Chaves et al., reference [23]).

An attestation core *inside the FPGA* hashes every partial bitstream as
it is being loaded and reports the hash, so the verifier learns what was
configured.  The scheme's two assumptions, which SACHa removes:

1. the attestation core itself is tamper-proof;
2. partial updates can only land in a predetermined restricted region.

The model exposes both: with ``core_intact=True`` the scheme works; if
the adversary tampers the configuration memory holding the attestation
core (which a real config memory permits), the core can lie and every
check passes while the device runs malicious logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.sha256 import sha256
from repro.errors import ProtocolError
from repro.fpga.bitstream import Bitstream


@dataclass
class _LoadRecord:
    digest: bytes
    frame_count: int


class ChavesAttestor:
    """The in-FPGA attestation core.

    ``restricted_frames`` is the predetermined region partial updates may
    touch; loads outside it are refused (assumption 2).  Compromising the
    core (``compromise(fake_digest)``) makes it report attacker-chosen
    hashes — the scenario assumption 1 rules out by fiat.
    """

    def __init__(self, restricted_frames: Optional[set] = None) -> None:
        self._restricted = restricted_frames
        self._log: List[_LoadRecord] = []
        self._forged_digest: Optional[bytes] = None

    @property
    def core_intact(self) -> bool:
        return self._forged_digest is None

    def compromise(self, forged_digest: bytes) -> None:
        """Tamper the attestation core's own configuration."""
        if len(forged_digest) != 32:
            raise ProtocolError("forged digest must be 32 bytes")
        self._forged_digest = bytes(forged_digest)

    def observe_load(self, bitstream: Bitstream, target_frames: List[int]) -> bytes:
        """Hash a partial bitstream while it configures the device."""
        if self._restricted is not None and self.core_intact:
            outside = [f for f in target_frames if f not in self._restricted]
            if outside:
                raise ProtocolError(
                    f"partial update touches {len(outside)} frames outside "
                    "the restricted region"
                )
        digest = (
            self._forged_digest
            if self._forged_digest is not None
            else sha256(bitstream.to_bytes())
        )
        self._log.append(_LoadRecord(digest=digest, frame_count=len(target_frames)))
        return digest

    def report(self) -> List[bytes]:
        return [record.digest for record in self._log]


class ChavesVerifier:
    """Compares reported hashes against golden bitstream hashes."""

    def __init__(self, golden_bitstreams: List[Bitstream]) -> None:
        self._golden = [sha256(bs.to_bytes()) for bs in golden_bitstreams]

    def verify(self, reported: List[bytes]) -> bool:
        return reported == self._golden
