"""SWATT: software-based attestation via timed pseudorandom traversal.

SWATT (the paper's reference [6]) has the prover walk its memory in a
challenge-derived pseudorandom order, folding each read into a checksum.
Malware that wants to answer correctly must *redirect* reads that hit its
own location to a pristine copy, and the redirection check on every
access costs extra cycles — the verifier detects the compromise by the
response time, not the checksum.

The model counts cycles explicitly, which also demonstrates the scheme's
acknowledged weakness: it only works under strict timing assumptions
("unfeasible for real-world employment over a network" — Section 4.1),
whereas SACHa tolerates half a minute of network delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.sha256 import sha256
from repro.errors import ProtocolError

#: Cycle costs of the inner loop (calibrated to the SWATT paper's shape:
#: redirection adds a constant factor per access).
CYCLES_PER_ACCESS = 23
CYCLES_REDIRECTION_CHECK = 13


@dataclass(frozen=True)
class SwattResult:
    checksum: bytes
    cycles: int
    iterations: int


class SwattProver:
    """A device running the SWATT checksum routine.

    ``malware_range`` marks bytes the malware occupies; the original
    content of that range is kept in a hidden copy so the checksum still
    comes out right — at the price of the per-access redirection cycles.
    """

    def __init__(
        self, memory: bytes, malware_range: Optional[Tuple[int, int]] = None
    ) -> None:
        if not memory:
            raise ProtocolError("SWATT needs non-empty memory")
        self._memory = bytearray(memory)
        self._pristine = bytes(memory)
        self._malware_range = malware_range
        if malware_range is not None:
            start, end = malware_range
            if not 0 <= start < end <= len(memory):
                raise ProtocolError(f"malware range {malware_range} out of bounds")
            # The malware body overwrites its range; the pristine copy is
            # what redirected reads return.
            for index in range(start, end):
                self._memory[index] ^= 0xA5

    @property
    def compromised(self) -> bool:
        return self._malware_range is not None

    def respond(self, challenge: bytes, iterations: int) -> SwattResult:
        """Run the timed checksum loop."""
        if iterations <= 0:
            raise ProtocolError(f"iterations must be positive, got {iterations}")
        size = len(self._memory)
        state = sha256(challenge)
        checksum = bytearray(16)
        cycles = 0
        for step in range(iterations):
            if step % 8 == 0:
                state = sha256(state + challenge)
            address = (
                int.from_bytes(state[(step % 8) * 4 : (step % 8) * 4 + 4], "big")
                % size
            )
            cycles += CYCLES_PER_ACCESS
            if self._malware_range is not None:
                cycles += CYCLES_REDIRECTION_CHECK
                start, end = self._malware_range
                value = (
                    self._pristine[address]
                    if start <= address < end
                    else self._memory[address]
                )
            else:
                value = self._memory[address]
            checksum[step % 16] ^= value ^ state[step % 32]
        return SwattResult(
            checksum=bytes(checksum), cycles=cycles, iterations=iterations
        )


class SwattVerifier:
    """Checks both the checksum and the response time."""

    def __init__(self, memory: bytes, timing_slack: float = 1.05) -> None:
        if timing_slack < 1.0:
            raise ProtocolError(
                f"timing slack must be >= 1, got {timing_slack}"
            )
        self._reference = SwattProver(memory)
        self._timing_slack = timing_slack

    def expected(self, challenge: bytes, iterations: int) -> SwattResult:
        return self._reference.respond(challenge, iterations)

    def verify(self, challenge: bytes, iterations: int, result: SwattResult) -> bool:
        expected = self.expected(challenge, iterations)
        checksum_ok = expected.checksum == result.checksum
        cycle_budget = expected.cycles * self._timing_slack
        timing_ok = result.cycles <= cycle_budget
        return checksum_ok and timing_ok

    def verify_without_timing(
        self, challenge: bytes, iterations: int, result: SwattResult
    ) -> bool:
        """The networked deployment: timing unusable, checksum only.

        This is exactly why SWATT fails over a network — the redirecting
        malware passes this check.
        """
        return self.expected(challenge, iterations).checksum == result.checksum
