"""Baseline attestation schemes the paper builds on or compares against.

* ``mcu`` / ``pose`` — the Perito–Tsudik bounded-memory model on an
  embedded processor: proofs of secure erasure and secure code update
  (the paper's reference [1], the inspiration for SACHa);
* ``swatt`` — SWATT, timing-based software attestation ([6]);
* ``smart`` — SMART, the minimal hybrid root of trust ([10]): ROM
  attestation routine + execution-aware key access control;
* ``chaves`` — on-the-fly bitstream-hash attestation with a trusted
  attestation core ([23]);
* ``drimer_kuhn`` — secure remote update with tamper-proof configuration
  memory ([20]).

The last two are the prior FPGA-attestation schemes whose assumptions
SACHa removes; the comparison benchmark (E9) shows where each breaks.
"""

from repro.baselines.chaves import ChavesAttestor, ChavesVerifier
from repro.baselines.drimer_kuhn import DrimerKuhnDevice, DrimerKuhnVerifier
from repro.baselines.mcu import BoundedMemoryMcu, ResidentMalware
from repro.baselines.smart import SmartMcu, SmartVerifier
from repro.baselines.pose import (
    PoseResult,
    proof_of_secure_erasure,
    secure_code_update,
)
from repro.baselines.swatt import SwattProver, SwattResult, SwattVerifier

__all__ = [
    "ChavesAttestor",
    "ChavesVerifier",
    "DrimerKuhnDevice",
    "DrimerKuhnVerifier",
    "BoundedMemoryMcu",
    "ResidentMalware",
    "PoseResult",
    "proof_of_secure_erasure",
    "secure_code_update",
    "SmartMcu",
    "SmartVerifier",
    "SwattProver",
    "SwattResult",
    "SwattVerifier",
]
