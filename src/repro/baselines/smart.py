"""SMART: a minimal hybrid root of trust (the paper's reference [10]).

Section 4.2 surveys hybrid schemes; SMART (El Defrawy et al.) is the
archetype: a low-end MCU with two minimal hardware changes —

* the attestation routine lives in immutable ROM;
* the attestation key is readable **only while the program counter is
  inside that ROM region** (execution-aware memory access control) and
  the ROM is only enterable at its first instruction.

This model executes that access-control discipline: software (including
malware) can call the attestation routine and gets correct MACs, but
any attempt to *read the key* from outside the ROM — or to jump into
the middle of the routine — is blocked by the hardware.  In the
comparison matrix it slots between pure-software schemes (SWATT) and
SACHa: it defeats key extraction, but it is a *processor* architecture —
it has no answer to the FPGA problem, where the "ROM" itself would be
reconfigurable fabric (the paper's core observation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.crypto.cmac import AesCmac
from repro.errors import ProtocolError

#: Memory-map constants of the model.
ROM_BASE = 0xF000
ROM_SIZE = 0x0400
KEY_ADDRESS = 0xFF00


@dataclass(frozen=True)
class AccessViolation:
    """A blocked access, as the hardware monitor records it."""

    program_counter: int
    target: int
    reason: str


class SmartMcu:
    """An MCU with SMART's execution-aware key protection."""

    def __init__(self, ram_bytes: int, key: bytes) -> None:
        if ram_bytes <= 0:
            raise ProtocolError(f"RAM size must be positive, got {ram_bytes}")
        if len(key) != 16:
            raise ProtocolError(f"key must be 16 bytes, got {len(key)}")
        self.ram = bytearray(ram_bytes)
        self._key = bytes(key)
        self._program_counter = 0
        self.violations: List[AccessViolation] = []

    # -- execution model -------------------------------------------------------

    @property
    def program_counter(self) -> int:
        return self._program_counter

    def _in_rom(self, address: int) -> bool:
        return ROM_BASE <= address < ROM_BASE + ROM_SIZE

    def jump(self, address: int) -> None:
        """Software branches; entry into ROM only at its first address.

        Jumping into the middle of the ROM routine (to skip checks and
        land on the key-reading instructions) is blocked — SMART's
        controlled-invocation rule.
        """
        if self._in_rom(address) and address != ROM_BASE:
            self.violations.append(
                AccessViolation(
                    program_counter=self._program_counter,
                    target=address,
                    reason="ROM entry not at the first instruction",
                )
            )
            raise ProtocolError(
                "controlled invocation violated: ROM is only enterable at "
                f"{ROM_BASE:#06x}"
            )
        self._program_counter = address

    def read_key(self) -> bytes:
        """The key bus: readable only while executing inside the ROM."""
        if not self._in_rom(self._program_counter):
            self.violations.append(
                AccessViolation(
                    program_counter=self._program_counter,
                    target=KEY_ADDRESS,
                    reason="key read from outside the ROM region",
                )
            )
            raise ProtocolError(
                "execution-aware access control: the attestation key is "
                "only readable from ROM code"
            )
        return self._key

    # -- the ROM attestation routine ---------------------------------------------

    def rom_attest(self, nonce: bytes, start: int = 0, length: Optional[int] = None) -> bytes:
        """The immutable attestation routine: MAC over a memory range.

        Callable by anyone (controlled invocation), including malware —
        which is fine: the malware obtains a *correct* MAC over memory
        that includes itself, which is exactly what convicts it.
        """
        self.jump(ROM_BASE)
        try:
            key = self.read_key()
            if length is None:
                length = len(self.ram) - start
            if start < 0 or start + length > len(self.ram):
                raise ProtocolError("attestation range outside RAM")
            mac = AesCmac(key)
            mac.update(nonce)
            mac.update(bytes(self.ram[start : start + length]))
            return mac.finalize()
        finally:
            self.jump(0)  # return to application code

    # -- software actions ------------------------------------------------------------

    def software_write(self, offset: int, data: bytes) -> None:
        """Normal (or malicious) software writes to RAM."""
        if offset < 0 or offset + len(data) > len(self.ram):
            raise ProtocolError("write outside RAM")
        self.ram[offset : offset + len(data)] = data

    def malware_try_key_exfiltration(self) -> bytes:
        """Malware running as normal software tries to read the key."""
        return self.read_key()  # PC is outside ROM → blocked


class SmartVerifier:
    """The remote verifier of the SMART scheme."""

    def __init__(self, key: bytes, expected_image: bytes, ram_bytes: int) -> None:
        self._key = bytes(key)
        self._expected = bytes(expected_image) + bytes(
            ram_bytes - len(expected_image)
        )

    def expected_mac(self, nonce: bytes) -> bytes:
        mac = AesCmac(self._key)
        mac.update(nonce)
        mac.update(self._expected)
        return mac.finalize()

    def verify(self, nonce: bytes, received: bytes) -> bool:
        return received == self.expected_mac(nonce)
