"""Secure remote FPGA updates (Drimer & Kuhn, reference [20]).

The protocol authenticates *updates*: the new bitstream lives in an
external non-volatile memory, update messages carry MACs and version
numbers, and the device attests "the running configuration and the
status of the upload process" through authenticated status responses.
Its key assumption — removed by SACHa — is a tamper-proof configuration
memory: the scheme verifies what was *uploaded*, not what the
configuration memory *currently contains*.

The model runs the update protocol faithfully and then demonstrates the
gap: an adversary who flips configuration-memory bits directly (without
going through the update protocol) still produces valid status
responses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crypto.cmac import aes_cmac
from repro.errors import ProtocolError
from repro.fpga.config_memory import ConfigurationMemory
from repro.fpga.device import DevicePart


@dataclass(frozen=True)
class UpdateMessage:
    """One authenticated update: payload, version, MAC."""

    version: int
    payload: bytes
    tag: bytes


def make_update(key: bytes, version: int, payload: bytes) -> UpdateMessage:
    tag = aes_cmac(key, version.to_bytes(4, "big") + payload)
    return UpdateMessage(version=version, payload=payload, tag=tag)


class DrimerKuhnDevice:
    """A device implementing the secure-update protocol."""

    def __init__(self, device: DevicePart, key: bytes) -> None:
        self._device = device
        self._key = bytes(key)
        self.memory = ConfigurationMemory(device)
        self.nvm: Optional[bytes] = None  # external bitstream storage
        self.version = 0

    def apply_update(self, update: UpdateMessage) -> bool:
        """Verify and install an update (into NVM, then config memory)."""
        expected = aes_cmac(
            self._key, update.version.to_bytes(4, "big") + update.payload
        )
        if expected != update.tag:
            return False
        if update.version <= self.version:
            return False  # replay / rollback refused
        if len(update.payload) != self._device.configuration_bytes():
            raise ProtocolError(
                f"update payload must be a full configuration image "
                f"({self._device.configuration_bytes()} bytes)"
            )
        self.nvm = update.payload
        self.memory.load_snapshot(update.payload)
        self.version = update.version
        return True

    def status_response(self, nonce: bytes) -> bytes:
        """Authenticated status: MAC over (nonce, version).

        This is the crux: the response covers the upload log, **not** the
        configuration memory content — the tamper-proof-memory assumption
        is what makes that sufficient in [20].
        """
        return aes_cmac(self._key, nonce + self.version.to_bytes(4, "big"))


class DrimerKuhnVerifier:
    """Verifier for the update + status protocol."""

    def __init__(self, key: bytes) -> None:
        self._key = bytes(key)
        self.expected_version = 0

    def push_update(
        self, device: DrimerKuhnDevice, version: int, payload: bytes
    ) -> bool:
        accepted = device.apply_update(make_update(self._key, version, payload))
        if accepted:
            self.expected_version = version
        return accepted

    def attest(self, device: DrimerKuhnDevice, nonce: bytes) -> bool:
        """True when the device reports the expected upload status."""
        expected = aes_cmac(
            self._key, nonce + self.expected_version.to_bytes(4, "big")
        )
        return device.status_response(nonce) == expected
