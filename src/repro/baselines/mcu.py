"""A bounded-memory embedded processor (the Perito–Tsudik platform).

The device has a fixed amount of writable memory and a small immutable
ROM routine that (1) receives data and writes it to memory and (2)
computes a keyed checksum of the whole memory and sends it back — exactly
the platform assumed in the paper's reference [1] and summarized in
Section 2.2.  Unlike an FPGA, the ROM really is immutable here; SACHa's
whole point is that FPGAs have no such ROM.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.cmac import AesCmac
from repro.errors import ProtocolError


class ResidentMalware:
    """Malware occupying part of the device's memory.

    To survive a memory-filling update it must keep its own ``body``
    somewhere in RAM; the bounded-memory model leaves it nowhere to put
    the verifier's data it displaces.
    """

    def __init__(self, offset: int, body: bytes) -> None:
        if offset < 0:
            raise ValueError(f"malware offset must be non-negative, got {offset}")
        if not body:
            raise ValueError("malware body cannot be empty")
        self.offset = offset
        self.body = bytes(body)

    @property
    def size(self) -> int:
        return len(self.body)


class BoundedMemoryMcu:
    """The prover device of the proof-of-secure-erasure protocol."""

    def __init__(
        self,
        ram_bytes: int,
        key: bytes,
        malware: Optional[ResidentMalware] = None,
    ) -> None:
        if ram_bytes <= 0:
            raise ValueError(f"RAM size must be positive, got {ram_bytes}")
        if len(key) != 16:
            raise ValueError(f"MCU key must be 16 bytes, got {len(key)}")
        self.ram_bytes = ram_bytes
        self._ram = bytearray(ram_bytes)
        self._key = bytes(key)
        self._malware = malware
        if malware is not None:
            if malware.offset + malware.size > ram_bytes:
                raise ValueError("malware does not fit in RAM")
            self._ram[malware.offset : malware.offset + malware.size] = malware.body

    @property
    def infected(self) -> bool:
        return self._malware is not None

    # -- ROM routine 1: receive and write ------------------------------------

    def rom_write(self, offset: int, data: bytes) -> None:
        """The immutable receive-and-write routine.

        An infected device *cannot* let the write erase the malware body,
        or the malware is gone (which, from the verifier's point of view,
        is success).  The model therefore makes the malware skip writes
        that overlap it — the only survival strategy the bounded memory
        leaves.
        """
        if offset < 0 or offset + len(data) > self.ram_bytes:
            raise ProtocolError(
                f"write [{offset}, {offset + len(data)}) outside RAM "
                f"of {self.ram_bytes} bytes"
            )
        self._ram[offset : offset + len(data)] = data
        if self._malware is not None:
            start = self._malware.offset
            end = start + self._malware.size
            self._ram[start:end] = self._malware.body

    # -- ROM routine 2: checksum ---------------------------------------------

    def rom_checksum(self, nonce: bytes) -> bytes:
        """MAC_K(nonce ‖ whole RAM) — the proof of erasure."""
        mac = AesCmac(self._key)
        mac.update(nonce)
        mac.update(bytes(self._ram))
        return mac.finalize()

    def read_ram(self) -> bytes:
        """Debug/verification view of the memory (not part of the ROM API)."""
        return bytes(self._ram)
