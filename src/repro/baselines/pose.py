"""Proofs of secure erasure and secure code update (Perito–Tsudik).

The verifier fills the device's *entire* bounded memory — with
randomness (erasure proof) or with new code (secure update) — then asks
for a keyed checksum of the whole memory.  A correct checksum implies no
prior content (malware included) survived, because there was nowhere for
it to live.  SACHa transplants exactly this argument to the FPGA's
configuration memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.mcu import BoundedMemoryMcu
from repro.crypto.cmac import AesCmac
from repro.crypto.prf import prf_bytes
from repro.utils.rng import DeterministicRng

#: Transfer granularity of the fill phase (bytes per message).
CHUNK_BYTES = 256


@dataclass(frozen=True)
class PoseResult:
    """Outcome of one proof-of-secure-erasure run."""

    accepted: bool
    chunks_sent: int
    memory_bytes: int

    def explain(self) -> str:
        verdict = "erased/updated" if self.accepted else "STALE CONTENT DETECTED"
        return (
            f"{verdict}: {self.memory_bytes} bytes filled in "
            f"{self.chunks_sent} chunks"
        )


def _run_fill_and_check(
    device: BoundedMemoryMcu, fill: bytes, key: bytes, nonce: bytes
) -> PoseResult:
    chunks = 0
    for offset in range(0, len(fill), CHUNK_BYTES):
        device.rom_write(offset, fill[offset : offset + CHUNK_BYTES])
        chunks += 1

    received = device.rom_checksum(nonce)
    expected_mac = AesCmac(key)
    expected_mac.update(nonce)
    expected_mac.update(fill)
    accepted = received == expected_mac.finalize()
    return PoseResult(
        accepted=accepted, chunks_sent=chunks, memory_bytes=len(fill)
    )


def proof_of_secure_erasure(
    device: BoundedMemoryMcu, key: bytes, rng: DeterministicRng
) -> PoseResult:
    """Fill the whole memory with verifier randomness, then check.

    Acceptance proves the memory holds exactly the randomness — i.e.
    everything that was there before is erased.
    """
    nonce = rng.randbytes(16)
    fill = rng.randbytes(device.ram_bytes)
    return _run_fill_and_check(device, fill, key, nonce)


def secure_code_update(
    device: BoundedMemoryMcu,
    key: bytes,
    rng: DeterministicRng,
    code: bytes,
) -> PoseResult:
    """Send new code padded with keyed filler to the full memory size.

    The code goes first; the rest of the memory is filled with
    pseudorandom padding derived from the nonce, so no region is left for
    old content to hide in.  Acceptance proves the device now runs
    exactly ``code``.
    """
    if len(code) > device.ram_bytes:
        raise ValueError(
            f"code of {len(code)} bytes exceeds device memory "
            f"of {device.ram_bytes}"
        )
    nonce = rng.randbytes(16)
    padding = prf_bytes(key, nonce[:8], device.ram_bytes - len(code))
    fill = code + padding
    return _run_fill_and_check(device, fill, key, nonce)
