"""Gigabit Ethernet PHY timing model.

One byte per cycle of the 125 MHz RX/TX clocks — i.e. 8 ns per byte time,
1 Gb/s.  The PHY converts frame sizes into serialization durations; the
channel adds propagation/stack latency on top.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.ethernet import EthernetFrame

GIGABIT_NS_PER_BYTE = 8.0


@dataclass(frozen=True)
class GigabitPhy:
    """Serialization timing of a (Gigabit by default) Ethernet PHY."""

    ns_per_byte: float = GIGABIT_NS_PER_BYTE

    def serialization_ns(self, frame: EthernetFrame) -> float:
        """Time to clock one frame (incl. preamble and IFG) onto the wire."""
        return frame.wire_bytes() * self.ns_per_byte

    def throughput_bits_per_s(self) -> float:
        return 8e9 / self.ns_per_byte
