"""MTU-aware batch packing for the pipelined attestation hot path.

The stop-and-wait protocol moves one Python message object per frame:
28,488 readback commands, 28,488 responses and one ACK for each on a
XC6VLX240T.  This module sizes and builds the batched equivalents —
each carrying as many frames as fit one Ethernet payload after the ARQ
layer's 9-byte framing — so the wire path is bounded by throughput, not
by per-message overhead.

Capacity math is explicit and testable: every helper takes the channel
MTU (``repro.net.ethernet.MAX_PAYLOAD`` by default) and subtracts the
ARQ and message headers, so changing either layer cannot silently
produce over-MTU frames.  Index vectors travel as packed big-endian
``>u4`` arrays (built by numpy, no per-index Python loop).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import WireFormatError
from repro.net.arq import ARQ_OVERHEAD_BYTES
from repro.net.ethernet import MAX_PAYLOAD
from repro.net.messages import (
    IcapConfigBatchCommand,
    IcapConfigCommand,
    IcapReadbackBatchCommand,
    ReadbackBatchResponse,
)

#: opcode(1) + base_slot(4) + count(2)
READBACK_BATCH_HEADER_BYTES = 7
#: opcode(1) + count(2) ... + length(4); the per-frame cost adds 4 index bytes.
CONFIG_BATCH_HEADER_BYTES = 7
#: opcode(1) + base_slot(4) + count(2) + length(4)
BATCH_RESPONSE_HEADER_BYTES = 11


def arq_payload_capacity(max_payload: int = MAX_PAYLOAD) -> int:
    """Usable message bytes per Ethernet payload under the ARQ framing."""
    capacity = max_payload - ARQ_OVERHEAD_BYTES
    if capacity <= BATCH_RESPONSE_HEADER_BYTES:
        raise WireFormatError(
            f"MTU {max_payload} leaves no room for batch messages under "
            f"the {ARQ_OVERHEAD_BYTES}-byte ARQ framing"
        )
    return capacity


def max_readback_indices(max_payload: int = MAX_PAYLOAD) -> int:
    """Frame indices per ``IcapReadbackBatchCommand`` payload."""
    return (arq_payload_capacity(max_payload) - READBACK_BATCH_HEADER_BYTES) // 4


def frames_per_response_fragment(
    frame_bytes: int, max_payload: int = MAX_PAYLOAD
) -> int:
    """Frames per ``ReadbackBatchResponse`` fragment (at least 1)."""
    if frame_bytes <= 0:
        raise WireFormatError(f"frame size must be positive, got {frame_bytes}")
    capacity = arq_payload_capacity(max_payload) - BATCH_RESPONSE_HEADER_BYTES
    return max(1, capacity // frame_bytes)


def frames_per_config_batch(frame_bytes: int, max_payload: int = MAX_PAYLOAD) -> int:
    """Frames per ``IcapConfigBatchCommand`` (index + content per frame)."""
    if frame_bytes <= 0:
        raise WireFormatError(f"frame size must be positive, got {frame_bytes}")
    capacity = arq_payload_capacity(max_payload) - CONFIG_BATCH_HEADER_BYTES
    return max(1, capacity // (frame_bytes + 4))


def pack_readback_plan(
    plan: Sequence[int],
    batch_frames: int,
    max_payload: int = MAX_PAYLOAD,
) -> List[IcapReadbackBatchCommand]:
    """Split a readback plan into batch commands of ``batch_frames`` each.

    The requested batch size is clamped to what one payload can carry;
    ``base_slot`` tracks the plan position so the verifier can reassemble
    responses in plan order without echoed indices.
    """
    if batch_frames < 1:
        raise WireFormatError(f"batch size must be >= 1, got {batch_frames}")
    per_command = min(batch_frames, max_readback_indices(max_payload), 0xFFFF)
    indices = np.asarray(plan, dtype=np.int64)
    commands: List[IcapReadbackBatchCommand] = []
    for start in range(0, len(indices), per_command):
        chunk = indices[start : start + per_command]
        commands.append(
            IcapReadbackBatchCommand(
                base_slot=start,
                frame_indices=tuple(int(i) for i in chunk),
            )
        )
    return commands


def pack_config_commands(
    commands: Sequence[IcapConfigCommand],
    max_payload: int = MAX_PAYLOAD,
) -> List[IcapConfigBatchCommand]:
    """Coalesce per-frame config commands into MTU-sized batches.

    Frame order is preserved exactly — configuration is order-sensitive
    (the nonce frames follow the application frames).  All frames of one
    batch must be equally sized, which holds for any single device.
    """
    if not commands:
        return []
    frame_bytes = len(commands[0].data)
    for command in commands:
        if len(command.data) != frame_bytes:
            raise WireFormatError(
                f"config batch needs equal-sized frames: "
                f"{len(command.data)} != {frame_bytes}"
            )
    per_batch = min(frames_per_config_batch(frame_bytes, max_payload), 0xFFFF)
    batches: List[IcapConfigBatchCommand] = []
    for start in range(0, len(commands), per_batch):
        chunk = commands[start : start + per_batch]
        batches.append(
            IcapConfigBatchCommand(
                frame_indices=tuple(c.frame_index for c in chunk),
                data=b"".join(c.data for c in chunk),
            )
        )
    return batches


def fragment_readback_data(
    base_slot: int,
    data: bytes,
    frame_bytes: int,
    max_payload: int = MAX_PAYLOAD,
) -> List[ReadbackBatchResponse]:
    """Split one batch's readback buffer into MTU-sized response fragments.

    ``data`` is a zero-copy view candidate — fragments slice it without
    re-joining.  Fragment ``base_slot`` values continue the plan-position
    numbering of the command they answer.
    """
    if frame_bytes <= 0 or len(data) % frame_bytes:
        raise WireFormatError(
            f"readback buffer of {len(data)} bytes does not split into "
            f"{frame_bytes}-byte frames"
        )
    total_frames = len(data) // frame_bytes
    per_fragment = frames_per_response_fragment(frame_bytes, max_payload)
    view = memoryview(data)
    fragments: List[ReadbackBatchResponse] = []
    for start in range(0, total_frames, per_fragment):
        count = min(per_fragment, total_frames - start)
        fragments.append(
            ReadbackBatchResponse(
                base_slot=base_slot + start,
                frame_count=count,
                data=bytes(
                    view[start * frame_bytes : (start + count) * frame_bytes]
                ),
            )
        )
    return fragments


def contiguous_runs(indices: Sequence[int]) -> List[range]:
    """Maximal runs of consecutive frame indices, vectorized.

    The default readback plan is an offset sweep — one or two contiguous
    runs per batch — so the prover can serve a batch with a handful of
    bulk ICAP range reads instead of per-frame gathers.
    """
    if not len(indices):
        return []
    array = np.asarray(indices, dtype=np.int64)
    breaks = np.nonzero(np.diff(array) != 1)[0] + 1
    starts = np.concatenate(([0], breaks))
    ends = np.concatenate((breaks, [len(array)]))
    return [
        range(int(array[s]), int(array[s]) + int(e - s))
        for s, e in zip(starts, ends)
    ]
