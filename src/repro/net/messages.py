"""SACHa wire format.

Three commands travel verifier → prover (Section 6.1 of the paper):

1. ``ICAP_config(frame)`` — frame address + frame content to write;
2. ``ICAP_readback(frame_nb)`` — address of a frame to read back and fold
   into the MAC;
3. ``MAC_checksum`` — finalize the MAC and return the tag.

Two responses travel prover → verifier: the frame content for each
readback, and the final MAC tag.  A *cumulative* ``ConfigAck`` confirms
configuration progress: one ack per batched config command, carrying
the total number of frames applied so far in the run — the return path
costs one frame per batch instead of one per config frame, mirroring
how the ARQ's solicited cumulative ACKs trim the forward path.  The
paper's lockstep protocol fire-and-forgets per-frame configuration
commands and sends no acks, keeping that wire sequence byte-identical.

Every message is self-delimiting: 1 opcode byte, fixed-size fields, and a
2-byte length prefix before variable data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.errors import WireFormatError

OPCODE_ICAP_CONFIG = 0x01
OPCODE_ICAP_READBACK = 0x02
OPCODE_MAC_CHECKSUM = 0x03
OPCODE_ICAP_READBACK_MASKED = 0x04
OPCODE_ICAP_READBACK_RANGE = 0x05
OPCODE_ICAP_READBACK_BATCH = 0x06
OPCODE_ICAP_CONFIG_BATCH = 0x07
OPCODE_TRACE_HELLO = 0x08
OPCODE_CONFIG_ACK = 0x80
OPCODE_READBACK_RESPONSE = 0x81
OPCODE_MAC_RESPONSE = 0x82
OPCODE_MASKED_READBACK_ACK = 0x83
OPCODE_READBACK_RANGE_RESPONSE = 0x84
OPCODE_READBACK_BATCH_RESPONSE = 0x85

_OPCODE_NAMES = {
    OPCODE_ICAP_CONFIG: "ICAP_config",
    OPCODE_ICAP_READBACK: "ICAP_readback",
    OPCODE_MAC_CHECKSUM: "MAC_checksum",
    OPCODE_ICAP_READBACK_MASKED: "ICAP_readback_masked",
    OPCODE_ICAP_READBACK_RANGE: "ICAP_readback_range",
    OPCODE_ICAP_READBACK_BATCH: "ICAP_readback_batch",
    OPCODE_ICAP_CONFIG_BATCH: "ICAP_config_batch",
    OPCODE_TRACE_HELLO: "TraceHello",
    OPCODE_CONFIG_ACK: "ConfigAck",
    OPCODE_READBACK_RESPONSE: "ReadbackResponse",
    OPCODE_MAC_RESPONSE: "MacChecksumResponse",
    OPCODE_MASKED_READBACK_ACK: "MaskedReadbackAck",
    OPCODE_READBACK_RANGE_RESPONSE: "ReadbackRangeResponse",
    OPCODE_READBACK_BATCH_RESPONSE: "ReadbackBatchResponse",
}


def _opcode_name(opcode: int) -> str:
    name = _OPCODE_NAMES.get(opcode, "unknown message")
    return f"{name} (opcode {opcode:#04x})"


def _encode_blob(data: bytes, opcode: int) -> bytes:
    if len(data) > 0xFFFF:
        raise WireFormatError(
            f"{_opcode_name(opcode)}: blob of {len(data)} bytes exceeds the "
            f"16-bit wire limit of {0xFFFF}"
        )
    return len(data).to_bytes(2, "big") + data


def _decode_blob(data: bytes, offset: int, opcode: int) -> tuple:
    if offset < 0:
        raise WireFormatError(
            f"{_opcode_name(opcode)}: negative blob offset {offset}"
        )
    if offset > len(data):
        raise WireFormatError(
            f"{_opcode_name(opcode)}: blob offset {offset} beyond the "
            f"{len(data)}-byte message"
        )
    if offset + 2 > len(data):
        raise WireFormatError(f"{_opcode_name(opcode)}: truncated length prefix")
    length = int.from_bytes(data[offset : offset + 2], "big")
    offset += 2
    if offset + length > len(data):
        raise WireFormatError(
            f"{_opcode_name(opcode)}: truncated blob: need {length} bytes, "
            f"have {len(data) - offset}"
        )
    return data[offset : offset + length], offset + length


@dataclass(frozen=True)
class IcapConfigCommand:
    """Write ``data`` to configuration-memory frame ``frame_index``."""

    frame_index: int
    data: bytes

    def encode(self) -> bytes:
        if self.frame_index < 0 or self.frame_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.frame_index} out of range")
        return (
            bytes([OPCODE_ICAP_CONFIG])
            + self.frame_index.to_bytes(4, "big")
            + _encode_blob(self.data, OPCODE_ICAP_CONFIG)
        )


@dataclass(frozen=True)
class IcapReadbackCommand:
    """Read configuration-memory frame ``frame_index`` back and MAC it."""

    frame_index: int

    def encode(self) -> bytes:
        if self.frame_index < 0 or self.frame_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.frame_index} out of range")
        return bytes([OPCODE_ICAP_READBACK]) + self.frame_index.to_bytes(4, "big")


@dataclass(frozen=True)
class MacChecksumCommand:
    """Finalize the MAC and return the tag."""

    def encode(self) -> bytes:
        return bytes([OPCODE_MAC_CHECKSUM])


@dataclass(frozen=True)
class IcapReadbackMaskedCommand:
    """The Section-6.1 alternative: readback with the Msk sent along.

    The prover applies the mask *before* the MAC step and does not send
    the frame content back — the mask travels Vrf → Prv instead of the
    frame travelling Prv → Vrf ("a similar communication latency").
    """

    frame_index: int
    mask: bytes

    def encode(self) -> bytes:
        if self.frame_index < 0 or self.frame_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.frame_index} out of range")
        return (
            bytes([OPCODE_ICAP_READBACK_MASKED])
            + self.frame_index.to_bytes(4, "big")
            + _encode_blob(self.mask, OPCODE_ICAP_READBACK_MASKED)
        )


@dataclass(frozen=True)
class IcapReadbackRangeCommand:
    """Batched readback: ``count`` consecutive frames from ``start_index``.

    A forward-looking optimization the E7 ablation motivates: the
    28,488 readback round trips dominate the networked duration, and
    contiguous plans batch naturally.  Responses above the Ethernet MTU
    are assumed fragmented/jumbo by the transport.
    """

    start_index: int
    count: int

    def encode(self) -> bytes:
        if self.start_index < 0 or self.start_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.start_index} out of range")
        if not 1 <= self.count <= 0xFFFF:
            raise WireFormatError(f"batch count {self.count} out of range")
        return (
            bytes([OPCODE_ICAP_READBACK_RANGE])
            + self.start_index.to_bytes(4, "big")
            + self.count.to_bytes(2, "big")
        )


def _check_indices(indices: "np.ndarray", opcode: int) -> None:
    if indices.size < 1 or indices.size > 0xFFFF:
        raise WireFormatError(
            f"{_opcode_name(opcode)}: batch of {indices.size} frames out of "
            f"range 1..{0xFFFF}"
        )
    if indices.size and (int(indices.min()) < 0 or int(indices.max()) > 0xFFFFFFFF):
        raise WireFormatError(
            f"{_opcode_name(opcode)}: frame index out of 32-bit range"
        )


@dataclass(frozen=True)
class IcapReadbackBatchCommand:
    """Batched readback of arbitrary (not necessarily contiguous) frames.

    The hot-path replacement for per-frame ``ICAP_readback`` round trips:
    one command carries up to 65,535 frame indices as a packed big-endian
    ``>u4`` vector, and the prover answers with MTU-sized
    :class:`ReadbackBatchResponse` fragments.  ``base_slot`` is the
    position of the batch's first frame within the verifier's readback
    plan, so responses can be matched to the plan without echoing every
    index back.
    """

    base_slot: int
    frame_indices: Tuple[int, ...]

    def encode(self) -> bytes:
        if self.base_slot < 0 or self.base_slot > 0xFFFFFFFF:
            raise WireFormatError(f"batch base slot {self.base_slot} out of range")
        indices = np.asarray(self.frame_indices, dtype=np.int64)
        _check_indices(indices, OPCODE_ICAP_READBACK_BATCH)
        return (
            bytes([OPCODE_ICAP_READBACK_BATCH])
            + self.base_slot.to_bytes(4, "big")
            + len(self.frame_indices).to_bytes(2, "big")
            + indices.astype(">u4").tobytes()
        )


@dataclass(frozen=True)
class IcapConfigBatchCommand:
    """Batched configuration: several equal-sized frames in one message.

    ``data`` is the concatenation of the frame contents, in index order;
    the per-frame size is ``len(data) // len(frame_indices)``.  A 4-byte
    length field sidesteps the 16-bit ``_encode_blob`` cap — the batch
    packer bounds the total to one ARQ payload anyway.
    """

    frame_indices: Tuple[int, ...]
    data: bytes

    def frame_bytes(self) -> int:
        if not self.frame_indices or len(self.data) % len(self.frame_indices):
            raise WireFormatError(
                f"ICAP_config_batch: {len(self.data)} data bytes do not "
                f"split evenly over {len(self.frame_indices)} frames"
            )
        return len(self.data) // len(self.frame_indices)

    def encode(self) -> bytes:
        self.frame_bytes()
        indices = np.asarray(self.frame_indices, dtype=np.int64)
        _check_indices(indices, OPCODE_ICAP_CONFIG_BATCH)
        return (
            bytes([OPCODE_ICAP_CONFIG_BATCH])
            + len(self.frame_indices).to_bytes(2, "big")
            + indices.astype(">u4").tobytes()
            + len(self.data).to_bytes(4, "big")
            + self.data
        )


@dataclass(frozen=True)
class TraceHelloCommand:
    """Telemetry handshake: the session's nonce-derived trace id.

    Sent once per protocol attempt, before any ICAP command, and only
    when observability is enabled — the disabled wire sequence is
    byte-identical to a build without tracing.  The prover tags its
    spans with the id so both parties' dumps stitch into one trace; the
    id carries no secret (it is a truncated hash of the public nonce)
    and does not enter the MAC.
    """

    trace_id: bytes

    def encode(self) -> bytes:
        return bytes([OPCODE_TRACE_HELLO]) + _encode_blob(
            self.trace_id, OPCODE_TRACE_HELLO
        )


@dataclass(frozen=True)
class ConfigAck:
    """Cumulative configuration acknowledgement.

    ``frames_applied`` is the *total* number of configuration frames the
    prover has written in this run — cumulative like the ARQ's ACKs, so
    one ack per ``ICAP_config_batch`` lets the verifier confirm the
    whole configuration prefix.  The verifier tracks the high-water mark
    and fails an attempt toward ``inconclusive`` (never a false reject)
    if the checksum arrives with configuration coverage incomplete.
    """

    frames_applied: int

    def encode(self) -> bytes:
        if self.frames_applied < 0 or self.frames_applied > 0xFFFFFFFF:
            raise WireFormatError(
                f"ConfigAck frames_applied {self.frames_applied} out of range"
            )
        return bytes([OPCODE_CONFIG_ACK]) + self.frames_applied.to_bytes(4, "big")


@dataclass(frozen=True)
class ReadbackResponse:
    """The content of one frame, streamed back during readback."""

    frame_index: int
    data: bytes

    def encode(self) -> bytes:
        return (
            bytes([OPCODE_READBACK_RESPONSE])
            + self.frame_index.to_bytes(4, "big")
            + _encode_blob(self.data, OPCODE_READBACK_RESPONSE)
        )


@dataclass(frozen=True)
class MaskedReadbackAck:
    """Acknowledgement of a masked readback (no frame content travels)."""

    frame_index: int

    def encode(self) -> bytes:
        return bytes([OPCODE_MASKED_READBACK_ACK]) + self.frame_index.to_bytes(
            4, "big"
        )


@dataclass(frozen=True)
class ReadbackRangeResponse:
    """Concatenated content of a batched readback."""

    start_index: int
    data: bytes

    def encode(self) -> bytes:
        return (
            bytes([OPCODE_READBACK_RANGE_RESPONSE])
            + self.start_index.to_bytes(4, "big")
            + len(self.data).to_bytes(4, "big")
            + self.data
        )


@dataclass(frozen=True)
class ReadbackBatchResponse:
    """One MTU-sized fragment of a batched readback.

    ``base_slot`` is the plan position of the fragment's first frame;
    ``frame_count`` frames of equal size are concatenated in ``data``.
    The 4-byte length field (not ``_encode_blob``) keeps the format
    future-proof for jumbo frames, though the prover's fragmenter never
    exceeds one ARQ payload today.
    """

    base_slot: int
    frame_count: int
    data: bytes

    def encode(self) -> bytes:
        if self.base_slot < 0 or self.base_slot > 0xFFFFFFFF:
            raise WireFormatError(f"batch base slot {self.base_slot} out of range")
        if not 1 <= self.frame_count <= 0xFFFF:
            raise WireFormatError(
                f"batch response count {self.frame_count} out of range"
            )
        return (
            bytes([OPCODE_READBACK_BATCH_RESPONSE])
            + self.base_slot.to_bytes(4, "big")
            + self.frame_count.to_bytes(2, "big")
            + len(self.data).to_bytes(4, "big")
            + self.data
        )


@dataclass(frozen=True)
class MacChecksumResponse:
    """The finalized MAC tag."""

    tag: bytes

    def encode(self) -> bytes:
        return bytes([OPCODE_MAC_RESPONSE]) + _encode_blob(self.tag, OPCODE_MAC_RESPONSE)


Command = Union[
    IcapConfigCommand,
    IcapConfigBatchCommand,
    IcapReadbackCommand,
    IcapReadbackBatchCommand,
    IcapReadbackMaskedCommand,
    IcapReadbackRangeCommand,
    MacChecksumCommand,
    TraceHelloCommand,
]
Response = Union[
    ConfigAck,
    MaskedReadbackAck,
    ReadbackBatchResponse,
    ReadbackRangeResponse,
    ReadbackResponse,
    MacChecksumResponse,
]


def decode_command(data: bytes) -> Command:
    """Decode a verifier → prover message."""
    if not data:
        raise WireFormatError("empty command")
    opcode = data[0]
    if opcode == OPCODE_ICAP_CONFIG:
        if len(data) < 5:
            raise WireFormatError("truncated ICAP_config")
        frame_index = int.from_bytes(data[1:5], "big")
        blob, _ = _decode_blob(data, 5, OPCODE_ICAP_CONFIG)
        return IcapConfigCommand(frame_index, blob)
    if opcode == OPCODE_ICAP_READBACK:
        if len(data) < 5:
            raise WireFormatError("truncated ICAP_readback")
        return IcapReadbackCommand(int.from_bytes(data[1:5], "big"))
    if opcode == OPCODE_MAC_CHECKSUM:
        return MacChecksumCommand()
    if opcode == OPCODE_ICAP_READBACK_MASKED:
        if len(data) < 5:
            raise WireFormatError("truncated masked ICAP_readback")
        frame_index = int.from_bytes(data[1:5], "big")
        blob, _ = _decode_blob(data, 5, OPCODE_ICAP_READBACK_MASKED)
        return IcapReadbackMaskedCommand(frame_index, blob)
    if opcode == OPCODE_ICAP_READBACK_RANGE:
        if len(data) < 7:
            raise WireFormatError("truncated ranged ICAP_readback")
        return IcapReadbackRangeCommand(
            start_index=int.from_bytes(data[1:5], "big"),
            count=int.from_bytes(data[5:7], "big"),
        )
    if opcode == OPCODE_ICAP_READBACK_BATCH:
        if len(data) < 7:
            raise WireFormatError("truncated batched ICAP_readback")
        base_slot = int.from_bytes(data[1:5], "big")
        count = int.from_bytes(data[5:7], "big")
        if len(data) < 7 + 4 * count:
            raise WireFormatError(
                f"truncated batched ICAP_readback: {count} indices announced, "
                f"{(len(data) - 7) // 4} present"
            )
        indices = np.frombuffer(data, dtype=">u4", count=count, offset=7)
        return IcapReadbackBatchCommand(
            base_slot=base_slot, frame_indices=tuple(int(i) for i in indices)
        )
    if opcode == OPCODE_ICAP_CONFIG_BATCH:
        if len(data) < 3:
            raise WireFormatError("truncated batched ICAP_config")
        count = int.from_bytes(data[1:3], "big")
        header_end = 3 + 4 * count
        if len(data) < header_end + 4:
            raise WireFormatError("truncated batched ICAP_config index vector")
        indices = np.frombuffer(data, dtype=">u4", count=count, offset=3)
        length = int.from_bytes(data[header_end : header_end + 4], "big")
        if header_end + 4 + length > len(data):
            raise WireFormatError("truncated batched ICAP_config payload")
        return IcapConfigBatchCommand(
            frame_indices=tuple(int(i) for i in indices),
            data=data[header_end + 4 : header_end + 4 + length],
        )
    if opcode == OPCODE_TRACE_HELLO:
        blob, _ = _decode_blob(data, 1, OPCODE_TRACE_HELLO)
        return TraceHelloCommand(blob)
    raise WireFormatError(f"unknown command opcode {opcode:#04x}")


def decode_response(data: bytes) -> Response:
    """Decode a prover → verifier message."""
    if not data:
        raise WireFormatError("empty response")
    opcode = data[0]
    if opcode == OPCODE_CONFIG_ACK:
        if len(data) < 5:
            raise WireFormatError("truncated ConfigAck")
        return ConfigAck(int.from_bytes(data[1:5], "big"))
    if opcode == OPCODE_READBACK_RESPONSE:
        if len(data) < 5:
            raise WireFormatError("truncated readback response")
        frame_index = int.from_bytes(data[1:5], "big")
        blob, _ = _decode_blob(data, 5, OPCODE_READBACK_RESPONSE)
        return ReadbackResponse(frame_index, blob)
    if opcode == OPCODE_MASKED_READBACK_ACK:
        if len(data) < 5:
            raise WireFormatError("truncated masked-readback ack")
        return MaskedReadbackAck(int.from_bytes(data[1:5], "big"))
    if opcode == OPCODE_READBACK_RANGE_RESPONSE:
        if len(data) < 9:
            raise WireFormatError("truncated ranged readback response")
        start_index = int.from_bytes(data[1:5], "big")
        length = int.from_bytes(data[5:9], "big")
        if 9 + length > len(data):
            raise WireFormatError("truncated ranged readback payload")
        return ReadbackRangeResponse(start_index, data[9 : 9 + length])
    if opcode == OPCODE_READBACK_BATCH_RESPONSE:
        if len(data) < 11:
            raise WireFormatError("truncated batched readback response")
        base_slot = int.from_bytes(data[1:5], "big")
        frame_count = int.from_bytes(data[5:7], "big")
        length = int.from_bytes(data[7:11], "big")
        if 11 + length > len(data):
            raise WireFormatError("truncated batched readback payload")
        return ReadbackBatchResponse(base_slot, frame_count, data[11 : 11 + length])
    if opcode == OPCODE_MAC_RESPONSE:
        blob, _ = _decode_blob(data, 1, OPCODE_MAC_RESPONSE)
        return MacChecksumResponse(blob)
    raise WireFormatError(f"unknown response opcode {opcode:#04x}")
