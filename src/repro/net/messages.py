"""SACHa wire format.

Three commands travel verifier → prover (Section 6.1 of the paper):

1. ``ICAP_config(frame)`` — frame address + frame content to write;
2. ``ICAP_readback(frame_nb)`` — address of a frame to read back and fold
   into the MAC;
3. ``MAC_checksum`` — finalize the MAC and return the tag.

Two responses travel prover → verifier: the frame content for each
readback, and the final MAC tag.  An optional ``ConfigAck`` exists for
transports that want explicit flow control; the paper's protocol (and our
default transport) fire-and-forgets configuration commands, with the
per-command network overhead accounted in the timing model either way.

Every message is self-delimiting: 1 opcode byte, fixed-size fields, and a
2-byte length prefix before variable data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import WireFormatError

OPCODE_ICAP_CONFIG = 0x01
OPCODE_ICAP_READBACK = 0x02
OPCODE_MAC_CHECKSUM = 0x03
OPCODE_ICAP_READBACK_MASKED = 0x04
OPCODE_ICAP_READBACK_RANGE = 0x05
OPCODE_CONFIG_ACK = 0x80
OPCODE_READBACK_RESPONSE = 0x81
OPCODE_MAC_RESPONSE = 0x82
OPCODE_MASKED_READBACK_ACK = 0x83
OPCODE_READBACK_RANGE_RESPONSE = 0x84



def _encode_blob(data: bytes) -> bytes:
    if len(data) > 0xFFFF:
        raise WireFormatError(f"blob of {len(data)} bytes exceeds wire limit")
    return len(data).to_bytes(2, "big") + data


def _decode_blob(data: bytes, offset: int) -> tuple:
    if offset + 2 > len(data):
        raise WireFormatError("truncated length prefix")
    length = int.from_bytes(data[offset : offset + 2], "big")
    offset += 2
    if offset + length > len(data):
        raise WireFormatError(
            f"truncated blob: need {length} bytes, have {len(data) - offset}"
        )
    return data[offset : offset + length], offset + length


@dataclass(frozen=True)
class IcapConfigCommand:
    """Write ``data`` to configuration-memory frame ``frame_index``."""

    frame_index: int
    data: bytes

    def encode(self) -> bytes:
        if self.frame_index < 0 or self.frame_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.frame_index} out of range")
        return (
            bytes([OPCODE_ICAP_CONFIG])
            + self.frame_index.to_bytes(4, "big")
            + _encode_blob(self.data)
        )


@dataclass(frozen=True)
class IcapReadbackCommand:
    """Read configuration-memory frame ``frame_index`` back and MAC it."""

    frame_index: int

    def encode(self) -> bytes:
        if self.frame_index < 0 or self.frame_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.frame_index} out of range")
        return bytes([OPCODE_ICAP_READBACK]) + self.frame_index.to_bytes(4, "big")


@dataclass(frozen=True)
class MacChecksumCommand:
    """Finalize the MAC and return the tag."""

    def encode(self) -> bytes:
        return bytes([OPCODE_MAC_CHECKSUM])


@dataclass(frozen=True)
class IcapReadbackMaskedCommand:
    """The Section-6.1 alternative: readback with the Msk sent along.

    The prover applies the mask *before* the MAC step and does not send
    the frame content back — the mask travels Vrf → Prv instead of the
    frame travelling Prv → Vrf ("a similar communication latency").
    """

    frame_index: int
    mask: bytes

    def encode(self) -> bytes:
        if self.frame_index < 0 or self.frame_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.frame_index} out of range")
        return (
            bytes([OPCODE_ICAP_READBACK_MASKED])
            + self.frame_index.to_bytes(4, "big")
            + _encode_blob(self.mask)
        )


@dataclass(frozen=True)
class IcapReadbackRangeCommand:
    """Batched readback: ``count`` consecutive frames from ``start_index``.

    A forward-looking optimization the E7 ablation motivates: the
    28,488 readback round trips dominate the networked duration, and
    contiguous plans batch naturally.  Responses above the Ethernet MTU
    are assumed fragmented/jumbo by the transport.
    """

    start_index: int
    count: int

    def encode(self) -> bytes:
        if self.start_index < 0 or self.start_index > 0xFFFFFFFF:
            raise WireFormatError(f"frame index {self.start_index} out of range")
        if not 1 <= self.count <= 0xFFFF:
            raise WireFormatError(f"batch count {self.count} out of range")
        return (
            bytes([OPCODE_ICAP_READBACK_RANGE])
            + self.start_index.to_bytes(4, "big")
            + self.count.to_bytes(2, "big")
        )


@dataclass(frozen=True)
class ConfigAck:
    """Optional acknowledgement of an ``ICAP_config``."""

    frame_index: int

    def encode(self) -> bytes:
        return bytes([OPCODE_CONFIG_ACK]) + self.frame_index.to_bytes(4, "big")


@dataclass(frozen=True)
class ReadbackResponse:
    """The content of one frame, streamed back during readback."""

    frame_index: int
    data: bytes

    def encode(self) -> bytes:
        return (
            bytes([OPCODE_READBACK_RESPONSE])
            + self.frame_index.to_bytes(4, "big")
            + _encode_blob(self.data)
        )


@dataclass(frozen=True)
class MaskedReadbackAck:
    """Acknowledgement of a masked readback (no frame content travels)."""

    frame_index: int

    def encode(self) -> bytes:
        return bytes([OPCODE_MASKED_READBACK_ACK]) + self.frame_index.to_bytes(
            4, "big"
        )


@dataclass(frozen=True)
class ReadbackRangeResponse:
    """Concatenated content of a batched readback."""

    start_index: int
    data: bytes

    def encode(self) -> bytes:
        return (
            bytes([OPCODE_READBACK_RANGE_RESPONSE])
            + self.start_index.to_bytes(4, "big")
            + len(self.data).to_bytes(4, "big")
            + self.data
        )


@dataclass(frozen=True)
class MacChecksumResponse:
    """The finalized MAC tag."""

    tag: bytes

    def encode(self) -> bytes:
        return bytes([OPCODE_MAC_RESPONSE]) + _encode_blob(self.tag)


Command = Union[
    IcapConfigCommand,
    IcapReadbackCommand,
    IcapReadbackMaskedCommand,
    IcapReadbackRangeCommand,
    MacChecksumCommand,
]
Response = Union[
    ConfigAck,
    MaskedReadbackAck,
    ReadbackRangeResponse,
    ReadbackResponse,
    MacChecksumResponse,
]


def decode_command(data: bytes) -> Command:
    """Decode a verifier → prover message."""
    if not data:
        raise WireFormatError("empty command")
    opcode = data[0]
    if opcode == OPCODE_ICAP_CONFIG:
        if len(data) < 5:
            raise WireFormatError("truncated ICAP_config")
        frame_index = int.from_bytes(data[1:5], "big")
        blob, _ = _decode_blob(data, 5)
        return IcapConfigCommand(frame_index, blob)
    if opcode == OPCODE_ICAP_READBACK:
        if len(data) < 5:
            raise WireFormatError("truncated ICAP_readback")
        return IcapReadbackCommand(int.from_bytes(data[1:5], "big"))
    if opcode == OPCODE_MAC_CHECKSUM:
        return MacChecksumCommand()
    if opcode == OPCODE_ICAP_READBACK_MASKED:
        if len(data) < 5:
            raise WireFormatError("truncated masked ICAP_readback")
        frame_index = int.from_bytes(data[1:5], "big")
        blob, _ = _decode_blob(data, 5)
        return IcapReadbackMaskedCommand(frame_index, blob)
    if opcode == OPCODE_ICAP_READBACK_RANGE:
        if len(data) < 7:
            raise WireFormatError("truncated ranged ICAP_readback")
        return IcapReadbackRangeCommand(
            start_index=int.from_bytes(data[1:5], "big"),
            count=int.from_bytes(data[5:7], "big"),
        )
    raise WireFormatError(f"unknown command opcode {opcode:#04x}")


def decode_response(data: bytes) -> Response:
    """Decode a prover → verifier message."""
    if not data:
        raise WireFormatError("empty response")
    opcode = data[0]
    if opcode == OPCODE_CONFIG_ACK:
        if len(data) < 5:
            raise WireFormatError("truncated ConfigAck")
        return ConfigAck(int.from_bytes(data[1:5], "big"))
    if opcode == OPCODE_READBACK_RESPONSE:
        if len(data) < 5:
            raise WireFormatError("truncated readback response")
        frame_index = int.from_bytes(data[1:5], "big")
        blob, _ = _decode_blob(data, 5)
        return ReadbackResponse(frame_index, blob)
    if opcode == OPCODE_MASKED_READBACK_ACK:
        if len(data) < 5:
            raise WireFormatError("truncated masked-readback ack")
        return MaskedReadbackAck(int.from_bytes(data[1:5], "big"))
    if opcode == OPCODE_READBACK_RANGE_RESPONSE:
        if len(data) < 9:
            raise WireFormatError("truncated ranged readback response")
        start_index = int.from_bytes(data[1:5], "big")
        length = int.from_bytes(data[5:9], "big")
        if 9 + length > len(data):
            raise WireFormatError("truncated ranged readback payload")
        return ReadbackRangeResponse(start_index, data[9 : 9 + length])
    if opcode == OPCODE_MAC_RESPONSE:
        blob, _ = _decode_blob(data, 1)
        return MacChecksumResponse(blob)
    raise WireFormatError(f"unknown response opcode {opcode:#04x}")
