"""Ethernet II framing (802.3 with FCS, preamble and IFG accounting).

The ETH core in the StatPart receives and transmits one byte per 125 MHz
cycle; frame sizes therefore directly set the A1/A3/A8 action timings of
Table 3.  Frames carry the SACHa wire format under a local-experimental
ethertype.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import NetworkError
from repro.utils.crc import Crc32

ETHERTYPE_SACHA = 0x88B5  # IEEE 802 local experimental ethertype 1
MIN_PAYLOAD = 46
MAX_PAYLOAD = 1500
HEADER_BYTES = 14  # dst(6) + src(6) + ethertype(2)
FCS_BYTES = 4
PREAMBLE_BYTES = 8  # preamble(7) + SFD(1)
IFG_BYTES = 12  # inter-frame gap, counted in byte times


@dataclass(frozen=True)
class MacAddress:
    """A 48-bit MAC address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise NetworkError(f"MAC address {self.value:#x} does not fit in 48 bits")

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise NetworkError(f"malformed MAC address {text!r}")
        try:
            octets = [int(part, 16) for part in parts]
        except ValueError as exc:
            raise NetworkError(f"malformed MAC address {text!r}") from exc
        if any(not 0 <= octet <= 0xFF for octet in octets):
            raise NetworkError(f"malformed MAC address {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    def __str__(self) -> str:
        return ":".join(f"{byte:02x}" for byte in self.to_bytes())


@dataclass(frozen=True)
class EthernetFrame:
    """An Ethernet II frame with computed FCS.

    ``payload`` is the raw upper-layer payload *before* minimum-size
    padding; padding is applied on serialization and stripped on parse is
    not possible (receivers must know their payload length — the SACHa
    wire format is self-delimiting, so this matches reality).
    """

    destination: MacAddress
    source: MacAddress
    ethertype: int
    payload: bytes

    def __post_init__(self) -> None:
        if not 0 <= self.ethertype <= 0xFFFF:
            raise NetworkError(f"ethertype {self.ethertype:#x} out of range")
        if len(self.payload) > MAX_PAYLOAD:
            raise NetworkError(
                f"payload of {len(self.payload)} bytes exceeds {MAX_PAYLOAD}"
            )

    def padded_payload(self) -> bytes:
        if len(self.payload) < MIN_PAYLOAD:
            return self.payload + bytes(MIN_PAYLOAD - len(self.payload))
        return self.payload

    def to_bytes(self) -> bytes:
        """Serialize including FCS (preamble/IFG are timing-only)."""
        body = (
            self.destination.to_bytes()
            + self.source.to_bytes()
            + self.ethertype.to_bytes(2, "big")
            + self.padded_payload()
        )
        return body + Crc32().update(body).digest_bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "EthernetFrame":
        if len(data) < HEADER_BYTES + MIN_PAYLOAD + FCS_BYTES:
            raise NetworkError(f"runt frame of {len(data)} bytes")
        body, fcs = data[:-FCS_BYTES], data[-FCS_BYTES:]
        if Crc32().update(body).digest_bytes() != fcs:
            raise NetworkError("frame check sequence mismatch")
        return cls(
            destination=MacAddress(int.from_bytes(body[0:6], "big")),
            source=MacAddress(int.from_bytes(body[6:12], "big")),
            ethertype=int.from_bytes(body[12:14], "big"),
            payload=body[14:],
        )

    def wire_bytes(self) -> int:
        """Total byte times on the wire including preamble and IFG."""
        return (
            PREAMBLE_BYTES
            + HEADER_BYTES
            + len(self.padded_payload())
            + FCS_BYTES
            + IFG_BYTES
        )
