"""Resequencing buffer: exactly-once, in-order delivery over raw links.

The ARQ layer gives the attestation session a reliable pipe, but a
deployment may already sit on a transport that retransmits for us (or
accept that loss fails the run toward ``inconclusive``) and only need
protection against *duplication* and *reordering* — the two faults that
would silently desynchronize the incremental MAC between prover and
verifier.  ``ResequencerLink`` is that thin layer: a bounded
reorder/dedup buffer above a raw channel endpoint.

* every payload goes out once as ``seq || payload || CRC-32`` under its
  own ethertype — no ACKs, no timers, no retransmission;
* the receiver delivers each sequence number exactly once and in order:
  out-of-order arrivals within ``depth`` of the next expected sequence
  are buffered until the gap fills, duplicates and corrupted frames are
  dropped, frames beyond the buffer are dropped and counted;
* a lost frame leaves a permanent gap: everything buffered behind it
  stays undelivered, the simulation drains, and the session above fails
  the attempt toward ``inconclusive`` — fail-safe, never a wrong
  verdict (the MAC transcript simply never completes).

This is what lets a ``reliable=False`` session keep the pipelined
transport (PR 5) instead of falling back to lockstep: pipelining only
needs in-order exactly-once delivery, not retransmission.  The layer
presents the same ``send`` / ``send_many`` / ``handler`` surface as
:class:`~repro.net.arq.ArqLink`, so the session uses either
interchangeably.
"""

from __future__ import annotations

import hmac
from typing import Callable, Dict, Iterable, Optional

from repro.errors import NetworkError
from repro.net.channel import Endpoint
from repro.net.ethernet import EthernetFrame, MacAddress
from repro.obs.metrics import get_registry
from repro.utils.crc import Crc32

#: Ethertype for resequencer-wrapped traffic (local experimental
#: ethertype 3; ARQ traffic is 0x88B6).
ETHERTYPE_RSQ = 0x88B7

_HEADER_BYTES = 4  # sequence(4); no type byte — DATA is the only frame
_CRC_BYTES = 4

#: Per-frame resequencer framing cost.  Strictly below
#: :data:`~repro.net.arq.ARQ_OVERHEAD_BYTES`, so payloads sized for the
#: ARQ transport (the batch codec's MTU math) always fit here too.
RSQ_OVERHEAD_BYTES = _HEADER_BYTES + _CRC_BYTES

#: Default reorder/dedup buffer capacity, in frames.  Bounds memory and
#: the tolerated reorder displacement; the fault model's reordering is
#: a bounded extra delay, so displacements are small compared to this.
DEFAULT_DEPTH = 256


def _encode(sequence: int, payload: bytes) -> bytes:
    body = sequence.to_bytes(4, "big") + payload
    return body + Crc32().update(body).digest_bytes()


def _decode(data: bytes):
    if len(data) < _HEADER_BYTES + _CRC_BYTES:
        raise NetworkError("truncated resequencer frame")
    body, crc = data[:-_CRC_BYTES], data[-_CRC_BYTES:]
    if not hmac.compare_digest(Crc32().update(body).digest_bytes(), crc):
        raise NetworkError("resequencer frame CRC mismatch")
    return int.from_bytes(body[:4], "big"), body[4:]


class ResequencerLink:
    """Exactly-once in-order delivery over one raw channel endpoint.

    Same surface as :class:`~repro.net.arq.ArqLink` minus reliability:
    the inner frame's payload is what travels; its addressing is
    re-created on delivery.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        peer_mac: MacAddress,
        depth: int = DEFAULT_DEPTH,
    ) -> None:
        if depth < 1:
            raise NetworkError(
                f"resequencer depth must be >= 1, got {depth}"
            )
        self._endpoint = endpoint
        self._peer_mac = peer_mac
        self._depth = depth
        endpoint.handler = self._on_frame

        self.handler: Optional[Callable[[EthernetFrame], None]] = None
        self._next_tx_sequence = 0
        self._expected_rx_sequence = 0
        # Out-of-order arrivals awaiting the gap-filling sequence number.
        self._rx_buffer: Dict[int, bytes] = {}

        self.payloads_sent = 0
        self.duplicates_dropped = 0
        self.corrupt_frames_dropped = 0
        self.overflow_dropped = 0
        self.max_depth_seen = 0

    @property
    def depth(self) -> int:
        """Configured buffer capacity, in frames."""
        return self._depth

    @property
    def buffered(self) -> int:
        """Out-of-order payloads currently held back."""
        return len(self._rx_buffer)

    @property
    def idle(self) -> bool:
        """The send side never queues; only receive gaps hold state."""
        return not self._rx_buffer

    # -- sending -----------------------------------------------------------------

    def send(self, frame: EthernetFrame) -> None:
        """Transmit one payload, exactly once, with sequence and CRC."""
        sequence = self._next_tx_sequence
        self._next_tx_sequence += 1
        self.payloads_sent += 1
        self._endpoint.send(
            EthernetFrame(
                destination=self._peer_mac,
                source=self._endpoint.mac,
                ethertype=ETHERTYPE_RSQ,
                payload=_encode(sequence, frame.payload),
            )
        )

    def send_many(self, frames: Iterable[EthernetFrame]) -> None:
        """Transmit a burst; purely a convenience, nothing is windowed."""
        for frame in frames:
            self.send(frame)

    # -- receiving ----------------------------------------------------------------

    def _on_frame(self, frame: EthernetFrame) -> None:
        try:
            sequence, payload = _decode(frame.payload)
        except NetworkError:
            # Corrupted or truncated: equivalent to loss at this layer.
            self.corrupt_frames_dropped += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "sacha_resequencer_corrupt_frames_total",
                    "Resequencer frames dropped on CRC or framing failure",
                ).inc()
            return
        if sequence < self._expected_rx_sequence or sequence in self._rx_buffer:
            self._count_duplicate()
            return
        if sequence >= self._expected_rx_sequence + self._depth:
            # Beyond the buffer: nothing retransmits, so this payload is
            # gone — exactly like a loss, the run fails safe upstream.
            self.overflow_dropped += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "sacha_resequencer_overflow_total",
                    "Resequencer frames dropped beyond the reorder buffer",
                ).inc()
            return
        if sequence != self._expected_rx_sequence:
            self._rx_buffer[sequence] = payload
            self._observe_depth()
            return
        # In order: deliver it and the contiguous run it completes.
        self._deliver(payload)
        while self._expected_rx_sequence in self._rx_buffer:
            self._deliver(self._rx_buffer.pop(self._expected_rx_sequence))
        self._observe_depth()

    def _count_duplicate(self) -> None:
        self.duplicates_dropped += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "sacha_resequencer_duplicates_total",
                "Duplicate resequencer frames dropped",
            ).inc()

    def _observe_depth(self) -> None:
        held = len(self._rx_buffer)
        self.max_depth_seen = max(self.max_depth_seen, held)
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "sacha_resequencer_depth",
                "Out-of-order payloads currently buffered, by endpoint",
                labels=("endpoint",),
            ).set(float(held), endpoint=self._endpoint.name)
            registry.histogram(
                "sacha_resequencer_depth_frames",
                "Reorder-buffer occupancy observed per arrival",
                buckets=(0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
            ).observe(float(held))

    def _deliver(self, payload: bytes) -> None:
        self._expected_rx_sequence += 1
        if self.handler is not None:
            self.handler(
                EthernetFrame(
                    destination=self._endpoint.mac,
                    source=self._peer_mac,
                    ethertype=ETHERTYPE_RSQ,
                    payload=payload,
                )
            )
