"""Simulated network channel between verifier and prover.

A :class:`Channel` connects exactly two :class:`Endpoint` objects through
the discrete-event simulator.  Delivery time is PHY serialization plus a
latency sample from a :class:`LatencyModel`; frames can be lost, and
:class:`NetworkTap` observers (the paper's local adversary "eavesdropping
and/or controlling the communication") see every frame and may inject
their own.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.errors import NetworkError
from repro.net.ethernet import EthernetFrame, MacAddress
from repro.net.faults import Delivery, FaultModel
from repro.net.phy import GigabitPhy
from repro.obs import log as obs_log
from repro.obs.metrics import get_registry
from repro.sim.events import Simulator
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)


@dataclass(frozen=True)
class LatencyModel:
    """Per-frame one-way latency: fixed base plus Gaussian jitter.

    ``base_ns`` models switch store-and-forward plus host network-stack
    time; the lab network of the paper is calibrated in
    ``repro.timing.network`` to ≈246 µs one-way (≈493 µs per command
    round trip), which reproduces the measured 28.5 s protocol duration.
    """

    base_ns: float = 0.0
    jitter_sigma_ns: float = 0.0

    def sample_ns(self, rng: Optional[DeterministicRng]) -> float:
        if self.jitter_sigma_ns <= 0 or rng is None:
            return self.base_ns
        return max(0.0, rng.gauss(self.base_ns, self.jitter_sigma_ns))


NetworkTap = Callable[[float, str, EthernetFrame], Optional[EthernetFrame]]
"""Tap signature: (time_ns, direction, frame) -> replacement frame or None.

Returning a frame substitutes it for the original (an in-path adversary);
returning ``None`` leaves the frame untouched (pure eavesdropping is a tap
that stores what it sees and returns ``None``).
"""


class Endpoint:
    """One side of a channel; delivers received frames to a handler."""

    def __init__(self, name: str, mac: MacAddress) -> None:
        self.name = name
        self.mac = mac
        self.handler: Optional[Callable[[EthernetFrame], None]] = None
        self._channel: Optional["Channel"] = None
        self.frames_sent = 0
        self.frames_received = 0
        self.bytes_sent = 0

    def attach(self, channel: "Channel") -> None:
        if self._channel is not None:
            raise NetworkError(f"endpoint {self.name} is already attached")
        self._channel = channel

    def send(self, frame: EthernetFrame) -> None:
        """Transmit a frame to the peer endpoint."""
        if self._channel is None:
            raise NetworkError(f"endpoint {self.name} is not attached to a channel")
        self.frames_sent += 1
        self.bytes_sent += frame.wire_bytes()
        self._channel.transmit(self, frame)

    def send_many(self, frames) -> None:
        """Transmit a burst of frames in order.

        On a raw endpoint this is just a loop; :class:`~repro.net.arq.ArqLink`
        overrides the same surface to enqueue the burst before pumping, so
        callers can stream bursts transport-agnostically.
        """
        for frame in frames:
            self.send(frame)

    def deliver(self, frame: EthernetFrame) -> None:
        self.frames_received += 1
        if self.handler is not None:
            self.handler(frame)


class Channel:
    """A point-to-point full-duplex link with latency, loss and taps."""

    def __init__(
        self,
        simulator: Simulator,
        latency: Optional[LatencyModel] = None,
        phy: Optional[GigabitPhy] = None,
        loss_probability: float = 0.0,
        rng: Optional[DeterministicRng] = None,
        fault_model: Optional[FaultModel] = None,
    ) -> None:
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError(f"loss probability {loss_probability} out of range")
        if loss_probability > 0.0 and rng is None:
            raise NetworkError(
                "loss_probability > 0 needs an rng; without one the loss "
                "model would silently never fire"
            )
        self._simulator = simulator
        self._latency = latency if latency is not None else LatencyModel()
        self._phy = phy if phy is not None else GigabitPhy()
        self._loss_probability = loss_probability
        self._rng = rng
        self._fault_model = fault_model
        self._endpoints: List[Endpoint] = []
        self._taps: List[NetworkTap] = []
        self.frames_dropped = 0

    @property
    def simulator(self) -> Simulator:
        return self._simulator

    @property
    def fault_model(self) -> Optional[FaultModel]:
        return self._fault_model

    def connect(self, left: Endpoint, right: Endpoint) -> None:
        if self._endpoints:
            raise NetworkError("channel already has endpoints")
        left.attach(self)
        right.attach(self)
        self._endpoints = [left, right]

    def add_tap(self, tap: NetworkTap) -> None:
        """Register an adversary/observer tap on the channel."""
        self._taps.append(tap)

    def _peer(self, sender: Endpoint) -> Endpoint:
        if sender not in self._endpoints:
            raise NetworkError(f"endpoint {sender.name} is not on this channel")
        left, right = self._endpoints
        return right if sender is left else left

    def transmit(self, sender: Endpoint, frame: EthernetFrame) -> None:
        peer = self._peer(sender)
        direction = f"{sender.name}->{peer.name}"
        registry = get_registry()
        obs_on = registry.enabled
        if obs_on:
            registry.counter(
                "sacha_net_frames_sent_total",
                "Ethernet frames offered to the channel, by direction",
                labels=("direction",),
            ).inc(direction=direction)
        for tap in self._taps:
            replacement = tap(self._simulator.now_ns, direction, frame)
            if replacement is not None:
                frame = replacement
                if obs_on:
                    registry.counter(
                        "sacha_net_tap_injections_total",
                        "Frames substituted by in-path taps (adversaries)",
                    ).inc()
        if self._loss_probability and self._rng is not None:
            if self._rng.chance(self._loss_probability):
                self.frames_dropped += 1
                if obs_on:
                    registry.counter(
                        "sacha_net_frames_lost_total",
                        "Frames dropped by the channel loss model",
                    ).inc()
                    _log.debug(
                        "frame_lost",
                        direction=direction,
                        time_ns=self._simulator.now_ns,
                    )
                return
        if self._fault_model is not None:
            deliveries = self._fault_model.perturb(
                self._simulator.now_ns, direction, frame
            )
            if not deliveries:
                self.frames_dropped += 1
                if obs_on:
                    _log.debug(
                        "frame_faulted_away",
                        direction=direction,
                        time_ns=self._simulator.now_ns,
                    )
                return
        else:
            deliveries = [Delivery(frame)]
        for delivery in deliveries:
            delivered = delivery.frame
            delay = (
                self._phy.serialization_ns(delivered)
                + self._latency.sample_ns(self._rng)
                + delivery.extra_delay_ns
            )
            if obs_on:
                registry.histogram(
                    "sacha_net_latency_seconds",
                    "One-way frame delivery latency (serialization + latency model)",
                    labels=("direction",),
                    buckets=(1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 0.01, 0.1, 1.0),
                ).observe(delay / 1e9, direction=direction)
            self._simulator.schedule(
                delay,
                lambda f=delivered: peer.deliver(f),
                label=f"deliver {direction}",
            )
