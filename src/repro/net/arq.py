"""Stop-and-wait ARQ: reliable, exactly-once delivery over a lossy link.

The SACHa protocol is a strict command/response sequence; a single lost
Ethernet frame deadlocks a naive run.  ``ArqLink`` wraps a channel
endpoint with a classic stop-and-wait automatic-repeat-request layer:

* every payload goes out as ``DATA(seq)`` and is retransmitted on a
  timeout until the matching ``ACK(seq)`` arrives;
* the receiver delivers each sequence number exactly once (duplicates
  from lost ACKs are re-acknowledged but not re-delivered);
* ordering is preserved (stop-and-wait never reorders).

Exactly-once, in-order delivery is precisely what the attestation needs:
a duplicated ``ICAP_readback`` would desynchronize the incremental MAC
between prover and verifier.  The layer is protocol-agnostic — it moves
opaque payloads — so it slots under the unmodified SACHa session.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import NetworkError
from repro.net.channel import Endpoint
from repro.net.ethernet import EthernetFrame, MacAddress
from repro.sim.events import Event, Simulator

#: Ethertype for ARQ-wrapped traffic (local experimental ethertype 2).
ETHERTYPE_ARQ = 0x88B6

_TYPE_DATA = 0x01
_TYPE_ACK = 0x02


def _encode(frame_type: int, sequence: int, payload: bytes = b"") -> bytes:
    return bytes([frame_type]) + sequence.to_bytes(4, "big") + payload


def _decode(data: bytes):
    if len(data) < 5:
        raise NetworkError("truncated ARQ frame")
    return data[0], int.from_bytes(data[1:5], "big"), data[5:]


class ArqLink:
    """Reliable payload transport over one channel endpoint.

    Presents the same ``send(frame)`` / ``handler`` surface as a raw
    :class:`Endpoint`, so higher layers (the attestation session) use it
    unchanged: the inner frame's payload is what travels reliably; its
    addressing is re-created on delivery.
    """

    def __init__(
        self,
        simulator: Simulator,
        endpoint: Endpoint,
        peer_mac: MacAddress,
        timeout_ns: float = 2_000_000.0,
        max_retries: int = 25,
    ) -> None:
        if timeout_ns <= 0:
            raise NetworkError(f"ARQ timeout must be positive, got {timeout_ns}")
        if max_retries < 1:
            raise NetworkError(f"ARQ needs at least one retry, got {max_retries}")
        self._simulator = simulator
        self._endpoint = endpoint
        self._peer_mac = peer_mac
        self._timeout_ns = timeout_ns
        self._max_retries = max_retries
        endpoint.handler = self._on_frame

        self.handler: Optional[Callable[[EthernetFrame], None]] = None
        self._send_queue: Deque[bytes] = deque()
        self._next_tx_sequence = 0
        self._in_flight: Optional[bytes] = None
        self._in_flight_retries = 0
        self._timeout_event: Optional[Event] = None
        self._expected_rx_sequence = 0

        self.payloads_sent = 0
        self.retransmissions = 0
        self.duplicates_dropped = 0

    # -- sending -----------------------------------------------------------------

    def send(self, frame: EthernetFrame) -> None:
        """Queue one payload for reliable delivery to the peer."""
        self._send_queue.append(frame.payload)
        self._pump()

    def _pump(self) -> None:
        if self._in_flight is not None or not self._send_queue:
            return
        payload = self._send_queue.popleft()
        self._in_flight = _encode(_TYPE_DATA, self._next_tx_sequence, payload)
        self._in_flight_retries = 0
        self.payloads_sent += 1
        self._transmit_in_flight()

    def _transmit_in_flight(self) -> None:
        assert self._in_flight is not None
        self._endpoint.send(
            EthernetFrame(
                destination=self._peer_mac,
                source=self._endpoint.mac,
                ethertype=ETHERTYPE_ARQ,
                payload=self._in_flight,
            )
        )
        self._timeout_event = self._simulator.schedule(
            self._timeout_ns, self._on_timeout, label="arq-timeout"
        )

    def _on_timeout(self) -> None:
        if self._in_flight is None:
            return
        self._in_flight_retries += 1
        if self._in_flight_retries > self._max_retries:
            raise NetworkError(
                f"ARQ gave up after {self._max_retries} retransmissions "
                f"(link from {self._endpoint.name} is down?)"
            )
        self.retransmissions += 1
        self._transmit_in_flight()

    # -- receiving ----------------------------------------------------------------

    def _on_frame(self, frame: EthernetFrame) -> None:
        frame_type, sequence, payload = _decode(frame.payload)
        if frame_type == _TYPE_ACK:
            self._on_ack(sequence)
            return
        if frame_type != _TYPE_DATA:
            raise NetworkError(f"unknown ARQ frame type {frame_type:#04x}")
        # Always acknowledge — the sender may have missed a previous ACK.
        self._endpoint.send(
            EthernetFrame(
                destination=self._peer_mac,
                source=self._endpoint.mac,
                ethertype=ETHERTYPE_ARQ,
                payload=_encode(_TYPE_ACK, sequence),
            )
        )
        if sequence != self._expected_rx_sequence:
            self.duplicates_dropped += 1
            return
        self._expected_rx_sequence += 1
        if self.handler is not None:
            # Strip trailing padding ambiguity by re-wrapping: upper
            # layers see a frame shaped like the original.
            self.handler(
                EthernetFrame(
                    destination=self._endpoint.mac,
                    source=self._peer_mac,
                    ethertype=ETHERTYPE_ARQ,
                    payload=payload,
                )
            )

    def _on_ack(self, sequence: int) -> None:
        if self._in_flight is None or sequence != self._next_tx_sequence:
            return  # stale ACK
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        self._in_flight = None
        self._next_tx_sequence += 1
        self._pump()

    @property
    def idle(self) -> bool:
        """Nothing in flight and nothing queued."""
        return self._in_flight is None and not self._send_queue
