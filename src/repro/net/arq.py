"""Stop-and-wait ARQ: reliable, exactly-once delivery over a faulty link.

The SACHa protocol is a strict command/response sequence; a single lost
Ethernet frame deadlocks a naive run.  ``ArqLink`` wraps a channel
endpoint with a classic stop-and-wait automatic-repeat-request layer:

* every payload goes out as ``DATA(seq)`` and is retransmitted on a
  timeout until the matching ``ACK(seq)`` arrives;
* a CRC-32 trailer covers every ARQ frame, so corrupted or truncated
  frames (the fault model's bit flips) are detected and dropped — the
  retransmission path then recovers them like losses;
* the receiver delivers each sequence number exactly once (duplicates
  from lost ACKs or channel duplication are re-acknowledged but not
  re-delivered);
* ordering is preserved (stop-and-wait never reorders).

The retransmission timer is adaptive: each clean (non-retransmitted)
round trip feeds a Jacobson/Karels SRTT/RTTVAR estimator, and the
retransmission timeout backs off exponentially with deterministic
jitter while a payload keeps timing out.  When ``max_retries`` is
exhausted the link declares itself down: with an ``on_give_up``
callback installed it reports the failure and goes quiescent (so the
session above can degrade to an ``inconclusive`` verdict); without one
it raises, preserving the fail-fast behaviour of simple tests.

Exactly-once, in-order delivery is precisely what the attestation needs:
a duplicated ``ICAP_readback`` would desynchronize the incremental MAC
between prover and verifier.  The layer is protocol-agnostic — it moves
opaque payloads — so it slots under the unmodified SACHa session.
"""

from __future__ import annotations

import hmac
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

from repro.errors import NetworkError
from repro.net.channel import Endpoint
from repro.net.ethernet import EthernetFrame, MacAddress
from repro.obs import log as obs_log
from repro.obs.metrics import get_registry
from repro.sim.events import Event, Simulator
from repro.utils.crc import Crc32
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)

#: Ethertype for ARQ-wrapped traffic (local experimental ethertype 2).
ETHERTYPE_ARQ = 0x88B6

_TYPE_DATA = 0x01
_TYPE_ACK = 0x02

_HEADER_BYTES = 5  # type(1) + sequence(4)
_CRC_BYTES = 4


@dataclass(frozen=True)
class ArqTuning:
    """Retransmission-timer parameters of one :class:`ArqLink`.

    Defaults follow the classic TCP values: SRTT gain 1/8, RTTVAR gain
    1/4, RTO = SRTT + 4·RTTVAR, doubled per consecutive timeout with up
    to ``jitter_fraction`` deterministic jitter to break retransmission
    synchronization between the two directions of a link.
    """

    initial_timeout_ns: float = 2_000_000.0
    min_timeout_ns: float = 200_000.0
    max_timeout_ns: float = 500_000_000.0
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    srtt_gain: float = 1.0 / 8.0
    rttvar_gain: float = 1.0 / 4.0
    rttvar_weight: float = 4.0

    def __post_init__(self) -> None:
        if self.initial_timeout_ns <= 0:
            raise NetworkError(
                f"ARQ timeout must be positive, got {self.initial_timeout_ns}"
            )
        if not 0 < self.min_timeout_ns <= self.max_timeout_ns:
            raise NetworkError(
                f"ARQ timeout bounds [{self.min_timeout_ns}, "
                f"{self.max_timeout_ns}] are inverted or non-positive"
            )
        if self.backoff_factor < 1.0:
            raise NetworkError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise NetworkError(
                f"jitter fraction {self.jitter_fraction} out of range [0, 1)"
            )

    def clamp(self, timeout_ns: float) -> float:
        return min(max(timeout_ns, self.min_timeout_ns), self.max_timeout_ns)


def _encode(frame_type: int, sequence: int, payload: bytes = b"") -> bytes:
    body = bytes([frame_type]) + sequence.to_bytes(4, "big") + payload
    return body + Crc32().update(body).digest_bytes()


def _decode(data: bytes):
    if len(data) < _HEADER_BYTES + _CRC_BYTES:
        raise NetworkError("truncated ARQ frame")
    body, crc = data[:-_CRC_BYTES], data[-_CRC_BYTES:]
    if not hmac.compare_digest(Crc32().update(body).digest_bytes(), crc):
        raise NetworkError("ARQ frame CRC mismatch")
    return body[0], int.from_bytes(body[1:5], "big"), body[5:]


class ArqLink:
    """Reliable payload transport over one channel endpoint.

    Presents the same ``send(frame)`` / ``handler`` surface as a raw
    :class:`Endpoint`, so higher layers (the attestation session) use it
    unchanged: the inner frame's payload is what travels reliably; its
    addressing is re-created on delivery.
    """

    def __init__(
        self,
        simulator: Simulator,
        endpoint: Endpoint,
        peer_mac: MacAddress,
        timeout_ns: float = 2_000_000.0,
        max_retries: int = 25,
        tuning: Optional[ArqTuning] = None,
        rng: Optional[DeterministicRng] = None,
        on_give_up: Optional[Callable[[NetworkError], None]] = None,
    ) -> None:
        if timeout_ns <= 0:
            raise NetworkError(f"ARQ timeout must be positive, got {timeout_ns}")
        if max_retries < 1:
            raise NetworkError(f"ARQ needs at least one retry, got {max_retries}")
        self._simulator = simulator
        self._endpoint = endpoint
        self._peer_mac = peer_mac
        self._tuning = tuning or ArqTuning(
            initial_timeout_ns=timeout_ns,
            min_timeout_ns=min(timeout_ns, ArqTuning.min_timeout_ns),
        )
        self._max_retries = max_retries
        self._rng = rng
        self.on_give_up = on_give_up
        endpoint.handler = self._on_frame

        self.handler: Optional[Callable[[EthernetFrame], None]] = None
        self._send_queue: Deque[bytes] = deque()
        self._next_tx_sequence = 0
        self._in_flight: Optional[bytes] = None
        self._in_flight_retries = 0
        self._timeout_event: Optional[Event] = None
        self._expected_rx_sequence = 0
        self._last_tx_ns = 0.0
        self._failed: Optional[NetworkError] = None

        # Jacobson/Karels estimator state; RTO starts at the configured
        # initial timeout until the first clean sample arrives.
        self._srtt_ns: Optional[float] = None
        self._rttvar_ns = 0.0
        self._rto_ns = self._tuning.initial_timeout_ns

        self.payloads_sent = 0
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.corrupt_frames_dropped = 0
        self.backoff_events = 0

    @property
    def failed(self) -> Optional[NetworkError]:
        """The give-up error, if this link has declared itself down."""
        return self._failed

    @property
    def rto_ns(self) -> float:
        """The current (pre-backoff) retransmission timeout."""
        return self._rto_ns

    @property
    def srtt_ns(self) -> Optional[float]:
        """The smoothed round-trip-time estimate, once sampled."""
        return self._srtt_ns

    # -- sending -----------------------------------------------------------------

    def send(self, frame: EthernetFrame) -> None:
        """Queue one payload for reliable delivery to the peer."""
        if self._failed is not None:
            raise NetworkError(
                f"ARQ link from {self._endpoint.name} is down: {self._failed}"
            )
        self._send_queue.append(frame.payload)
        self._pump()

    def _pump(self) -> None:
        if self._in_flight is not None or not self._send_queue:
            return
        payload = self._send_queue.popleft()
        self._in_flight = _encode(_TYPE_DATA, self._next_tx_sequence, payload)
        self._in_flight_retries = 0
        self.payloads_sent += 1
        self._transmit_in_flight()

    def _current_timeout_ns(self) -> float:
        """RTO backed off for the current retry, with deterministic jitter."""
        timeout = self._rto_ns * (
            self._tuning.backoff_factor ** self._in_flight_retries
        )
        if self._tuning.jitter_fraction and self._rng is not None:
            timeout *= 1.0 + self._tuning.jitter_fraction * self._rng.random()
        return self._tuning.clamp(timeout)

    def _transmit_in_flight(self) -> None:
        assert self._in_flight is not None
        self._last_tx_ns = self._simulator.now_ns
        self._endpoint.send(
            EthernetFrame(
                destination=self._peer_mac,
                source=self._endpoint.mac,
                ethertype=ETHERTYPE_ARQ,
                payload=self._in_flight,
            )
        )
        self._timeout_event = self._simulator.schedule(
            self._current_timeout_ns(), self._on_timeout, label="arq-timeout"
        )

    def _on_timeout(self) -> None:
        if self._in_flight is None or self._failed is not None:
            return
        self._in_flight_retries += 1
        registry = get_registry()
        if self._in_flight_retries > self._max_retries:
            error = NetworkError(
                f"ARQ gave up after {self._max_retries} retransmissions "
                f"(link from {self._endpoint.name} is down?)"
            )
            self._failed = error
            self._in_flight = None
            self._send_queue.clear()
            if registry.enabled:
                registry.counter(
                    "sacha_arq_give_ups_total",
                    "ARQ links that exhausted their retransmission budget",
                ).inc()
                _log.warning(
                    "arq_give_up",
                    endpoint=self._endpoint.name,
                    retries=self._max_retries,
                )
            if self.on_give_up is not None:
                self.on_give_up(error)
                return
            raise error
        self.retransmissions += 1
        self.backoff_events += 1
        if registry.enabled:
            registry.counter(
                "sacha_arq_retransmissions_total",
                "DATA frames retransmitted after a timeout",
            ).inc()
            registry.counter(
                "sacha_arq_backoff_events_total",
                "Retransmission timeouts that grew the backoff window",
            ).inc()
        self._transmit_in_flight()

    # -- receiving ----------------------------------------------------------------

    def _on_frame(self, frame: EthernetFrame) -> None:
        if self._failed is not None:
            return
        try:
            frame_type, sequence, payload = _decode(frame.payload)
        except NetworkError:
            # A corrupted or truncated frame: indistinguishable from loss
            # at this layer — drop it and let retransmission recover.
            self.corrupt_frames_dropped += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "sacha_arq_corrupt_frames_total",
                    "ARQ frames dropped on CRC or framing failure",
                ).inc()
            return
        if frame_type == _TYPE_ACK:
            self._on_ack(sequence)
            return
        if frame_type != _TYPE_DATA:
            self.corrupt_frames_dropped += 1
            return
        # Always acknowledge — the sender may have missed a previous ACK.
        self._endpoint.send(
            EthernetFrame(
                destination=self._peer_mac,
                source=self._endpoint.mac,
                ethertype=ETHERTYPE_ARQ,
                payload=_encode(_TYPE_ACK, sequence),
            )
        )
        if sequence != self._expected_rx_sequence:
            self.duplicates_dropped += 1
            return
        self._expected_rx_sequence += 1
        if self.handler is not None:
            # Strip trailing padding ambiguity by re-wrapping: upper
            # layers see a frame shaped like the original.
            self.handler(
                EthernetFrame(
                    destination=self._endpoint.mac,
                    source=self._peer_mac,
                    ethertype=ETHERTYPE_ARQ,
                    payload=payload,
                )
            )

    def _update_rtt(self, sample_ns: float) -> None:
        """Fold one clean round-trip sample into SRTT/RTTVAR (RFC 6298)."""
        tuning = self._tuning
        if self._srtt_ns is None:
            self._srtt_ns = sample_ns
            self._rttvar_ns = sample_ns / 2.0
        else:
            deviation = abs(self._srtt_ns - sample_ns)
            self._rttvar_ns += tuning.rttvar_gain * (deviation - self._rttvar_ns)
            self._srtt_ns += tuning.srtt_gain * (sample_ns - self._srtt_ns)
        self._rto_ns = tuning.clamp(
            self._srtt_ns + tuning.rttvar_weight * self._rttvar_ns
        )
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "sacha_arq_rto_seconds",
                "Current adaptive retransmission timeout, by endpoint",
                labels=("endpoint",),
            ).set(self._rto_ns / 1e9, endpoint=self._endpoint.name)

    def _on_ack(self, sequence: int) -> None:
        if self._in_flight is None or sequence != self._next_tx_sequence:
            return  # stale ACK
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        # Karn's algorithm: only sample RTT for never-retransmitted
        # payloads (an ACK of a retransmission is ambiguous).
        if self._in_flight_retries == 0:
            self._update_rtt(self._simulator.now_ns - self._last_tx_ns)
        self._in_flight = None
        self._next_tx_sequence += 1
        self._pump()

    @property
    def idle(self) -> bool:
        """Nothing in flight and nothing queued."""
        return self._in_flight is None and not self._send_queue
