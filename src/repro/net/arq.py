"""Sliding-window ARQ: reliable, exactly-once, in-order delivery.

The SACHa protocol is a strict command/response sequence; a single lost
Ethernet frame deadlocks a naive run.  ``ArqLink`` wraps a channel
endpoint with a selective-repeat automatic-repeat-request layer:

* every payload goes out as ``DATA(seq)`` and is retransmitted on a
  per-sequence timeout until an ``ACK`` covering it arrives; up to
  ``ArqTuning.window`` payloads are in flight at once (window=1 is the
  classic stop-and-wait this layer grew out of, and stays byte- and
  telemetry-identical to it);
* ``ACK(n)`` is *cumulative* — it acknowledges every sequence number up
  to and including ``n`` — and at window > 1 the receiver only answers
  frames whose sender marked them ack-soliciting (the last frame of
  each window-filling or queue-draining burst), so a full pipe costs
  roughly one ACK per window instead of one per frame.  Duplicates and
  out-of-order arrivals are always answered immediately to unstick a
  stalled sender.  At window = 1 every frame solicits, which is exactly
  the stop-and-wait exchange;
* a CRC-32 trailer covers every ARQ frame, so corrupted or truncated
  frames (the fault model's bit flips) are detected and dropped — the
  retransmission path then recovers them like losses;
* the receiver delivers each sequence number exactly once and in order:
  out-of-order arrivals within the window are buffered until the gap
  fills, duplicates are re-acknowledged but not re-delivered;
* frames beyond the receive window are dropped *without* an ACK, so a
  sender whose window outruns the receiver simply retransmits until the
  receiver catches up (the two ends of a link must be tuned with the
  same window — the session guarantees this).

The retransmission timer is adaptive: each clean (non-retransmitted)
round trip feeds a Jacobson/Karels SRTT/RTTVAR estimator, and each
payload's retransmission timeout backs off exponentially with
deterministic jitter while it keeps timing out.

With ``ArqTuning.adaptive`` the *send window* adapts too (AIMD, the
TCP congestion-control shape): the effective window starts at the
configured ``window`` ceiling, halves (``aimd_decrease``) on the first
timeout of each loss window — one multiplicative decrease per
window's worth of data, NewReno-style, so a burst of losses from a
single congestion event is not punished repeatedly — and grows back
additively (``aimd_increase`` per window's worth of clean cumulative
ACKs) until it reaches the ceiling again.  A clean link therefore
never leaves the ceiling and stays byte- and telemetry-identical to
the static window; the adaptation is pure float arithmetic over the
link's own loss signal, so trajectories are seed-deterministic and
identical across processes.  When ``max_retries``
is exhausted for any payload the link declares itself down: with an
``on_give_up`` callback installed it reports the failure and goes
quiescent (so the session above can degrade to an ``inconclusive``
verdict); without one it raises, preserving the fail-fast behaviour of
simple tests.

Exactly-once, in-order delivery is precisely what the attestation needs:
a duplicated ``ICAP_readback`` would desynchronize the incremental MAC
between prover and verifier.  The layer is protocol-agnostic — it moves
opaque payloads — so it slots under the unmodified SACHa session.
"""

from __future__ import annotations

import hmac
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, Optional, Tuple

from repro.errors import NetworkError
from repro.net.channel import Endpoint
from repro.net.ethernet import EthernetFrame, MacAddress
from repro.obs import log as obs_log
from repro.obs.metrics import get_registry
from repro.obs.spans import current_span
from repro.sim.events import Event, Simulator
from repro.utils.crc import Crc32
from repro.utils.rng import DeterministicRng

_log = obs_log.get_logger(__name__)

#: Ethertype for ARQ-wrapped traffic (local experimental ethertype 2).
ETHERTYPE_ARQ = 0x88B6

_TYPE_DATA = 0x01
_TYPE_ACK = 0x02
#: DATA that solicits an immediate cumulative ACK (window > 1 only; at
#: window = 1 plain DATA solicits implicitly, keeping the stop-and-wait
#: wire format byte-identical).
_TYPE_DATA_SOLICIT = 0x03

_HEADER_BYTES = 5  # type(1) + sequence(4)
_CRC_BYTES = 4

#: Per-frame ARQ framing cost; the batch codec subtracts this from the
#: Ethernet MTU when sizing payloads.
ARQ_OVERHEAD_BYTES = _HEADER_BYTES + _CRC_BYTES


@dataclass(frozen=True)
class ArqTuning:
    """Window and retransmission-timer parameters of one :class:`ArqLink`.

    Defaults follow the classic TCP values: SRTT gain 1/8, RTTVAR gain
    1/4, RTO = SRTT + 4·RTTVAR, doubled per consecutive timeout with up
    to ``jitter_fraction`` deterministic jitter to break retransmission
    synchronization between the two directions of a link.  ``window``
    bounds how many payloads may be unacknowledged at once; 1 reproduces
    stop-and-wait exactly.

    ``adaptive`` turns ``window`` into a *ceiling* for an AIMD-governed
    effective window: multiply by ``aimd_decrease`` on the first timeout
    of each loss window, grow by ``aimd_increase`` per window's worth of
    clean cumulative ACKs, never above ``window`` or below 1.  The
    effective window starts at the ceiling, so a clean link behaves
    exactly like the static configuration.
    """

    initial_timeout_ns: float = 2_000_000.0
    min_timeout_ns: float = 200_000.0
    max_timeout_ns: float = 500_000_000.0
    backoff_factor: float = 2.0
    jitter_fraction: float = 0.1
    srtt_gain: float = 1.0 / 8.0
    rttvar_gain: float = 1.0 / 4.0
    rttvar_weight: float = 4.0
    window: int = 1
    adaptive: bool = False
    aimd_increase: float = 1.0
    aimd_decrease: float = 0.5

    def __post_init__(self) -> None:
        if self.initial_timeout_ns <= 0:
            raise NetworkError(
                f"ARQ timeout must be positive, got {self.initial_timeout_ns}"
            )
        if not 0 < self.min_timeout_ns <= self.max_timeout_ns:
            raise NetworkError(
                f"ARQ timeout bounds [{self.min_timeout_ns}, "
                f"{self.max_timeout_ns}] are inverted or non-positive"
            )
        if self.backoff_factor < 1.0:
            raise NetworkError(
                f"backoff factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise NetworkError(
                f"jitter fraction {self.jitter_fraction} out of range [0, 1)"
            )
        if self.window < 1:
            raise NetworkError(f"ARQ window must be >= 1, got {self.window}")
        for name in ("srtt_gain", "rttvar_gain", "aimd_increase", "aimd_decrease"):
            gain = getattr(self, name)
            if not 0.0 < gain <= 1.0:
                raise NetworkError(
                    f"ARQ {name} must be in (0, 1], got {gain}"
                )

    def clamp(self, timeout_ns: float) -> float:
        return min(max(timeout_ns, self.min_timeout_ns), self.max_timeout_ns)


def _encode(frame_type: int, sequence: int, payload: bytes = b"") -> bytes:
    body = bytes([frame_type]) + sequence.to_bytes(4, "big") + payload
    return body + Crc32().update(body).digest_bytes()


def _decode(data: bytes):
    if len(data) < _HEADER_BYTES + _CRC_BYTES:
        raise NetworkError("truncated ARQ frame")
    body, crc = data[:-_CRC_BYTES], data[-_CRC_BYTES:]
    if not hmac.compare_digest(Crc32().update(body).digest_bytes(), crc):
        raise NetworkError("ARQ frame CRC mismatch")
    return body[0], int.from_bytes(body[1:5], "big"), body[5:]


class _InFlight:
    """One unacknowledged DATA payload: its wire bytes and timer state."""

    __slots__ = ("encoded", "retries", "timeout_event", "last_tx_ns")

    def __init__(self, encoded: bytes) -> None:
        self.encoded = encoded
        self.retries = 0
        self.timeout_event: Optional[Event] = None
        self.last_tx_ns = 0.0


class ArqLink:
    """Reliable payload transport over one channel endpoint.

    Presents the same ``send(frame)`` / ``handler`` surface as a raw
    :class:`Endpoint`, so higher layers (the attestation session) use it
    unchanged: the inner frame's payload is what travels reliably; its
    addressing is re-created on delivery.
    """

    def __init__(
        self,
        simulator: Simulator,
        endpoint: Endpoint,
        peer_mac: MacAddress,
        timeout_ns: float = 2_000_000.0,
        max_retries: int = 25,
        tuning: Optional[ArqTuning] = None,
        rng: Optional[DeterministicRng] = None,
        on_give_up: Optional[Callable[[NetworkError], None]] = None,
    ) -> None:
        if timeout_ns <= 0:
            raise NetworkError(f"ARQ timeout must be positive, got {timeout_ns}")
        if max_retries < 1:
            raise NetworkError(f"ARQ needs at least one retry, got {max_retries}")
        self._simulator = simulator
        self._endpoint = endpoint
        self._peer_mac = peer_mac
        self._tuning = tuning or ArqTuning(
            initial_timeout_ns=timeout_ns,
            min_timeout_ns=min(timeout_ns, ArqTuning.min_timeout_ns),
        )
        self._window = self._tuning.window
        # AIMD state: the effective window starts at the configured
        # ceiling, so a link that never loses never adapts (and stays
        # byte-identical to the static configuration).  ``_recovery_until``
        # marks the highest sequence sent when the window last halved;
        # timeouts at or below it belong to the same loss window and do
        # not halve again (NewReno-style single decrease per window).
        self._cwnd = float(self._window)
        self._recovery_until = -1
        self._max_retries = max_retries
        self._rng = rng
        self.on_give_up = on_give_up
        endpoint.handler = self._on_frame

        self.handler: Optional[Callable[[EthernetFrame], None]] = None
        self._send_queue: Deque[bytes] = deque()
        self._next_tx_sequence = 0
        # Selective repeat: every unacknowledged payload keeps its own
        # encoded bytes, retry count and timeout event, keyed by sequence
        # number in transmit order.
        self._in_flight: "OrderedDict[int, _InFlight]" = OrderedDict()
        self._expected_rx_sequence = 0
        # Out-of-order arrivals within the receive window, awaiting the
        # gap-filling sequence number: sequence -> (payload, solicited).
        self._rx_buffer: Dict[int, Tuple[bytes, bool]] = {}
        self._failed: Optional[NetworkError] = None

        # Jacobson/Karels estimator state; RTO starts at the configured
        # initial timeout until the first clean sample arrives.
        self._srtt_ns: Optional[float] = None
        self._rttvar_ns = 0.0
        self._rto_ns = self._tuning.initial_timeout_ns

        self.payloads_sent = 0
        self.retransmissions = 0
        self.duplicates_dropped = 0
        self.corrupt_frames_dropped = 0
        self.backoff_events = 0
        self.cwnd_halvings = 0

        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "sacha_arq_window",
                "Configured ARQ send-window size, by endpoint",
                labels=("endpoint",),
            ).set(float(self._window), endpoint=self._endpoint.name)
            if self._tuning.adaptive:
                self._observe_cwnd(registry)

    @property
    def failed(self) -> Optional[NetworkError]:
        """The give-up error, if this link has declared itself down."""
        return self._failed

    @property
    def rto_ns(self) -> float:
        """The current (pre-backoff) retransmission timeout."""
        return self._rto_ns

    @property
    def srtt_ns(self) -> Optional[float]:
        """The smoothed round-trip-time estimate, once sampled."""
        return self._srtt_ns

    @property
    def window(self) -> int:
        """The configured send-window size (the AIMD ceiling)."""
        return self._window

    @property
    def cwnd(self) -> int:
        """The effective send window: AIMD-governed when adaptive,
        otherwise the configured window."""
        if not self._tuning.adaptive:
            return self._window
        return max(1, int(self._cwnd))

    @property
    def in_flight_count(self) -> int:
        """Unacknowledged payloads currently outstanding."""
        return len(self._in_flight)

    # -- sending -----------------------------------------------------------------

    def send(self, frame: EthernetFrame) -> None:
        """Queue one payload for reliable delivery to the peer."""
        if self._failed is not None:
            raise NetworkError(
                f"ARQ link from {self._endpoint.name} is down: {self._failed}"
            )
        self._send_queue.append(frame.payload)
        self._pump()

    def send_many(self, frames: Iterable[EthernetFrame]) -> None:
        """Queue a burst of payloads, then start transmitting.

        Enqueueing the whole burst before the first transmission lets the
        pump see the burst's true tail, so only window-filling frames and
        the final frame solicit ACKs — one cumulative ACK per window's
        worth of traffic instead of one per frame.
        """
        if self._failed is not None:
            raise NetworkError(
                f"ARQ link from {self._endpoint.name} is down: {self._failed}"
            )
        self._send_queue.extend(frame.payload for frame in frames)
        self._pump()

    def _pump(self) -> None:
        pumped = 0
        registry = get_registry()
        active = current_span() if registry.enabled else None
        window = self.cwnd
        while self._send_queue and len(self._in_flight) < window:
            payload = self._send_queue.popleft()
            sequence = self._next_tx_sequence
            self._next_tx_sequence += 1
            if self._window == 1:
                frame_type = _TYPE_DATA
            else:
                # Solicit an ACK from the frame that fills the window or
                # drains the queue — the burst cannot grow past it, so
                # one cumulative ACK covers the whole burst.
                filling = len(self._in_flight) + 1 >= window
                frame_type = (
                    _TYPE_DATA_SOLICIT
                    if filling or not self._send_queue
                    else _TYPE_DATA
                )
            entry = _InFlight(_encode(frame_type, sequence, payload))
            self._in_flight[sequence] = entry
            self.payloads_sent += 1
            if active is not None:
                active.add_event(
                    "arq.send",
                    seq=sequence,
                    endpoint=self._endpoint.name,
                    solicit=frame_type != _TYPE_DATA,
                )
            self._transmit(sequence, entry)
            pumped += 1
        if pumped:
            if registry.enabled:
                registry.counter(
                    "sacha_arq_payloads_total",
                    "Distinct payloads entered into ARQ transmission",
                ).inc(pumped)
            self._observe_in_flight()

    def _observe_in_flight(self) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "sacha_arq_in_flight",
                "Unacknowledged ARQ payloads currently outstanding, by endpoint",
                labels=("endpoint",),
            ).set(float(len(self._in_flight)), endpoint=self._endpoint.name)

    def _current_timeout_ns(self, retries: int) -> float:
        """RTO backed off for the current retry, with deterministic jitter."""
        timeout = self._rto_ns * (self._tuning.backoff_factor**retries)
        if self._tuning.jitter_fraction and self._rng is not None:
            timeout *= 1.0 + self._tuning.jitter_fraction * self._rng.random()
        return self._tuning.clamp(timeout)

    def _transmit(self, sequence: int, entry: _InFlight) -> None:
        entry.last_tx_ns = self._simulator.now_ns
        self._endpoint.send(
            EthernetFrame(
                destination=self._peer_mac,
                source=self._endpoint.mac,
                ethertype=ETHERTYPE_ARQ,
                payload=entry.encoded,
            )
        )
        entry.timeout_event = self._simulator.schedule(
            self._current_timeout_ns(entry.retries),
            lambda: self._on_timeout(sequence),
            label="arq-timeout",
        )

    def _on_timeout(self, sequence: int) -> None:
        entry = self._in_flight.get(sequence)
        if entry is None or self._failed is not None:
            return
        entry.retries += 1
        registry = get_registry()
        if entry.retries > self._max_retries:
            error = NetworkError(
                f"ARQ gave up after {self._max_retries} retransmissions "
                f"(link from {self._endpoint.name} is down?)"
            )
            self._failed = error
            for pending in self._in_flight.values():
                if pending.timeout_event is not None:
                    pending.timeout_event.cancel()
            self._in_flight.clear()
            self._send_queue.clear()
            if registry.enabled:
                registry.counter(
                    "sacha_arq_give_ups_total",
                    "ARQ links that exhausted their retransmission budget",
                ).inc()
                active = current_span()
                if active is not None:
                    active.add_event(
                        "arq.give_up",
                        seq=sequence,
                        endpoint=self._endpoint.name,
                        retries=self._max_retries,
                    )
                _log.warning(
                    "arq_give_up",
                    endpoint=self._endpoint.name,
                    retries=self._max_retries,
                )
            if self.on_give_up is not None:
                self.on_give_up(error)
                return
            raise error
        self.retransmissions += 1
        self.backoff_events += 1
        if registry.enabled:
            registry.counter(
                "sacha_arq_retransmissions_total",
                "DATA frames retransmitted after a timeout",
            ).inc()
            registry.counter(
                "sacha_arq_backoff_events_total",
                "Retransmission timeouts that grew the backoff window",
            ).inc()
            active = current_span()
            if active is not None:
                active.add_event(
                    "arq.retransmit",
                    seq=sequence,
                    endpoint=self._endpoint.name,
                    retry=entry.retries,
                )
        if self._tuning.adaptive:
            self._cwnd_on_loss(sequence)
        self._transmit(sequence, entry)

    # -- AIMD window adaptation ----------------------------------------------------

    def _cwnd_on_loss(self, sequence: int) -> None:
        """Multiplicative decrease: halve once per loss window.

        A timeout for a sequence at or below ``_recovery_until`` belongs
        to a loss window the link already reacted to — a single
        congestion event typically costs several frames of one burst, and
        halving for each would collapse the window to 1 on any blip.
        """
        if sequence <= self._recovery_until:
            return
        self._recovery_until = self._next_tx_sequence - 1
        before = self.cwnd
        self._cwnd = max(1.0, self._cwnd * self._tuning.aimd_decrease)
        self.cwnd_halvings += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "sacha_arq_cwnd_halvings_total",
                "AIMD multiplicative-decrease events (window halvings)",
            ).inc()
            self._observe_cwnd(registry)
            active = current_span()
            if active is not None:
                active.add_event(
                    "arq.cwnd_halve",
                    seq=sequence,
                    endpoint=self._endpoint.name,
                    cwnd_before=before,
                    cwnd=self.cwnd,
                )

    def _cwnd_on_ack(self, acked_count: int, clean: bool) -> None:
        """Additive increase: ``aimd_increase`` per window's worth of
        clean cumulative ACKs (Karn-style, ACKs that retire retransmitted
        payloads are ambiguous and do not grow the window)."""
        if not clean or self._cwnd >= self._window:
            return
        before = self.cwnd
        self._cwnd = min(
            float(self._window),
            self._cwnd + self._tuning.aimd_increase * acked_count / self._cwnd,
        )
        registry = get_registry()
        if registry.enabled and self.cwnd != before:
            self._observe_cwnd(registry)
            active = current_span()
            if active is not None:
                active.add_event(
                    "arq.cwnd_grow",
                    endpoint=self._endpoint.name,
                    cwnd_before=before,
                    cwnd=self.cwnd,
                )

    def _observe_cwnd(self, registry) -> None:
        registry.gauge(
            "sacha_arq_cwnd",
            "Effective (AIMD) ARQ send window, by endpoint",
            labels=("endpoint",),
        ).set(float(self.cwnd), endpoint=self._endpoint.name)

    # -- receiving ----------------------------------------------------------------

    def _on_frame(self, frame: EthernetFrame) -> None:
        if self._failed is not None:
            return
        try:
            frame_type, sequence, payload = _decode(frame.payload)
        except NetworkError:
            # A corrupted or truncated frame: indistinguishable from loss
            # at this layer — drop it and let retransmission recover.
            self.corrupt_frames_dropped += 1
            registry = get_registry()
            if registry.enabled:
                registry.counter(
                    "sacha_arq_corrupt_frames_total",
                    "ARQ frames dropped on CRC or framing failure",
                ).inc()
            return
        if frame_type == _TYPE_ACK:
            self._on_ack(sequence)
            return
        if frame_type not in (_TYPE_DATA, _TYPE_DATA_SOLICIT):
            self.corrupt_frames_dropped += 1
            return
        solicit = frame_type == _TYPE_DATA_SOLICIT or self._window == 1
        if sequence >= self._expected_rx_sequence + self._window:
            # Beyond the receive window: we cannot buffer it, and an ACK
            # would let the sender forget a payload we never stored.  Stay
            # silent; the sender retransmits once the window advances.
            self.duplicates_dropped += 1
            return
        if sequence < self._expected_rx_sequence:
            # Already delivered: the sender missed an ACK.  Echo the
            # duplicate's own sequence — cumulatively it confirms only
            # frames below the delivered prefix, and it is byte-identical
            # to the stop-and-wait ACK the window=1 fingerprints pin.
            self._send_ack(sequence)
            self.duplicates_dropped += 1
            return
        if sequence in self._rx_buffer:
            # Buffered but not yet delivered: echoing its sequence would
            # cumulatively confirm the undelivered gap below it, so only
            # the delivered prefix (if any) may be re-confirmed.
            if self._expected_rx_sequence > 0:
                self._send_ack(self._expected_rx_sequence - 1)
            self.duplicates_dropped += 1
            return
        if sequence != self._expected_rx_sequence:
            # In-window but out of order: hold it until the gap fills,
            # and re-confirm the prefix so the sender keeps only the gap
            # on its timers' critical path.
            if self._expected_rx_sequence > 0:
                self._send_ack(self._expected_rx_sequence - 1)
            self._rx_buffer[sequence] = (payload, solicit)
            return
        # In order.  The ACK must precede delivery (the delivery handler
        # may transmit follow-up traffic; stop-and-wait put the ACK on
        # the wire first and the seeded fingerprints pin that order), so
        # scan the contiguous run this frame completes before delivering.
        run_end = sequence
        while run_end + 1 in self._rx_buffer:
            run_end += 1
            solicit = solicit or self._rx_buffer[run_end][1]
        if solicit:
            self._send_ack(run_end)
        self._deliver(payload)
        while self._expected_rx_sequence <= run_end:
            self._deliver(self._rx_buffer.pop(self._expected_rx_sequence)[0])

    def _send_ack(self, sequence: int) -> None:
        """Cumulative ACK: confirms every sequence number <= ``sequence``."""
        if get_registry().enabled:
            active = current_span()
            if active is not None:
                active.add_event(
                    "arq.ack", seq=sequence, endpoint=self._endpoint.name
                )
        self._endpoint.send(
            EthernetFrame(
                destination=self._peer_mac,
                source=self._endpoint.mac,
                ethertype=ETHERTYPE_ARQ,
                payload=_encode(_TYPE_ACK, sequence),
            )
        )

    def _deliver(self, payload: bytes) -> None:
        self._expected_rx_sequence += 1
        if self.handler is not None:
            # Strip trailing padding ambiguity by re-wrapping: upper
            # layers see a frame shaped like the original.
            self.handler(
                EthernetFrame(
                    destination=self._endpoint.mac,
                    source=self._peer_mac,
                    ethertype=ETHERTYPE_ARQ,
                    payload=payload,
                )
            )

    def _update_rtt(self, sample_ns: float) -> None:
        """Fold one clean round-trip sample into SRTT/RTTVAR (RFC 6298)."""
        tuning = self._tuning
        if self._srtt_ns is None:
            self._srtt_ns = sample_ns
            self._rttvar_ns = sample_ns / 2.0
        else:
            deviation = abs(self._srtt_ns - sample_ns)
            self._rttvar_ns += tuning.rttvar_gain * (deviation - self._rttvar_ns)
            self._srtt_ns += tuning.srtt_gain * (sample_ns - self._srtt_ns)
        self._rto_ns = tuning.clamp(
            self._srtt_ns + tuning.rttvar_weight * self._rttvar_ns
        )
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "sacha_arq_rto_seconds",
                "Current adaptive retransmission timeout, by endpoint",
                labels=("endpoint",),
            ).set(self._rto_ns / 1e9, endpoint=self._endpoint.name)

    def _on_ack(self, sequence: int) -> None:
        if sequence >= self._next_tx_sequence:
            return  # acknowledges something we never sent: bogus/stale
        # Cumulative: retire every in-flight payload up to the acked
        # sequence (the map iterates in transmit = sequence order).
        acked = 0
        clean = True
        while self._in_flight:
            first = next(iter(self._in_flight))
            if first > sequence:
                break
            entry = self._in_flight.pop(first)
            if entry.timeout_event is not None:
                entry.timeout_event.cancel()
                entry.timeout_event = None
            if entry.retries:
                clean = False
            # Karn's algorithm: only sample RTT for a never-retransmitted
            # payload this ACK names directly (an ACK of a retransmission
            # or an implicit confirmation is ambiguous).
            if first == sequence and entry.retries == 0:
                self._update_rtt(self._simulator.now_ns - entry.last_tx_ns)
            acked += 1
        if not acked:
            return  # stale ACK
        if self._tuning.adaptive:
            self._cwnd_on_ack(acked, clean)
        self._observe_in_flight()
        self._pump()

    @property
    def idle(self) -> bool:
        """Nothing in flight and nothing queued."""
        return not self._in_flight and not self._send_queue
