"""Network substrate: Ethernet framing, PHY timing, channels, wire format.

The SACHa verifier and prover talk over Gigabit Ethernet; this package
models the frames, the serialization cost at 1 Gb/s, a lossy/latent
channel with eavesdropping taps for the adversary, and the SACHa command
wire format (``ICAP_config`` / ``ICAP_readback`` / ``MAC_checksum``).
"""

from repro.net.arq import ArqLink, ArqTuning
from repro.net.channel import Channel, Endpoint, LatencyModel, NetworkTap
from repro.net.faults import (
    Delivery,
    FaultCounters,
    FaultModel,
    FaultProfile,
    OutageWindow,
)
from repro.net.ethernet import (
    ETHERTYPE_SACHA,
    MAX_PAYLOAD,
    MIN_PAYLOAD,
    EthernetFrame,
    MacAddress,
)
from repro.net.messages import (
    IcapConfigCommand,
    IcapReadbackCommand,
    IcapReadbackMaskedCommand,
    IcapReadbackRangeCommand,
    MacChecksumCommand,
    MacChecksumResponse,
    MaskedReadbackAck,
    ReadbackRangeResponse,
    ReadbackResponse,
    decode_command,
    decode_response,
)
from repro.net.phy import GigabitPhy
from repro.net.resequencer import ResequencerLink

__all__ = [
    "ArqLink",
    "ArqTuning",
    "Channel",
    "Delivery",
    "FaultCounters",
    "FaultModel",
    "FaultProfile",
    "OutageWindow",
    "Endpoint",
    "LatencyModel",
    "NetworkTap",
    "ETHERTYPE_SACHA",
    "MAX_PAYLOAD",
    "MIN_PAYLOAD",
    "EthernetFrame",
    "MacAddress",
    "IcapConfigCommand",
    "IcapReadbackCommand",
    "IcapReadbackMaskedCommand",
    "IcapReadbackRangeCommand",
    "MacChecksumCommand",
    "MacChecksumResponse",
    "MaskedReadbackAck",
    "ReadbackRangeResponse",
    "ReadbackResponse",
    "decode_command",
    "decode_response",
    "GigabitPhy",
    "ResequencerLink",
]
