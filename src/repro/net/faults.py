"""Deterministic fault injection for the simulated channel.

The paper's verifier and prover talk over real Gigabit Ethernet, where
frames are not only *lost* but corrupted, duplicated, reordered,
truncated, and — during switch reboots or cable wiggles — blacked out
for whole windows.  :class:`FaultModel` composes those behaviours into
one deterministic per-frame decision that :class:`~repro.net.channel.Channel`
consults on every transmit.

Everything draws from a :class:`~repro.utils.rng.DeterministicRng`, so a
seeded run under any fault combination reproduces bit-for-bit: the same
frames are corrupted in the same bit positions, the same copies are
duplicated, the same outage windows swallow the same traffic.

A :class:`FaultProfile` is the declarative description (probabilities
and outage windows); a :class:`FaultModel` is the stateful instance
bound to an RNG that also keeps injection counters and feeds the
``sacha_net_faults_total`` metric.  Profiles parse from compact specs —
``"loss=0.05,corrupt=0.02,outage=5ms+50ms"`` — which the CLI's
``--fault-profile`` flag and the CI fault matrix use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.errors import NetworkError
from repro.net.ethernet import EthernetFrame
from repro.obs.metrics import get_registry
from repro.utils.rng import DeterministicRng


@dataclass(frozen=True)
class OutageWindow:
    """A scheduled link-down burst: every frame in the window is dropped."""

    start_ns: float
    end_ns: float

    def __post_init__(self) -> None:
        if self.start_ns < 0 or self.end_ns <= self.start_ns:
            raise NetworkError(
                f"outage window [{self.start_ns}, {self.end_ns}) is empty "
                "or negative"
            )

    def contains(self, time_ns: float) -> bool:
        return self.start_ns <= time_ns < self.end_ns

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass(frozen=True)
class Delivery:
    """One copy of a frame the channel should deliver (possibly late)."""

    frame: EthernetFrame
    extra_delay_ns: float = 0.0


_TIME_SUFFIXES = (("ms", 1e6), ("us", 1e3), ("ns", 1.0), ("s", 1e9))


def parse_duration_ns(text: str) -> float:
    """``"50ms"`` / ``"250us"`` / ``"3s"`` / bare nanoseconds → ns."""
    text = text.strip()
    for suffix, scale in _TIME_SUFFIXES:
        if text.endswith(suffix):
            try:
                return float(text[: -len(suffix)]) * scale
            except ValueError as exc:
                raise NetworkError(f"malformed duration {text!r}") from exc
    try:
        return float(text)
    except ValueError as exc:
        raise NetworkError(f"malformed duration {text!r}") from exc


@dataclass(frozen=True)
class FaultProfile:
    """Declarative description of how a link misbehaves.

    All probabilities are per-frame and independent; ``outages`` are
    absolute simulation-time windows during which the link is down.
    """

    loss_probability: float = 0.0
    corruption_probability: float = 0.0
    corruption_max_bits: int = 3
    duplication_probability: float = 0.0
    reorder_probability: float = 0.0
    reorder_extra_ns: float = 200_000.0
    truncation_probability: float = 0.0
    outages: Tuple[OutageWindow, ...] = ()

    def __post_init__(self) -> None:
        for name in (
            "loss_probability",
            "corruption_probability",
            "duplication_probability",
            "reorder_probability",
            "truncation_probability",
        ):
            value = getattr(self, name)
            if not 0.0 <= value < 1.0:
                raise NetworkError(f"{name} {value} out of range [0, 1)")
        if self.corruption_max_bits < 1:
            raise NetworkError(
                f"corruption_max_bits must be >= 1, got {self.corruption_max_bits}"
            )
        if self.reorder_extra_ns < 0:
            raise NetworkError(
                f"reorder_extra_ns must be >= 0, got {self.reorder_extra_ns}"
            )

    @property
    def is_stochastic(self) -> bool:
        """Does any behaviour need random draws (vs. pure outage schedule)?"""
        return any(
            probability > 0.0
            for probability in (
                self.loss_probability,
                self.corruption_probability,
                self.duplication_probability,
                self.reorder_probability,
                self.truncation_probability,
            )
        )

    @property
    def is_active(self) -> bool:
        return self.is_stochastic or bool(self.outages)

    @classmethod
    def named(cls, name: str) -> "FaultProfile":
        """The built-in profiles the CLI and CI matrix reference."""
        profiles = {
            "clean": cls(),
            "lossy": cls(loss_probability=0.05),
            "noisy": cls(
                loss_probability=0.05,
                corruption_probability=0.02,
                duplication_probability=0.02,
            ),
            "harsh": cls(
                loss_probability=0.08,
                corruption_probability=0.04,
                duplication_probability=0.03,
                reorder_probability=0.03,
                truncation_probability=0.01,
            ),
        }
        try:
            return profiles[name]
        except KeyError:
            raise NetworkError(
                f"unknown fault profile {name!r}; "
                f"known: {', '.join(sorted(profiles))}"
            ) from None

    @classmethod
    def parse(cls, spec: str) -> "FaultProfile":
        """A named profile or a ``key=value,...`` spec.

        Keys: ``loss``, ``corrupt``, ``corrupt_bits``, ``dup``,
        ``reorder``, ``reorder_delay``, ``trunc``, and (repeatable)
        ``outage=START+DURATION`` with ``ms``/``us``/``ns``/``s``
        suffixes — e.g. ``"loss=0.05,corrupt=0.02,outage=5ms+50ms"``.
        """
        spec = spec.strip()
        if not spec:
            return cls()
        if "=" not in spec:
            return cls.named(spec)
        profile = cls()
        outages: List[OutageWindow] = []
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise NetworkError(f"malformed fault spec item {part!r}")
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "loss":
                    profile = replace(profile, loss_probability=float(value))
                elif key == "corrupt":
                    profile = replace(profile, corruption_probability=float(value))
                elif key == "corrupt_bits":
                    profile = replace(profile, corruption_max_bits=int(value))
                elif key == "dup":
                    profile = replace(profile, duplication_probability=float(value))
                elif key == "reorder":
                    profile = replace(profile, reorder_probability=float(value))
                elif key == "reorder_delay":
                    profile = replace(
                        profile, reorder_extra_ns=parse_duration_ns(value)
                    )
                elif key == "trunc":
                    profile = replace(profile, truncation_probability=float(value))
                elif key == "outage":
                    start_text, _, duration_text = value.partition("+")
                    if not duration_text:
                        raise NetworkError(
                            f"outage needs START+DURATION, got {value!r}"
                        )
                    start = parse_duration_ns(start_text)
                    window = OutageWindow(
                        start, start + parse_duration_ns(duration_text)
                    )
                    outages.append(window)
                else:
                    raise NetworkError(f"unknown fault spec key {key!r}")
            except ValueError as exc:
                raise NetworkError(
                    f"malformed fault spec value {part!r}"
                ) from exc
        if outages:
            profile = replace(profile, outages=tuple(outages))
        return profile


@dataclass
class FaultCounters:
    """Injection counts kept by one :class:`FaultModel` instance."""

    frames_seen: int = 0
    lost: int = 0
    corrupted: int = 0
    duplicated: int = 0
    reordered: int = 0
    truncated: int = 0
    outage_dropped: int = 0

    def as_dict(self) -> dict:
        return {
            "frames_seen": self.frames_seen,
            "lost": self.lost,
            "corrupted": self.corrupted,
            "duplicated": self.duplicated,
            "reordered": self.reordered,
            "truncated": self.truncated,
            "outage_dropped": self.outage_dropped,
        }


class FaultModel:
    """A :class:`FaultProfile` bound to an RNG, applied per frame.

    ``perturb`` maps one offered frame to zero, one or two deliveries:
    an outage or loss yields none; duplication yields two; corruption and
    truncation rewrite the copy; reordering adds a delivery delay so a
    later frame overtakes this one.  Effects compose — a duplicated
    frame's copies are corrupted independently.
    """

    def __init__(
        self, profile: FaultProfile, rng: Optional[DeterministicRng] = None
    ) -> None:
        if profile.is_stochastic and rng is None:
            raise NetworkError(
                "a stochastic fault profile needs an rng for deterministic "
                "replay; pass DeterministicRng(seed)"
            )
        self.profile = profile
        self._rng = rng
        self.counters = FaultCounters()

    def _count(self, kind: str) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "sacha_net_faults_total",
                "Frame-level faults injected by the channel fault model",
                labels=("kind",),
            ).inc(kind=kind)

    def _corrupt(self, frame: EthernetFrame) -> EthernetFrame:
        payload = bytearray(frame.payload)
        if not payload:
            return frame
        flips = self._rng.randint(1, self.profile.corruption_max_bits)
        for _ in range(flips):
            position = self._rng.randint(0, len(payload) * 8 - 1)
            payload[position // 8] ^= 1 << (position % 8)
        return EthernetFrame(
            frame.destination, frame.source, frame.ethertype, bytes(payload)
        )

    def _truncate(self, frame: EthernetFrame) -> EthernetFrame:
        if len(frame.payload) <= 1:
            return frame
        keep = self._rng.randint(1, len(frame.payload) - 1)
        return EthernetFrame(
            frame.destination, frame.source, frame.ethertype, frame.payload[:keep]
        )

    def perturb(
        self, time_ns: float, direction: str, frame: EthernetFrame
    ) -> List[Delivery]:
        """The copies of ``frame`` the channel should schedule."""
        profile = self.profile
        counters = self.counters
        counters.frames_seen += 1

        for window in profile.outages:
            if window.contains(time_ns):
                counters.outage_dropped += 1
                self._count("outage")
                return []
        if profile.loss_probability and self._rng.chance(profile.loss_probability):
            counters.lost += 1
            self._count("loss")
            return []

        copies = [frame]
        if profile.duplication_probability and self._rng.chance(
            profile.duplication_probability
        ):
            counters.duplicated += 1
            self._count("duplication")
            copies.append(frame)

        deliveries: List[Delivery] = []
        for copy in copies:
            if profile.truncation_probability and self._rng.chance(
                profile.truncation_probability
            ):
                counters.truncated += 1
                self._count("truncation")
                copy = self._truncate(copy)
            if profile.corruption_probability and self._rng.chance(
                profile.corruption_probability
            ):
                counters.corrupted += 1
                self._count("corruption")
                copy = self._corrupt(copy)
            extra_delay_ns = 0.0
            if profile.reorder_probability and self._rng.chance(
                profile.reorder_probability
            ):
                counters.reordered += 1
                self._count("reorder")
                # Hold this copy back long enough for a later frame to
                # overtake it (at least one frame time at any rate).
                extra_delay_ns = profile.reorder_extra_ns * (
                    1.0 + self._rng.random()
                )
            deliveries.append(Delivery(frame=copy, extra_delay_ns=extra_delay_ns))
        return deliveries

    def next_outage_end_after(self, time_ns: float) -> Optional[float]:
        """End of the outage covering ``time_ns``, if one is active."""
        for window in self.profile.outages:
            if window.contains(time_ns):
                return window.end_ns
        return None
