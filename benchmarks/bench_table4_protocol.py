"""E3 — Table 4: total protocol timing.

Two levels:

* the analytic regeneration (counts × action times + network overhead)
  must land on the paper's 1.443 s theoretical / 28.5 s measured pair;
* an actual protocol execution on the medium test part, moving real
  frames through the real AES-CMAC, whose *accumulated model time*
  scales the same way (readback-dominated, network-dominated totals).
"""


from repro.analysis.experiments import e3_table4
from repro.core.protocol import SessionOptions, run_attestation
from repro.timing.network import LAB_NETWORK
from repro.utils.rng import DeterministicRng


def test_table4_regeneration(benchmark):
    result = benchmark(e3_table4)
    print("\n" + result.rendered)
    assert result.theoretical_matches
    assert result.measured_matches


def test_protocol_execution_medium_scale(benchmark, medium_stack):
    """One full attestation run (functional, real MAC) per round."""
    provisioned, verifier = medium_stack
    counter = [0]

    def one_run():
        counter[0] += 1
        return run_attestation(
            provisioned.prover,
            verifier,
            DeterministicRng(counter[0]),
            SessionOptions(network=LAB_NETWORK),
        )

    result = benchmark.pedantic(one_run, rounds=3, iterations=1)
    report = result.report
    assert report.accepted
    # Shape: readback phase dominates the on-device time, and the
    # network overhead dominates the total — as in the paper.
    assert report.timing.readback_ns > report.timing.config_ns
    assert report.timing.network_overhead_ns > report.timing.theoretical_ns
