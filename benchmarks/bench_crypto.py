"""E10 — crypto-core throughput.

The MAC update step (A6) is 128 ns per frame in hardware because the
CMAC pipeline streams concurrently with the readback.  The software
model cannot match that wall-clock, but these benches pin down the cost
of each primitive the protocol leans on, frame-sized where relevant.
"""

from repro.crypto.aes import Aes
from repro.crypto.cmac import AesCmac, aes_cmac
from repro.crypto.sha256 import sha256
from repro.fpga.device import XC6VLX240T

KEY = bytes(range(16))
FRAME = bytes(range(256)) + bytes(XC6VLX240T.frame_bytes - 256)


def test_aes_block_encrypt(benchmark):
    aes = Aes(KEY)
    block = bytes(16)
    result = benchmark(aes.encrypt_block, block)
    assert len(result) == 16


def test_cmac_frame_update(benchmark):
    """One A6 step: folding one 324-byte frame into the running MAC."""
    mac = AesCmac(KEY)

    def update():
        mac.update(FRAME)

    benchmark(update)


def test_cmac_full_frame_oneshot(benchmark):
    tag = benchmark(aes_cmac, KEY, FRAME)
    assert len(tag) == 16


def test_cmac_hundred_frames(benchmark):
    """A 100-frame readback stretch (the protocol's inner loop)."""
    payload = [bytes([i % 256]) * XC6VLX240T.frame_bytes for i in range(100)]

    def run():
        mac = AesCmac(KEY)
        for frame in payload:
            mac.update(frame)
        return mac.finalize()

    tag = benchmark(run)
    assert len(tag) == 16


def test_sha256_frame(benchmark):
    digest = benchmark(sha256, FRAME)
    assert len(digest) == 32
